"""Reproduce the paper's Figures 2-4: the strlen walkthrough.

Prints the C function (Figure 2), the baseline machine's delayed-branch
RTLs (Figure 3), the branch-register machine's RTLs (Figure 4), and the
instruction-count comparison the paper highlights (11-vs-14 instructions,
5-vs-6 inside the loop).

Run:  python examples/strlen_paper_example.py
"""

from repro.harness.figures import strlen_example


def main():
    result = strlen_example()
    print("Figure 2 (C function):")
    print(result["source"])
    print(result["text"])
    print()
    print(
        "The paper reports 14 vs 11 instructions and 6 vs 5 inside the "
        "loop; conventions differ slightly, the loop body matches exactly."
    )


if __name__ == "__main__":
    main()
