"""Section 7-9 study on a subset of the Appendix I programs: pipeline
cycle estimates at several depths, plus the prefetching-cache experiment.

Run:  python examples/pipeline_cache_study.py
"""

from repro.harness.cache9 import run_cache_study
from repro.harness.cycles7 import run_cycle_estimate
from repro.pipeline.diagrams import conditional_diagram, unconditional_diagram

SUBSET = ("wc", "grep", "sieve", "sort")


def main():
    print("Pipeline delay ladders (Figures 5 and 7):")
    for machine in ("no-delay", "delayed", "branchreg"):
        diagram, delay = unconditional_diagram(machine, 3)
        print(diagram)
        print("  -> unconditional delay: %d cycles\n" % delay)
    for machine in ("no-delay", "delayed", "branchreg"):
        _diagram, delay = conditional_diagram(machine, 3)
        print("  %-10s conditional delay at 3 stages: %d" % (machine, delay))
    print()

    print("Section 7 cycle estimates on %s:" % (SUBSET,))
    result = run_cycle_estimate(stages_list=(3, 4, 5), subset=SUBSET)
    print(result["text"])
    print()

    print("Section 8/9 cache study (stalls include fetch misses):")
    study = run_cache_study(subset=("wc", "grep"), configs=((64, 4, 2), (128, 4, 2)))
    print(study["text"])


if __name__ == "__main__":
    main()
