"""Quickstart: compile one SmallC program for both machines and compare.

Run:  python examples/quickstart.py
"""

from repro import run_pair

SOURCE = """
int collatz_len(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2)
            n = 3 * n + 1;
        else
            n = n / 2;
        steps++;
    }
    return steps;
}

int main() {
    int n;
    int best = 0;
    int best_n = 1;
    for (n = 1; n <= 60; n++) {
        int length = collatz_len(n);
        if (length > best) {
            best = length;
            best_n = n;
        }
    }
    print_str("longest chain below 60: n=");
    print_int(best_n);
    print_str(" len=");
    print_int(best);
    putchar('\\n');
    return 0;
}
"""


def main():
    pair = run_pair(SOURCE, name="collatz")
    print("program output:", pair.output.decode().strip())
    print()
    header = "%-22s %15s %15s" % ("", "baseline", "branch-register")
    print(header)
    rows = [
        ("instructions", "instructions"),
        ("data references", "data_refs"),
        ("transfers of control", "transfers"),
        ("noops executed", "noops"),
    ]
    for label, attr in rows:
        print(
            "%-22s %15d %15d"
            % (label, getattr(pair.baseline, attr), getattr(pair.branchreg, attr))
        )
    print()
    print(
        "branch-register machine executes %.1f%% fewer instructions"
        % (100 * pair.instruction_reduction())
    )
    print(
        "with %.1f%% more data references"
        % (100 * pair.data_ref_increase())
    )


if __name__ == "__main__":
    main()
