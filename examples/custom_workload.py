"""Measure your own workload on both machines.

Shows the full EASE flow on a program that is *not* part of the Appendix I
suite: a toy priority-queue event simulation.  Any SmallC program works --
write it, pick stdin, and call ``run_pair``.

Run:  python examples/custom_workload.py
"""

from repro import run_pair
from repro.pipeline.model import estimate_all

SOURCE = """
/* Binary-heap event queue: schedule N random events, pop them in order,
   verify monotonicity, and report how many re-schedules happened. */

int heap[128];
int heap_size = 0;
int seed = 1234;

int next_random(int bound) {
    seed = (seed * 1103 + 12345) % 32768;
    return seed % bound;
}

void push(int key) {
    int i = heap_size;
    int parent;
    heap[i] = key;
    heap_size++;
    while (i > 0) {
        parent = (i - 1) / 2;
        if (heap[parent] <= heap[i])
            break;
        key = heap[parent];
        heap[parent] = heap[i];
        heap[i] = key;
        i = parent;
    }
}

int pop() {
    int top = heap[0];
    int i = 0;
    int child;
    int tmp;
    heap_size--;
    heap[0] = heap[heap_size];
    while (1) {
        child = 2 * i + 1;
        if (child >= heap_size)
            break;
        if (child + 1 < heap_size && heap[child + 1] < heap[child])
            child = child + 1;
        if (heap[i] <= heap[child])
            break;
        tmp = heap[i];
        heap[i] = heap[child];
        heap[child] = tmp;
        i = child;
    }
    return top;
}

int main() {
    int i;
    int now = 0;
    int reschedules = 0;
    int events = 0;
    for (i = 0; i < 100; i++)
        push(next_random(10000));
    while (heap_size > 0) {
        int t = pop();
        if (t < now) {
            print_str("ORDER VIOLATION\\n");
            return 1;
        }
        now = t;
        events++;
        if (events < 160 && next_random(100) < 25) {
            push(now + 1 + next_random(500));
            reschedules++;
        }
    }
    print_str("events ");
    print_int(events);
    print_str(" reschedules ");
    print_int(reschedules);
    print_str(" horizon ");
    print_int(now);
    putchar('\\n');
    return 0;
}
"""


def main():
    pair = run_pair(SOURCE, name="eventsim")
    print("output:", pair.output.decode().strip())
    print()
    print(
        "instructions: baseline %d, branch-register %d (%.1f%% fewer)"
        % (
            pair.baseline.instructions,
            pair.branchreg.instructions,
            100 * pair.instruction_reduction(),
        )
    )
    estimates = estimate_all(pair.baseline, pair.branchreg, stages=3)
    print(
        "3-stage cycles: baseline %d, branch-register %d (%.1f%% fewer; "
        "%.1f%% of transfers delayed)"
        % (
            estimates["baseline"].cycles,
            estimates["branchreg"].cycles,
            100 * estimates["saving_vs_baseline"],
            100 * estimates["delayed_fraction"],
        )
    )


if __name__ == "__main__":
    main()
