"""Explore the two ISAs: paper-notation listings and Figure 10/11 words.

Compiles a small function for both machines, prints the RTL listings side
by side, and shows the 32-bit encodings of a few branch-register-machine
instructions.

Run:  python examples/isa_explorer.py
"""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.lang.frontend import compile_to_ir
from repro.machine.encoding import BaselineEncoder, BranchRegEncoder
from repro.rtl.printer import listing, minstr_text

SOURCE = """
int sum_to(int n) {
    int total = 0;
    int i;
    for (i = 1; i <= n; i++)
        total += i;
    return total;
}

int main() {
    return sum_to(10);
}
"""


def main():
    baseline = generate_baseline(compile_to_ir(SOURCE))
    branchreg = generate_branchreg(compile_to_ir(SOURCE))

    print("=== baseline machine (delayed branches) ===")
    print(listing(baseline.function("sum_to").instrs))
    print()
    print("=== branch-register machine ===")
    print(listing(branchreg.function("sum_to").instrs))
    print()

    print("=== Figure 11 encodings (branch-register machine) ===")
    encoder = BranchRegEncoder(branchreg.spec)
    for ins in branchreg.function("sum_to").instrs:
        if ins.is_label():
            continue
        word = encoder.encode(ins, disp_words=0)
        print("0x%08X  %s" % (word, minstr_text(ins)))
    print()

    print("=== Figure 10 encodings (baseline machine) ===")
    encoder = BaselineEncoder(baseline.spec)
    for ins in baseline.function("sum_to").instrs[:8]:
        if ins.is_label():
            continue
        word = encoder.encode(ins, disp_words=0)
        print("0x%08X  %s" % (word, minstr_text(ins)))


if __name__ == "__main__":
    main()
