"""Hierarchical trace contexts and the Chrome trace-event exporter.

A *trace* is one logical operation -- typically a whole suite run --
identified by a random ``trace_id``.  While a trace is active, every
span opened through :mod:`repro.obs.spans` gets its own random
``span_id`` and remembers the enclosing span as ``parent_id``, and every
event emitted through :mod:`repro.obs.events` is stamped with the trace
id plus the id of the span it happened inside.  The context is plain
module state (the whole emulator is single-threaded by design), and it
crosses the ``--jobs N`` process boundary explicitly: the parent puts
:func:`task_context` -- a picklable ``(trace_id, parent_span_id)`` pair
-- into each worker task, and the worker activates it with
:func:`start_trace` so its workload spans nest under the parent's suite
span.  With no trace active all hooks are a single ``is None`` test, so
untraced runs pay nothing.

The captured stream exports to the Chrome trace-event JSON format
(load it at ``ui.perfetto.dev`` or ``about:tracing``): span events
become complete (``ph: "X"``) slices, everything else becomes instants
(``ph: "i"``), and per-process metadata records which pid was which
worker.  The wrapper document is schema-validated (``repro.trace/1``)
with the same dependency-free validator the run manifest uses.
"""

import json
import os

from repro.obs import events

TRACE_SCHEMA_ID = "repro.trace/1"

#: Event types that render as complete slices rather than instants.
_SPAN_TYPE = "span"


def _new_id():
    return os.urandom(8).hex()


class _State:
    """One active trace: its id plus the open-span stack."""

    __slots__ = ("trace_id", "stack")

    def __init__(self, trace_id, stack):
        self.trace_id = trace_id
        self.stack = stack


_ACTIVE = None


class SpanToken:
    """Identity of one open span, returned by :func:`push_span`."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id, span_id, parent_id):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id


def active():
    """True when a trace context is currently installed."""
    return _ACTIVE is not None


def start_trace(trace_id=None, parent_span_id=None):
    """Install a trace context; returns a token for :func:`end_trace`.

    ``trace_id`` continues an existing trace (worker processes pass the
    parent's id); None starts a fresh one.  ``parent_span_id`` seeds the
    span stack so spans opened here nest under a span owned by another
    process -- the seed entry is never popped because pops only match
    ids issued by :func:`push_span` in this process.
    """
    global _ACTIVE
    token = _ACTIVE
    stack = [parent_span_id] if parent_span_id else []
    _ACTIVE = _State(trace_id or _new_id(), stack)
    return token


def end_trace(token):
    """Restore whatever context :func:`start_trace` displaced."""
    global _ACTIVE
    _ACTIVE = token


def current_context():
    """``(trace_id, enclosing span_id or None)``, or None when inactive.

    This is the provider :func:`repro.obs.events.emit` consults to stamp
    every event (registered at import time, below).
    """
    state = _ACTIVE
    if state is None:
        return None
    return (state.trace_id, state.stack[-1] if state.stack else None)


#: Picklable form of :func:`current_context` for worker task tuples.
task_context = current_context


def push_span():
    """Open a span: returns its :class:`SpanToken`, or None untraced."""
    state = _ACTIVE
    if state is None:
        return None
    parent = state.stack[-1] if state.stack else None
    span_id = _new_id()
    state.stack.append(span_id)
    return SpanToken(state.trace_id, span_id, parent)


def pop_span(token):
    """Close the span ``token`` identifies (no-op for a None token)."""
    state = _ACTIVE
    if state is None or token is None:
        return
    stack = state.stack
    if stack and stack[-1] == token.span_id:
        stack.pop()
    elif token.span_id in stack:  # unbalanced exit: drop just this span
        stack.remove(token.span_id)


# Register the context provider with the event layer.  events.py cannot
# import this module (spans -> trace -> events would turn circular), so
# the hook points the other way: importing repro.obs.trace -- which
# repro.obs.spans does -- is what turns event stamping on.
events.set_trace_provider(current_context)


# --------------------------------------------------------------------------
# Chrome trace-event export
# --------------------------------------------------------------------------

TRACE_SCHEMA = {
    "type": "object",
    "required": ["schema", "displayTimeUnit", "traceEvents"],
    "properties": {
        "schema": {"type": "string", "const": TRACE_SCHEMA_ID},
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "name", "pid", "tid", "ts"],
                "properties": {
                    "ph": {"type": "string", "enum": ["X", "i", "M"]},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "s": {"type": "string", "enum": ["g", "p", "t"]},
                    "args": {"type": "object"},
                },
            },
        },
    },
}


def validate_trace(doc):
    """Raise :class:`~repro.obs.manifest.ManifestError` on violation;
    returns the document for chaining."""
    from repro.obs.manifest import _validate

    _validate(doc, TRACE_SCHEMA, "$")
    return doc


def _start_mono(event):
    """Timeline start of one event: spans emit at completion, so their
    slice starts ``duration_s`` before the stamp."""
    t = event.get("t_mono", 0.0)
    if event.get("type") == _SPAN_TYPE:
        return t - event.get("duration_s", 0.0)
    return t


def _slice_name(event):
    """Display name for a span slice: the span name plus its label
    values ("workload:wc", "emulate:baseline")."""
    labels = event.get("labels") or {}
    parts = [event.get("name", _SPAN_TYPE)]
    parts.extend(str(labels[key]) for key in sorted(labels))
    return ":".join(parts)


_STAMP_KEYS = ("type", "t", "t_mono", "pid", "seq")


def export_chrome_trace(event_list, label="repro"):
    """Convert a captured event stream into a Chrome trace document.

    ``event_list`` is any iterable of stamped events (one process's sink
    contents, or a merged multi-process stream); ordering is
    re-established here, so callers need not pre-sort.  Span events
    become ``ph:"X"`` complete slices (their emit stamp marks the *end*
    of the slice), all other events become ``ph:"i"`` instants, and each
    pid gets a ``ph:"M"`` process_name metadata record.  Timestamps are
    microseconds relative to the earliest slice start, which keeps the
    numbers small and Perfetto-friendly.
    """
    merged = events.merge_events(list(event_list))
    if not merged:
        doc = {
            "schema": TRACE_SCHEMA_ID,
            "displayTimeUnit": "ms",
            "otherData": {"label": label},
            "traceEvents": [],
        }
        return validate_trace(doc)
    t0 = min(_start_mono(event) for event in merged)
    trace_ids = sorted(
        {event["trace_id"] for event in merged if "trace_id" in event}
    )
    pids = []
    trace_events = []
    for event in merged:
        pid = int(event.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
        etype = event.get("type")
        args = {
            key: value
            for key, value in event.items()
            if key not in _STAMP_KEYS and value is not None
        }
        if etype == _SPAN_TYPE and "duration_s" in event:
            args.pop("labels", None)
            args.pop("name", None)
            args.pop("duration_s", None)
            args.update(event.get("labels") or {})
            trace_events.append(
                {
                    "ph": "X",
                    "name": _slice_name(event),
                    "cat": _SPAN_TYPE,
                    "pid": pid,
                    "tid": pid,
                    "ts": (_start_mono(event) - t0) * 1e6,
                    "dur": event["duration_s"] * 1e6,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "name": str(etype),
                    "cat": "event",
                    "pid": pid,
                    "tid": pid,
                    "ts": (event.get("t_mono", t0) - t0) * 1e6,
                    "s": "p",
                    "args": args,
                }
            )
    # The first pid seen at the earliest timestamp is the coordinating
    # process (it opened the root span); label the rest as workers.
    for i, pid in enumerate(pids):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": pid,
                "ts": 0,
                "args": {
                    "name": "repro" if i == 0 else "repro worker %d" % pid
                },
            }
        )
    doc = {
        "schema": TRACE_SCHEMA_ID,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "trace_ids": trace_ids},
        "traceEvents": trace_events,
    }
    return validate_trace(doc)


# --------------------------------------------------------------------------
# The ``repro trace`` driver
# --------------------------------------------------------------------------

def run_trace(
    subset=None,
    jobs=None,
    limit=None,
    sample_every=65536,
    engine=None,
    label=None,
):
    """Run the (sub)suite with tracing active; returns the Chrome doc.

    The suite runs uncached (a memoised result would have no spans to
    show) under a fresh trace context, with the event stream captured in
    memory; ``jobs > 1`` fans out across worker processes whose spans
    re-assemble under the parent's ``suite`` span via the propagated
    context.  Serial runs attach an in-process
    :class:`~repro.obs.emuobs.EmulationObserver`; parallel runs give
    each worker its own via ``sample_every``.
    """
    from repro.emu.fastcore import resolve_engine
    from repro.harness.parallel import default_jobs
    from repro.harness.runner import DEFAULT_LIMIT, run_suite
    from repro.obs.emuobs import EmulationObserver
    from repro.obs.metrics import METRICS
    from repro.obs.spans import RECORDER

    engine = resolve_engine(engine)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    METRICS.reset()
    RECORDER.reset()
    sink = events.MemorySink(max_events=1_000_000)
    previous = events.set_sink(sink)
    token = start_trace()
    observer = EmulationObserver(sample_every=sample_every) if jobs == 1 else None
    try:
        run_suite(
            subset=subset,
            limit=limit if limit is not None else DEFAULT_LIMIT,
            observer=observer,
            use_cache=False,
            jobs=jobs,
            sample_every=sample_every,
            engine=engine,
        )
    finally:
        end_trace(token)
        events.set_sink(previous)
    return export_chrome_trace(
        sink.events, label=label or "suite (%d workload(s))" % _suite_size(subset)
    )


def _suite_size(subset):
    from repro.workloads import all_workloads

    return len(tuple(subset)) if subset else len(all_workloads())


def load_events(path):
    """Read a JSON-lines event stream (``repro report --events`` output)
    back into a list of stamped events."""
    with open(path, "r") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def write_trace(doc, out=None):
    """Write a Chrome trace document; returns the path."""
    out = out or "trace.json"
    with open(out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return out


def load_trace(path):
    """Read and validate a Chrome trace document."""
    with open(path, "r") as handle:
        doc = json.load(handle)
    return validate_trace(doc)


__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_ID",
    "SpanToken",
    "active",
    "current_context",
    "end_trace",
    "export_chrome_trace",
    "load_events",
    "load_trace",
    "pop_span",
    "push_span",
    "run_trace",
    "start_trace",
    "task_context",
    "validate_trace",
    "write_trace",
]
