"""Structured event stream: JSON-lines sinks for telemetry events.

Events are flat dicts with a ``type``, two timestamps, and arbitrary
JSON-serialisable fields.  Every event carries both clocks:

* ``t`` -- wall-clock ``time.time()``, for correlating with the outside
  world (logs, CI timestamps);
* ``t_mono`` -- monotonic ``time.perf_counter()``, the same clock spans
  use, so event and span timelines can be correlated and ordering
  survives NTP steps (wall clocks can go backwards; ``t_mono`` cannot).
  On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared by
  every process on the machine, so ``t_mono`` also totally orders events
  merged from parallel worker processes (see :func:`merge_events`).

By default no sink is attached and :func:`emit` is a single ``is None``
test -- the hot paths stay effectively free.  Attach a :class:`MemorySink`
(tests, in-process analysis) or a :class:`JsonlSink` (one JSON object per
line, the interchange format the run-report tooling and external
consumers read) to capture the stream.
"""

import json
import time

_SINK = None


def set_sink(sink):
    """Install ``sink`` (or None to disable); returns the previous sink."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


def get_sink():
    return _SINK


def enabled():
    return _SINK is not None


def emit(etype, **fields):
    """Emit one event to the active sink (no-op when none attached)."""
    sink = _SINK
    if sink is None:
        return
    event = {"type": etype, "t": time.time(), "t_mono": time.perf_counter()}
    event.update(fields)
    sink.emit(event)


def merge_events(*event_lists):
    """Merge already-stamped event lists into one monotonic timeline.

    Used by the parallel suite runner to fold per-worker event streams
    back into a single stream: sorting is by ``t_mono`` (the cross-process
    monotonic clock), never by wall-clock ``t``, so an NTP step during a
    run cannot reorder the merged timeline.  Events predating the
    ``t_mono`` stamp (old captures) sort first, preserving their relative
    order -- ``sorted`` is stable.
    """
    merged = [event for events_ in event_lists for event in events_]
    merged.sort(key=lambda event: event.get("t_mono", float("-inf")))
    return merged


def replay(event_list):
    """Re-emit already-stamped events to the active sink (no-op when none
    attached).  Unlike :func:`emit` this preserves the original ``t`` /
    ``t_mono`` stamps, which is what makes cross-process folding honest:
    the merged stream records when each event actually happened in its
    worker, not when the parent collected it."""
    sink = _SINK
    if sink is None:
        return 0
    for event in event_list:
        sink.emit(event)
    return len(event_list)


class MemorySink:
    """Keeps events in a bounded in-memory list."""

    def __init__(self, max_events=100_000):
        self.events = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, event):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def by_type(self, etype):
        return [e for e in self.events if e["type"] == etype]

    def close(self):
        pass


class JsonlSink:
    """Appends one JSON object per line to ``path`` (or a file object)."""

    def __init__(self, path):
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, "w")
            self._owns = True
        self.count = 0

    def emit(self, event):
        self._fh.write(json.dumps(event, sort_keys=True, default=str))
        self._fh.write("\n")
        self.count += 1

    def close(self):
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
