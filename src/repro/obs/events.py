"""Structured event stream: JSON-lines sinks for telemetry events.

Events are flat dicts with a ``type``, two timestamps, and arbitrary
JSON-serialisable fields.  Every event carries both clocks:

* ``t`` -- wall-clock ``time.time()``, for correlating with the outside
  world (logs, CI timestamps);
* ``t_mono`` -- monotonic ``time.perf_counter()``, the same clock spans
  use, so event and span timelines can be correlated and ordering
  survives NTP steps (wall clocks can go backwards; ``t_mono`` cannot).
  On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared by
  every process on the machine, so ``t_mono`` also totally orders events
  merged from parallel worker processes (see :func:`merge_events`).

By default no sink is attached and :func:`emit` is a single ``is None``
test -- the hot paths stay effectively free.  Attach a :class:`MemorySink`
(tests, in-process analysis) or a :class:`JsonlSink` (one JSON object per
line, the interchange format the run-report tooling and external
consumers read) to capture the stream.
"""

import itertools
import json
import os
import time

_SINK = None

#: Per-process emission counter.  ``(t_mono, pid, seq)`` is a total
#: order over merged multi-process streams: ``t_mono`` alone is not (two
#: workers can stamp the same perf_counter reading), but ``seq`` never
#: repeats within a pid.  ``itertools.count`` restarts naturally in
#: forked workers, which is fine -- their pid differs.
_SEQ = itertools.count()

#: Optional trace-context provider (set by :mod:`repro.obs.trace` on
#: import): a callable returning ``(trace_id, span_id)`` or None.  A
#: hook rather than an import so this module stays leaf-level.
_TRACE = None


def set_trace_provider(provider):
    """Install the trace-context callable; returns the previous one."""
    global _TRACE
    previous = _TRACE
    _TRACE = provider
    return previous


def set_sink(sink):
    """Install ``sink`` (or None to disable); returns the previous sink."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


def get_sink():
    return _SINK


def enabled():
    return _SINK is not None


def emit(etype, **fields):
    """Emit one event to the active sink (no-op when none attached).

    Each event is stamped with the emitting process id and a per-process
    sequence number (the :func:`merge_events` tie-break), and -- when a
    trace context is active (:mod:`repro.obs.trace`) -- with the trace id
    and enclosing span id.  Explicit ``fields`` win over stamps.
    """
    sink = _SINK
    if sink is None:
        return
    event = {
        "type": etype,
        "t": time.time(),
        "t_mono": time.perf_counter(),
        "pid": os.getpid(),
        "seq": next(_SEQ),
    }
    if _TRACE is not None:
        context = _TRACE()
        if context is not None:
            event["trace_id"] = context[0]
            if context[1] is not None:
                event["parent_id"] = context[1]
    event.update(fields)
    sink.emit(event)


def _merge_key(event):
    return (
        event.get("t_mono", float("-inf")),
        event.get("pid", -1),
        event.get("seq", -1),
    )


def merge_events(*event_lists):
    """Merge already-stamped event lists into one monotonic timeline.

    Used by the parallel suite runner to fold per-worker event streams
    back into a single stream: sorting is by ``t_mono`` (the cross-process
    monotonic clock), never by wall-clock ``t``, so an NTP step during a
    run cannot reorder the merged timeline.  ``t_mono`` alone is not a
    total order -- distinct processes can stamp identical readings -- so
    ties break on ``(pid, seq)``, which is deterministic and preserves
    each process's own emission order.  Events predating the stamps (old
    captures) sort first, preserving their relative order -- ``sorted``
    is stable.
    """
    merged = [event for events_ in event_lists for event in events_]
    merged.sort(key=_merge_key)
    return merged


def replay(event_list):
    """Re-emit already-stamped events to the active sink (no-op when none
    attached).  Unlike :func:`emit` this preserves the original ``t`` /
    ``t_mono`` stamps, which is what makes cross-process folding honest:
    the merged stream records when each event actually happened in its
    worker, not when the parent collected it."""
    sink = _SINK
    if sink is None:
        return 0
    for event in event_list:
        sink.emit(event)
    return len(event_list)


class MemorySink:
    """Keeps events in a bounded in-memory list."""

    def __init__(self, max_events=100_000):
        self.events = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, event):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def by_type(self, etype):
        return [e for e in self.events if e["type"] == etype]

    def close(self):
        pass


class JsonlSink:
    """Appends one JSON object per line to ``path`` (or a file object)."""

    def __init__(self, path):
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, "w")
            self._owns = True
        self.count = 0

    def emit(self, event):
        self._fh.write(json.dumps(event, sort_keys=True, default=str))
        self._fh.write("\n")
        self.count += 1

    def close(self):
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
