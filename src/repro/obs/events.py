"""Structured event stream: JSON-lines sinks for telemetry events.

Events are flat dicts with a ``type``, a wall-clock timestamp ``t``, and
arbitrary JSON-serialisable fields.  By default no sink is attached and
:func:`emit` is a single ``is None`` test -- the hot paths stay effectively
free.  Attach a :class:`MemorySink` (tests, in-process analysis) or a
:class:`JsonlSink` (one JSON object per line, the interchange format the
run-report tooling and external consumers read) to capture the stream.
"""

import json
import time

_SINK = None


def set_sink(sink):
    """Install ``sink`` (or None to disable); returns the previous sink."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


def get_sink():
    return _SINK


def enabled():
    return _SINK is not None


def emit(etype, **fields):
    """Emit one event to the active sink (no-op when none attached)."""
    sink = _SINK
    if sink is None:
        return
    event = {"type": etype, "t": time.time()}
    event.update(fields)
    sink.emit(event)


class MemorySink:
    """Keeps events in a bounded in-memory list."""

    def __init__(self, max_events=100_000):
        self.events = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, event):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def by_type(self, etype):
        return [e for e in self.events if e["type"] == etype]

    def close(self):
        pass


class JsonlSink:
    """Appends one JSON object per line to ``path`` (or a file object)."""

    def __init__(self, path):
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, "w")
            self._owns = True
        self.count = 0

    def emit(self, event):
        self._fh.write(json.dumps(event, sort_keys=True, default=str))
        self._fh.write("\n")
        self.count += 1

    def close(self):
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
