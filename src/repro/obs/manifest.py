"""Run manifests: the machine-readable record of one suite run.

A manifest is a single JSON document (``BENCH_<timestamp>.json`` by
default) containing everything a perf PR needs for a before/after
comparison: per-program :class:`~repro.emu.stats.RunStats` for both
machines, suite totals, aggregated per-phase wall-time spans
(frontend / opt / codegen / emulate / workload), the metrics snapshot, and
enough environment information to interpret the numbers later.

The schema below is a deliberately small JSON-Schema subset (``type``,
``required``, ``properties``, ``items``, ``const``) with a matching
in-repo validator, so manifests can be checked in CI without third-party
dependencies.
"""

import json
import platform
import subprocess
import sys
import time
from dataclasses import fields as dataclass_fields

#: Version 2 added the ``provenance`` section (git commit SHA and CLI
#: argv) so any archived BENCH_*.json can be traced back to the exact
#: tree and command that produced it.  Version 3 adds the optional
#: ``failures`` section emitted by fault-tolerant suite runs: one
#: structured post-mortem record per workload that raised a typed error
#: (see ``repro.fault.triage``).  Version 4 adds the optional
#: ``parallel`` section emitted by ``--jobs N`` runs: the worker count
#: plus the persistent artifact cache's hit/miss/corrupt counters (see
#: ``docs/PERFORMANCE.md``).  Version 5 adds ``config.engine``: which
#: emulation run loop produced the numbers ("fast" predecoded core or
#: the "reference" step loop -- bit-identical by the conformance suite,
#: but provenance belongs in the record).  Version 6 extends the
#: ``parallel`` section with cache telemetry: artifact-cache byte
#: counters and hit rate, and a ``memo_cache`` object recording the
#: in-process suite memo cache's hits/misses/bypasses (the ROADMAP's
#: missing hit-rate telemetry).  Version 7 adds the optional
#: ``supervision`` section emitted by supervised/checkpointed runs
#: (``--supervise`` / ``--checkpoint``): retry, worker-crash, hang-kill,
#: quarantine, and checkpoint hit/write counts, plus ``interrupted`` /
#: ``remaining`` for the valid *partial* manifest a Ctrl-C run writes
#: (which ``--resume`` picks up; see ``docs/ROBUSTNESS.md``).  Older
#: manifests are still accepted on load so ``repro diff`` can compare
#: against old artifacts.
SCHEMA_V1 = "repro.run-manifest/1"
SCHEMA_V2 = "repro.run-manifest/2"
SCHEMA_V3 = "repro.run-manifest/3"
SCHEMA_V4 = "repro.run-manifest/4"
SCHEMA_V5 = "repro.run-manifest/5"
SCHEMA_V6 = "repro.run-manifest/6"
SCHEMA_ID = "repro.run-manifest/7"


class ManifestError(ValueError):
    """A manifest failed schema validation."""


# --------------------------------------------------------------------------
# RunStats serialisation
# --------------------------------------------------------------------------

#: RunStats fields excluded from the JSON form (raw output is replaced by
#: its length; identity fields are emitted explicitly).
_STATS_RAW_FIELDS = ("output",)


def stats_to_dict(stats):
    """Serialise a RunStats (Counters become plain dicts; tuple keys of the
    ``cond_joint`` histogram become ``"p,c"`` strings; raw output bytes
    become ``output_len``)."""
    out = {}
    for f in dataclass_fields(stats):
        if f.name in _STATS_RAW_FIELDS:
            continue
        value = getattr(stats, f.name)
        if hasattr(value, "items"):  # Counter / dict
            if f.name == "cond_joint":
                out[f.name] = {
                    "%d,%d" % key: count for key, count in sorted(value.items())
                }
            else:
                out[f.name] = {str(k): v for k, v in sorted(value.items())}
        else:
            out[f.name] = value
    out["transfers"] = stats.transfers
    out["output_len"] = len(stats.output)
    icache = getattr(stats, "icache", None)
    if icache is not None:
        out["icache"] = dict(vars(icache))
        out["cache_stalls"] = getattr(stats, "cache_stalls", 0)
    return out


def environment_info():
    from repro import __version__

    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repro_version": __version__,
    }


def git_commit():
    """The current git commit SHA, or None when not in a git checkout (or
    git is unavailable) -- provenance is best-effort by design."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def collect_provenance(argv=None):
    """The manifest ``provenance`` section: git SHA plus the command line
    that produced the run (defaults to this process's ``sys.argv``)."""
    return {
        "git_sha": git_commit(),
        "argv": list(sys.argv if argv is None else argv),
    }


# --------------------------------------------------------------------------
# Schema
# --------------------------------------------------------------------------

_RUNSTATS_SCHEMA = {
    "type": "object",
    "required": [
        "machine",
        "program",
        "instructions",
        "data_refs",
        "transfers",
        "noops",
        "opcounts",
        "exit_code",
        "output_len",
    ],
    "properties": {
        "machine": {"type": "string"},
        "program": {"type": "string"},
        "instructions": {"type": "integer"},
        "data_refs": {"type": "integer"},
        "transfers": {"type": "integer"},
        "noops": {"type": "integer"},
        "opcounts": {"type": "object"},
        "exit_code": {"type": "integer"},
        "output_len": {"type": "integer"},
    },
}

_PHASE_SCHEMA = {
    "type": "object",
    "required": ["name", "phase", "count", "total_s"],
    "properties": {
        "name": {"type": "string"},
        "phase": {"type": "string"},
        "labels": {"type": "object"},
        "count": {"type": "integer"},
        "total_s": {"type": "number"},
        "min_s": {"type": "number"},
        "max_s": {"type": "number"},
    },
}

_FAILURE_SCHEMA = {
    "type": "object",
    "required": ["workload", "error", "message"],
    "properties": {
        "workload": {"type": "string"},
        "error": {"type": "string"},
        "message": {"type": "string"},
        "machine": {"type": ["string", "null"]},
        "pc": {"type": ["integer", "null"]},
        "icount": {"type": ["integer", "null"]},
        "function": {"type": ["string", "null"]},
        "line": {"type": ["integer", "null"]},
        "edges": {
            "type": ["array", "null"],
            "items": {
                "type": "object",
                "required": ["from", "to"],
                "properties": {
                    "from": {"type": "integer"},
                    "to": {"type": "integer"},
                    "from_loc": {"type": "string"},
                    "to_loc": {"type": "string"},
                },
            },
        },
    },
}

_PARALLEL_SCHEMA = {
    "type": "object",
    "required": ["jobs"],
    "properties": {
        "jobs": {"type": "integer"},
        "artifact_cache": {
            "type": "object",
            "required": ["hits", "misses", "corrupt"],
            "properties": {
                "hits": {"type": "integer"},
                "misses": {"type": "integer"},
                "corrupt": {"type": "integer"},
                "bytes_read": {"type": "integer"},
                "bytes_written": {"type": "integer"},
                "hit_rate": {"type": ["number", "null"]},
                "dir": {"type": ["string", "null"]},
            },
        },
        "memo_cache": {
            "type": "object",
            "required": ["hits", "misses"],
            "properties": {
                "hits": {"type": "integer"},
                "misses": {"type": "integer"},
                "bypassed": {"type": "integer"},
                "hit_rate": {"type": ["number", "null"]},
            },
        },
    },
}

_SUPERVISION_SCHEMA = {
    "type": "object",
    "required": ["enabled"],
    "properties": {
        "enabled": {"type": "boolean"},
        "max_attempts": {"type": "integer"},
        "retries": {"type": "integer"},
        "worker_crashes": {"type": "integer"},
        "hang_kills": {"type": "integer"},
        "quarantined": {"type": "integer"},
        "checkpoint": {
            "type": "object",
            "required": ["hits", "writes"],
            "properties": {
                "hits": {"type": "integer"},
                "writes": {"type": "integer"},
                "path": {"type": ["string", "null"]},
            },
        },
        "interrupted": {"type": "boolean"},
        "remaining": {"type": "array", "items": {"type": "string"}},
    },
}

MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "created_unix",
        "duration_s",
        "environment",
        "config",
        "programs",
        "totals",
        "phases",
        "phase_totals",
        "metrics",
    ],
    "properties": {
        "schema": {
            "type": "string",
            "enum": [
                SCHEMA_V1,
                SCHEMA_V2,
                SCHEMA_V3,
                SCHEMA_V4,
                SCHEMA_V5,
                SCHEMA_V6,
                SCHEMA_ID,
            ],
        },
        "created_unix": {"type": "number"},
        "duration_s": {"type": "number"},
        "provenance": {
            "type": "object",
            "required": ["git_sha", "argv"],
            "properties": {
                "git_sha": {"type": ["string", "null"]},
                "argv": {"type": "array", "items": {"type": "string"}},
            },
        },
        "environment": {
            "type": "object",
            "required": ["python", "platform", "repro_version"],
            "properties": {
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "repro_version": {"type": "string"},
            },
        },
        "config": {
            "type": "object",
            "required": ["subset", "limit"],
            "properties": {
                "subset": {"type": ["array", "null"], "items": {"type": "string"}},
                "limit": {"type": ["integer", "null"]},
                "engine": {"type": "string"},
            },
        },
        "programs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "baseline", "branchreg", "derived"],
                "properties": {
                    "name": {"type": "string"},
                    "baseline": _RUNSTATS_SCHEMA,
                    "branchreg": _RUNSTATS_SCHEMA,
                    "derived": {
                        "type": "object",
                        "required": ["instr_change", "refs_change"],
                        "properties": {
                            "instr_change": {"type": "number"},
                            "refs_change": {"type": "number"},
                        },
                    },
                    "duration_s": {"type": "number"},
                },
            },
        },
        "totals": {
            "type": "object",
            "required": ["baseline", "branchreg", "instr_change", "refs_change"],
            "properties": {
                "baseline": _RUNSTATS_SCHEMA,
                "branchreg": _RUNSTATS_SCHEMA,
                "instr_change": {"type": "number"},
                "refs_change": {"type": "number"},
            },
        },
        "phases": {"type": "array", "items": _PHASE_SCHEMA},
        "phase_totals": {"type": "object"},
        "failures": {"type": "array", "items": _FAILURE_SCHEMA},
        "parallel": _PARALLEL_SCHEMA,
        "supervision": _SUPERVISION_SCHEMA,
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "array"},
                "gauges": {"type": "array"},
                "histograms": {"type": "array"},
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(doc, schema, path):
    stype = schema.get("type")
    if stype is not None:
        allowed = stype if isinstance(stype, list) else [stype]
        if not any(_TYPE_CHECKS[t](doc) for t in allowed):
            raise ManifestError(
                "%s: expected %s, got %s" % (path, "/".join(allowed), type(doc).__name__)
            )
    if "const" in schema and doc != schema["const"]:
        raise ManifestError(
            "%s: expected %r, got %r" % (path, schema["const"], doc)
        )
    if "enum" in schema and doc not in schema["enum"]:
        raise ManifestError(
            "%s: %r not one of %r" % (path, doc, schema["enum"])
        )
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                raise ManifestError("%s: missing required key %r" % (path, key))
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                _validate(doc[key], sub, "%s.%s" % (path, key))
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            _validate(item, schema["items"], "%s[%d]" % (path, i))


def validate_manifest(doc, schema=None):
    """Raise :class:`ManifestError` if ``doc`` violates the schema."""
    _validate(doc, schema or MANIFEST_SCHEMA, "$")
    return doc


# --------------------------------------------------------------------------
# Building
# --------------------------------------------------------------------------

def artifact_cache_counters(metrics_snapshot):
    """Extract the artifact-cache hit/miss/corrupt counts, byte traffic,
    and hit rate from a metrics snapshot (the ``harness.artifact_cache``
    and ``harness.artifact_cache_bytes`` counter families); all zero
    (rate None) when the run never touched the cache."""
    counts = {
        "hits": 0,
        "misses": 0,
        "corrupt": 0,
        "bytes_read": 0,
        "bytes_written": 0,
    }
    mapping = {"hit": "hits", "miss": "misses", "corrupt": "corrupt"}
    directions = {"read": "bytes_read", "written": "bytes_written"}
    for row in metrics_snapshot.get("counters", ()):
        if row["name"] == "harness.artifact_cache":
            bucket = mapping.get(row["labels"].get("result"))
            if bucket:
                counts[bucket] += int(row["value"])
        elif row["name"] == "harness.artifact_cache_bytes":
            bucket = directions.get(row["labels"].get("direction"))
            if bucket:
                counts[bucket] += int(row["value"])
    lookups = counts["hits"] + counts["misses"]
    counts["hit_rate"] = counts["hits"] / lookups if lookups else None
    return counts


def memo_cache_counters(metrics_snapshot):
    """Extract the suite memo-cache hit/miss/bypass counts and hit rate
    from a metrics snapshot (the ``harness.suite_cache`` counter family).
    Bypasses -- runs whose parameters put them outside the cache key, or
    that opted out -- are excluded from the rate: they were never
    candidate hits."""
    counts = {"hits": 0, "misses": 0, "bypassed": 0}
    mapping = {"hit": "hits", "miss": "misses", "bypass": "bypassed"}
    for row in metrics_snapshot.get("counters", ()):
        if row["name"] != "harness.suite_cache":
            continue
        bucket = mapping.get(row["labels"].get("result"))
        if bucket:
            counts[bucket] += int(row["value"])
    lookups = counts["hits"] + counts["misses"]
    counts["hit_rate"] = counts["hits"] / lookups if lookups else None
    return counts


def supervision_counters(metrics_snapshot):
    """Extract the supervision-layer telemetry from a metrics snapshot:
    retry / worker-crash / hang-kill / quarantine totals (summed across
    their reason/kind labels) and checkpoint hit/write counts."""
    names = {
        "harness.retries": "retries",
        "harness.worker_crashes": "worker_crashes",
        "harness.hang_kills": "hang_kills",
        "harness.quarantined": "quarantined",
    }
    counts = {
        "retries": 0,
        "worker_crashes": 0,
        "hang_kills": 0,
        "quarantined": 0,
        "checkpoint": {"hits": 0, "writes": 0},
    }
    checkpoint = {"hit": "hits", "write": "writes"}
    for row in metrics_snapshot.get("counters", ()):
        bucket = names.get(row["name"])
        if bucket:
            counts[bucket] += int(row["value"])
        elif row["name"] == "harness.checkpoint":
            sub = checkpoint.get(row["labels"].get("result"))
            if sub:
                counts["checkpoint"][sub] += int(row["value"])
    return counts


def build_manifest(
    pairs,
    config,
    duration_s,
    span_rows=None,
    phase_totals=None,
    metrics_snapshot=None,
    workload_durations=None,
    created_unix=None,
    provenance=None,
    failures=None,
    parallel=None,
    supervision=None,
):
    """Assemble (and validate) a run manifest from suite results.

    ``pairs`` is a list of :class:`~repro.ease.environment.PairResult`;
    ``span_rows``/``phase_totals``/``metrics_snapshot`` come from the obs
    recorders; ``workload_durations`` maps workload name to seconds.
    ``provenance`` is the :func:`collect_provenance` section (collected
    here when omitted).  ``failures`` is the list of structured failure
    records a fault-tolerant run collected (omitted from the document
    when None; an empty list is recorded explicitly, so "ran fault
    tolerant, nothing failed" and "not fault tolerant" stay
    distinguishable).  ``parallel`` is the schema-v4 section recorded by
    ``--jobs N`` runs ({"jobs": N, "artifact_cache": {...}}); omitted
    when None so serial manifests stay byte-identical to v3 output apart
    from the schema id.  ``supervision`` is the schema-v7 section
    recorded by supervised/checkpointed runs (see
    :func:`supervision_counters`); omitted when None.
    """
    from repro.emu.stats import suite_totals

    durations = workload_durations or {}
    programs = []
    for pair in pairs:
        entry = {
            "name": pair.name,
            "baseline": stats_to_dict(pair.baseline),
            "branchreg": stats_to_dict(pair.branchreg),
            "derived": {
                "instr_change": -pair.instruction_reduction(),
                "refs_change": pair.data_ref_increase(),
            },
        }
        if pair.name in durations:
            entry["duration_s"] = durations[pair.name]
        programs.append(entry)
    baseline = suite_totals([p.baseline for p in pairs], machine="baseline")
    branchreg = suite_totals([p.branchreg for p in pairs], machine="branchreg")
    totals = {
        "baseline": stats_to_dict(baseline),
        "branchreg": stats_to_dict(branchreg),
        "instr_change": (
            branchreg.instructions / baseline.instructions - 1.0
            if baseline.instructions
            else 0.0
        ),
        "refs_change": (
            branchreg.data_refs / baseline.data_refs - 1.0
            if baseline.data_refs
            else 0.0
        ),
    }
    config_section = {
        "subset": list(config.get("subset")) if config.get("subset") else None,
        "limit": config.get("limit"),
    }
    if config.get("engine"):
        config_section["engine"] = config["engine"]
    manifest = {
        "schema": SCHEMA_ID,
        "created_unix": time.time() if created_unix is None else created_unix,
        "duration_s": duration_s,
        "environment": environment_info(),
        "provenance": provenance if provenance is not None else collect_provenance(),
        "config": config_section,
        "programs": programs,
        "totals": totals,
        "phases": list(span_rows or []),
        "phase_totals": dict(phase_totals or {}),
        "metrics": metrics_snapshot
        or {"counters": [], "gauges": [], "histograms": []},
    }
    if failures is not None:
        manifest["failures"] = list(failures)
    if parallel is not None:
        manifest["parallel"] = dict(parallel)
    if supervision is not None:
        manifest["supervision"] = dict(supervision)
    return validate_manifest(manifest)


def load_manifest(path):
    """Read and validate a manifest file."""
    with open(path, "r") as handle:
        doc = json.load(handle)
    return validate_manifest(doc)


def write_manifest(manifest, out=None):
    """Write a manifest; default filename ``BENCH_<timestamp>.json``."""
    if out is None:
        stamp = time.strftime(
            "%Y%m%dT%H%M%S", time.localtime(manifest["created_unix"])
        )
        out = "BENCH_%s.json" % stamp
    with open(out, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out
