"""Differential run analysis and drift gating (``repro diff``).

Compares two ``BENCH_*.json`` run manifests workload by workload
(dynamic instruction counts and data memory references on both machines)
and flags regressions against a configurable relative threshold; the CLI
exits non-zero on any breach, which is what makes it usable as a CI drift
gate.

``--paper`` mode needs only one manifest: it checks the manifest against
the *pinned* Table I reproduction below.  Both emulators are fully
deterministic, so these per-workload numbers must reproduce exactly --
any drift means a compiler or emulator behaviour change and fails the
gate.  The paper's own headline claims (Table I was measured on the
authors' vpo compiler, ours is a reimplementation) are reported as
warn-only context, never as failures.
"""

import time

#: Pinned per-workload Table I reproduction (EXPERIMENTS.md):
#: name -> (baseline instructions, branchreg instructions,
#:          baseline data refs, branchreg data refs).
TABLE1_EXPECTED = {
    "cal": (37349, 33775, 5628, 5704),
    "cb": (29077, 26525, 2925, 2931),
    "compact": (24466, 22154, 2112, 2118),
    "diff": (80925, 77931, 12467, 13887),
    "grep": (154046, 133686, 27002, 27728),
    "nroff": (65468, 59657, 13488, 13904),
    "od": (59001, 52423, 5040, 5046),
    "sed": (93646, 93076, 13336, 17504),
    "sort": (123782, 109762, 21921, 23291),
    "spline": (12347, 12168, 1689, 2203),
    "tr": (36932, 28495, 2922, 2928),
    "wc": (55855, 45250, 44, 48),
    "dhrystone": (41939, 38400, 11016, 11734),
    "matmult": (53297, 49472, 6346, 6372),
    "puzzle": (78646, 72295, 10587, 12731),
    "sieve": (125094, 107255, 16782, 16788),
    "whetstone": (34976, 33114, 9933, 9963),
    "mincost": (844547, 770074, 107197, 118056),
    "vpcc": (151196, 145838, 41559, 45051),
}

#: Paper headline claims (Section 7 / Table I) -- informational context
#: for the warn-only section of ``--paper`` mode: (label, paper value).
PAPER_CLAIMS = (
    ("total instruction change", -0.068),
    ("total data reference change", +0.020),
    ("transfer fraction of instructions", 0.14),
)

_METRICS = (
    ("baseline", "instructions"),
    ("branchreg", "instructions"),
    ("baseline", "data_refs"),
    ("branchreg", "data_refs"),
)


class DiffResult:
    """Outcome of one comparison: per-workload rows, warn-only notes, and
    the breached rows that should fail a gate."""

    def __init__(self, label_a, label_b, threshold):
        self.label_a = label_a
        self.label_b = label_b
        self.threshold = threshold
        self.rows = []  # dicts: name/machine/metric/a/b/delta/rel/breach
        self.warnings = []
        self.notes = []

    @property
    def breaches(self):
        return [row for row in self.rows if row["breach"]]

    @property
    def exit_code(self):
        return 1 if self.breaches else 0

    def add_row(self, name, machine, metric, a, b):
        delta = b - a
        rel = (delta / a) if a else (0.0 if not delta else float("inf"))
        self.rows.append(
            {
                "name": name,
                "machine": machine,
                "metric": metric,
                "a": a,
                "b": b,
                "delta": delta,
                "rel": rel,
                "breach": abs(rel) > self.threshold,
            }
        )


def _programs_by_name(manifest):
    return {entry["name"]: entry for entry in manifest["programs"]}


def _manifest_label(manifest, fallback):
    provenance = manifest.get("provenance") or {}
    sha = provenance.get("git_sha")
    stamp = time.strftime(
        "%Y-%m-%d %H:%M", time.localtime(manifest["created_unix"])
    )
    if sha:
        return "%s (%s, %s)" % (fallback, sha[:12], stamp)
    return "%s (%s)" % (fallback, stamp)


def diff_manifests(manifest_a, manifest_b, threshold=0.0,
                   label_a="A", label_b="B"):
    """Compare two run manifests; any per-workload relative change whose
    magnitude exceeds ``threshold`` is a breach."""
    result = DiffResult(
        _manifest_label(manifest_a, label_a),
        _manifest_label(manifest_b, label_b),
        threshold,
    )
    progs_a = _programs_by_name(manifest_a)
    progs_b = _programs_by_name(manifest_b)
    for name in sorted(set(progs_a) - set(progs_b)):
        result.warnings.append("workload %s only in %s" % (name, label_a))
    for name in sorted(set(progs_b) - set(progs_a)):
        result.warnings.append("workload %s only in %s" % (name, label_b))
    for name in [n for n in progs_a if n in progs_b]:
        for machine, metric in _METRICS:
            result.add_row(
                name,
                machine,
                metric,
                progs_a[name][machine][metric],
                progs_b[name][machine][metric],
            )
    return result


def diff_against_paper(manifest, threshold=0.0):
    """Check one manifest against the pinned Table I reproduction.

    Per-workload instruction/reference counts must match the pinned
    values within ``threshold`` (0.0 by default: the emulators are
    deterministic, so exact reproduction is the bar).  The paper's own
    headline numbers are appended as warn-only context.
    """
    result = DiffResult("pinned Table I", "this run", threshold)
    programs = _programs_by_name(manifest)
    for name in sorted(set(programs) - set(TABLE1_EXPECTED)):
        result.warnings.append("workload %s has no pinned expectation" % name)
    for name, expected in TABLE1_EXPECTED.items():
        if name not in programs:
            continue
        entry = programs[name]
        base_instr, br_instr, base_refs, br_refs = expected
        result.add_row(name, "baseline", "instructions",
                       base_instr, entry["baseline"]["instructions"])
        result.add_row(name, "branchreg", "instructions",
                       br_instr, entry["branchreg"]["instructions"])
        result.add_row(name, "baseline", "data_refs",
                       base_refs, entry["baseline"]["data_refs"])
        result.add_row(name, "branchreg", "data_refs",
                       br_refs, entry["branchreg"]["data_refs"])
    totals = manifest["totals"]
    measured = (
        ("total instruction change", totals["instr_change"]),
        ("total data reference change", totals["refs_change"]),
        (
            "transfer fraction of instructions",
            (
                totals["branchreg"]["transfers"]
                / totals["branchreg"]["instructions"]
                if totals["branchreg"]["instructions"]
                else 0.0
            ),
        ),
    )
    paper = dict(PAPER_CLAIMS)
    for label, value in measured:
        result.notes.append(
            "%s: measured %+.1f%% vs paper %+.1f%% (informational, "
            "not gated)" % (label, 100.0 * value, 100.0 * paper[label])
        )
    return result


def render_diff(result, max_rows=20):
    """Human-readable report; breached rows always shown, then the
    largest remaining changes up to ``max_rows`` total."""
    out = []
    out.append("comparing %s -> %s" % (result.label_a, result.label_b))
    out.append(
        "threshold: %.3f%% relative change per workload metric"
        % (100.0 * result.threshold)
    )
    changed = [row for row in result.rows if row["delta"]]
    out.append(
        "%d workload metrics compared, %d changed, %d breached"
        % (len(result.rows), len(changed), len(result.breaches))
    )
    shown = result.breaches + sorted(
        (r for r in changed if not r["breach"]),
        key=lambda r: -abs(r["rel"]),
    )
    shown = shown[:max_rows]
    if shown:
        out.append(
            "   %-10s %-9s %-13s %12s %12s %9s  %s"
            % ("workload", "machine", "metric", "before", "after", "rel",
               "gate")
        )
        for row in shown:
            out.append(
                "   %-10s %-9s %-13s %12d %12d %+8.3f%%  %s"
                % (
                    row["name"],
                    row["machine"],
                    row["metric"],
                    row["a"],
                    row["b"],
                    100.0 * row["rel"],
                    "BREACH" if row["breach"] else "ok",
                )
            )
    elif result.rows:
        out.append("   no changes -- runs are identical on gated metrics")
    for warning in result.warnings:
        out.append("warning: %s" % warning)
    for note in result.notes:
        out.append("note: %s" % note)
    out.append("result: %s" % ("DRIFT DETECTED" if result.breaches else "OK"))
    return "\n".join(out)


__all__ = [
    "PAPER_CLAIMS",
    "TABLE1_EXPECTED",
    "DiffResult",
    "diff_against_paper",
    "diff_manifests",
    "render_diff",
]
