"""The ``repro report`` driver: run a suite under full instrumentation and
emit a run manifest plus a human-readable profile.

This is the artifact-producing path every perf PR uses for before/after
comparisons: it resets the metric/span recorders, attaches an
:class:`~repro.obs.emuobs.EmulationObserver` (and optionally a JSON-lines
event sink), runs the suite through the shared harness, and assembles a
schema-validated manifest (see :mod:`repro.obs.manifest`).

A saved manifest can be *replayed* -- re-rendered without re-running
anything -- which is how older ``BENCH_*.json`` artifacts stay readable.
"""

import time

from repro.obs import events
from repro.obs.emuobs import EmulationObserver
from repro.obs.log import log
from repro.obs.manifest import (
    artifact_cache_counters,
    build_manifest,
    collect_provenance,
    load_manifest,
    memo_cache_counters,
    supervision_counters,
    write_manifest,
)
from repro.obs.metrics import METRICS
from repro.obs.spans import RECORDER

PHASE_ORDER = ("frontend", "opt", "codegen", "emulate", "workload")


def run_report(
    subset=None,
    limit=None,
    sample_every=65536,
    events_path=None,
    reset=True,
    argv=None,
    fault_tolerant=False,
    deadline_s=None,
    jobs=None,
    cache_dir=False,
    engine=None,
    limit_overrides=None,
    supervise=None,
    max_attempts=None,
    checkpoint=None,
    resume=False,
    interrupt_after=None,
):
    """Run the (sub)suite instrumented; returns {"manifest", "text", "pairs"}.

    ``engine`` selects the emulation run loop ("fast"/"reference";
    default ``REPRO_ENGINE``, else "fast") and is recorded in the
    manifest's ``config.engine`` field (schema v5).

    ``subset`` is an iterable of workload names (None = all 19);
    ``events_path`` writes the raw event stream as JSON lines alongside
    the manifest; ``reset`` clears the global metric/span recorders first
    so the manifest reflects only this run.  ``argv`` is recorded in the
    manifest's provenance section (defaults to this process's command
    line).  ``fault_tolerant`` keeps the run going past per-workload
    typed errors and records them in the manifest's ``failures``
    section (the ``repro triage`` input); ``deadline_s`` arms the
    per-emulation wall-clock watchdog.

    ``jobs`` fans the workloads out across worker processes (default
    ``REPRO_JOBS``, else 1); each worker attaches its own
    ``EmulationObserver(sample_every=...)`` and the folded telemetry
    produces a manifest identical in totals, per-workload stats, and
    failure records to a serial run.  Parallel runs record a
    ``parallel`` manifest section with the job count and artifact-cache
    hit/miss/corrupt counters.

    The artifact cache is *off* by default here (``cache_dir=False``,
    unlike ``run_suite``): the report is the measuring instrument, and a
    warm cache would silently drop the frontend/opt/codegen phase rows
    from the profile because nothing was compiled.  Pass ``cache_dir``
    (a path, or None for the ``REPRO_CACHE_DIR``/platform default) to
    trade compile-phase fidelity for speed.

    ``supervise`` / ``max_attempts`` / ``checkpoint`` / ``resume`` /
    ``limit_overrides`` forward to :func:`~repro.harness.runner
    .run_suite` (see ``docs/ROBUSTNESS.md``).  Supervised or
    checkpointed runs record a ``supervision`` manifest section
    (schema v7) with retry / crash / quarantine / checkpoint telemetry,
    and an interrupted run (Ctrl-C) still returns a *valid partial
    manifest* -- ``supervision.interrupted`` true, ``remaining`` listing
    the unfinished workloads -- instead of raising, with
    ``result["interrupted"]`` set so the CLI can exit 130.
    """
    from repro.emu.fastcore import resolve_engine
    from repro.errors import SuiteInterrupted
    from repro.harness.parallel import default_jobs, resolve_cache_dir
    from repro.harness.runner import DEFAULT_LIMIT, run_suite
    from repro.harness.supervise import SupervisePolicy

    engine = resolve_engine(engine)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    policy = SupervisePolicy.coerce(supervise)
    if policy is None and checkpoint and jobs > 1:
        policy = SupervisePolicy()
    if policy is not None:
        policy = policy.with_attempts(max_attempts)
    supervised = policy is not None or bool(checkpoint)
    if reset:
        METRICS.reset()
        RECORDER.reset()
    sink = events.JsonlSink(events_path) if events_path else None
    previous_sink = events.set_sink(sink) if sink is not None else events.get_sink()
    observer = EmulationObserver(sample_every=sample_every) if jobs == 1 else None
    started = time.perf_counter()
    interrupted = False
    remaining = []
    try:
        pairs = run_suite(
            subset=subset,
            limit=limit if limit is not None else DEFAULT_LIMIT,
            observer=observer,
            use_cache=False,
            fault_tolerant=fault_tolerant,
            deadline_s=deadline_s,
            limit_overrides=limit_overrides,
            jobs=jobs,
            cache_dir=cache_dir,
            sample_every=sample_every,
            engine=engine,
            supervise=policy,
            checkpoint=checkpoint,
            resume=resume,
            interrupt_after=interrupt_after,
        )
    except SuiteInterrupted as exc:
        # Ctrl-C mid-suite: the completed prefix is already durable in
        # the checkpoint journal; emit a valid *partial* manifest that
        # --resume picks up rather than losing the run.
        pairs = exc.partial
        interrupted = True
        remaining = list(exc.remaining)
    finally:
        if sink is not None:
            events.set_sink(previous_sink)
            sink.close()
    duration = time.perf_counter() - started
    span_rows = RECORDER.snapshot()
    metrics_snapshot = METRICS.snapshot()
    workload_durations = {
        row["labels"]["name"]: row["total_s"]
        for row in span_rows
        if row["name"] == "workload" and "name" in row["labels"]
    }
    parallel = None
    if jobs > 1:
        cache_root = resolve_cache_dir(cache_dir)
        parallel = {
            "jobs": jobs,
            "artifact_cache": dict(
                artifact_cache_counters(metrics_snapshot), dir=cache_root
            ),
            "memo_cache": memo_cache_counters(metrics_snapshot),
        }
    supervision = None
    if supervised or interrupted:
        supervision = dict(
            supervision_counters(metrics_snapshot),
            enabled=policy is not None,
            interrupted=interrupted,
        )
        if policy is not None:
            supervision["max_attempts"] = policy.max_attempts
        if checkpoint:
            supervision["checkpoint"]["path"] = str(checkpoint)
        if interrupted:
            supervision["remaining"] = remaining
    manifest = build_manifest(
        pairs,
        config={
            "subset": tuple(subset) if subset else None,
            "limit": limit,
            "engine": engine,
        },
        duration_s=duration,
        span_rows=span_rows,
        phase_totals=RECORDER.phase_totals(),
        metrics_snapshot=metrics_snapshot,
        workload_durations=workload_durations,
        provenance=collect_provenance(argv),
        failures=(
            getattr(pairs, "failures", None)
            if (fault_tolerant or supervised) else None
        ),
        parallel=parallel,
        supervision=supervision,
    )
    log.info(
        "report: %d programs in %.2fs (%d spans, %d metrics)%s",
        len(pairs),
        duration,
        len(span_rows),
        len(METRICS),
        " [interrupted: %d workload(s) remaining]" % len(remaining)
        if interrupted else "",
    )
    return {
        "manifest": manifest,
        "text": render_report(manifest),
        "pairs": pairs,
        "interrupted": interrupted,
        "remaining": remaining,
    }


def replay_report(path):
    """Load a saved manifest and re-render its profile text."""
    manifest = load_manifest(path)
    return {"manifest": manifest, "text": render_report(manifest)}


def save_report(result, out=None):
    """Write a run_report result's manifest; returns the path."""
    return write_manifest(result["manifest"], out)


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------

def _fmt_count(n):
    return "{:,}".format(n)


def render_report(manifest):
    """Human-readable profile: totals, per-program rows, phase profile."""
    env = manifest["environment"]
    totals = manifest["totals"]
    lines = [
        "Run report (%s)" % manifest["schema"],
        "  python %s on %s, repro %s"
        % (env["python"], env["platform"], env["repro_version"]),
        "  %d programs, %.2fs total"
        % (len(manifest["programs"]), manifest["duration_s"]),
        "",
        "%-11s %14s %14s %9s %9s %9s"
        % ("program", "base instr", "brm instr", "d-instr", "d-refs", "time"),
    ]
    for prog in manifest["programs"]:
        lines.append(
            "%-11s %14s %14s %+8.1f%% %+8.1f%% %8s"
            % (
                prog["name"],
                _fmt_count(prog["baseline"]["instructions"]),
                _fmt_count(prog["branchreg"]["instructions"]),
                100.0 * prog["derived"]["instr_change"],
                100.0 * prog["derived"]["refs_change"],
                "%.3fs" % prog["duration_s"] if "duration_s" in prog else "-",
            )
        )
    lines.append(
        "%-11s %14s %14s %+8.1f%% %+8.1f%%"
        % (
            "TOTAL",
            _fmt_count(totals["baseline"]["instructions"]),
            _fmt_count(totals["branchreg"]["instructions"]),
            100.0 * totals["instr_change"],
            100.0 * totals["refs_change"],
        )
    )
    lines.append("")
    lines.append("Phase profile:")
    lines.append(
        "%-28s %8s %12s %12s %12s"
        % ("span", "count", "total", "mean", "max")
    )
    for row in manifest["phases"]:
        label = row["name"]
        if row.get("labels"):
            label += "{%s}" % ",".join(
                "%s=%s" % kv for kv in sorted(row["labels"].items())
            )
        mean = row["total_s"] / row["count"] if row["count"] else 0.0
        lines.append(
            "%-28s %8d %11.4fs %11.6fs %11.6fs"
            % (label[:28], row["count"], row["total_s"], mean, row.get("max_s", 0.0))
        )
    if manifest["phase_totals"]:
        lines.append("")
        lines.append("Per-phase totals:")
        ordered = sorted(
            manifest["phase_totals"].items(),
            key=lambda kv: (
                PHASE_ORDER.index(kv[0]) if kv[0] in PHASE_ORDER else 99,
                kv[0],
            ),
        )
        for phase, total in ordered:
            lines.append("  %-12s %10.4fs" % (phase, total))
    percentile_rows = [
        row
        for row in manifest.get("metrics", {}).get("histograms", ())
        if "p50" in row
    ]
    if percentile_rows:
        lines.append("")
        lines.append("Histogram percentiles:")
        lines.append(
            "%-28s %8s %10s %10s %10s %10s"
            % ("histogram", "count", "mean", "p50", "p95", "p99")
        )
        for row in percentile_rows:
            label = row["name"]
            if row.get("labels"):
                label += "{%s}" % ",".join(
                    "%s=%s" % kv for kv in sorted(row["labels"].items())
                )
            note = (
                " (+%d unsampled)" % row["sample_overflow"]
                if row.get("sample_overflow")
                else ""
            )
            lines.append(
                "%-28s %8d %10.4g %10.4g %10.4g %10.4g%s"
                % (
                    label[:28],
                    row["count"],
                    row["mean"],
                    row["p50"],
                    row["p95"],
                    row["p99"],
                    note,
                )
            )
    lines.append("")
    lines.append("Cache telemetry:")
    memo = memo_cache_counters(manifest.get("metrics", {}))
    lines.append(
        "  memo cache      %d hit(s), %d miss(es), %d bypassed%s"
        % (
            memo["hits"],
            memo["misses"],
            memo["bypassed"],
            " (%.0f%% hit rate)" % (100.0 * memo["hit_rate"])
            if memo["hit_rate"] is not None
            else "",
        )
    )
    artifact = (manifest.get("parallel") or {}).get("artifact_cache")
    if artifact is None:
        artifact = artifact_cache_counters(manifest.get("metrics", {}))
    if artifact.get("hits") or artifact.get("misses") or artifact.get("corrupt"):
        lines.append(
            "  artifact cache  %d hit(s), %d miss(es), %d corrupt%s%s"
            % (
                artifact["hits"],
                artifact["misses"],
                artifact["corrupt"],
                " (%.0f%% hit rate)" % (100.0 * artifact["hit_rate"])
                if artifact.get("hit_rate") is not None
                else "",
                ", %d B read / %d B written"
                % (artifact["bytes_read"], artifact["bytes_written"])
                if artifact.get("bytes_read") is not None
                else "",
            )
        )
    supervision = manifest.get("supervision")
    if supervision is not None:
        lines.append("")
        lines.append("Supervision:")
        lines.append(
            "  %d retr%s, %d worker crash(es), %d hang kill(s), "
            "%d quarantined"
            % (
                supervision.get("retries", 0),
                "y" if supervision.get("retries", 0) == 1 else "ies",
                supervision.get("worker_crashes", 0),
                supervision.get("hang_kills", 0),
                supervision.get("quarantined", 0),
            )
        )
        checkpoint = supervision.get("checkpoint")
        if checkpoint and (checkpoint["hits"] or checkpoint["writes"]):
            lines.append(
                "  checkpoint      %d hit(s), %d write(s)%s"
                % (
                    checkpoint["hits"],
                    checkpoint["writes"],
                    " (%s)" % checkpoint["path"]
                    if checkpoint.get("path") else "",
                )
            )
        if supervision.get("interrupted"):
            remaining = supervision.get("remaining", [])
            lines.append(
                "  INTERRUPTED: %d workload(s) unfinished (%s); "
                "re-run with --resume"
                % (len(remaining), ", ".join(remaining) or "none")
            )
    failures = manifest.get("failures")
    if failures is not None:
        lines.append("")
        lines.append("Failures: %d" % len(failures))
        for record in failures:
            lines.append(
                "  %-11s %-22s %s"
                % (record["workload"], record["error"], record["message"])
            )
        lines.append("  (run 'repro triage' on this manifest for post-mortems)")
    return "\n".join(lines)
