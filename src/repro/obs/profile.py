"""Dynamic execution profiler with source attribution.

The profiler answers "where did the cycles go" for any workload on either
machine: per-PC and per-basic-block dynamic instruction counts,
control-flow edge counts (with taken/not-taken breakdowns), delay-slot
outcomes on the baseline machine, carrier/prefetch-distance outcomes on
the branch-register machine, and -- through the debug map the loader
builds from the ``line`` fields the code generators stamp -- an annotated
hot listing over the SmallC source.

Collection is *exact* yet cheap: the emulator's profiled loop
(:meth:`repro.emu.base.BaseEmulator._run_profiled`) records one counter
bump per taken control transfer -- nothing per straight-line instruction.
Everything else is reconstructed afterwards from the edge table plus the
entry point and final pc: every edge target starts a straight-line
segment and every edge source ends one, so a difference array over those
boundary events rebuilds the exact per-PC execution counts, and

    sum(per-PC counts) == RunStats.instructions

holds identically -- the invariant the profile tests assert.  Control-flow
edges are attributed to the *transfer* instruction (the branch on the
baseline machine, one word before the observed discontinuity because of
the delay slot; the carrier itself on the branch-register machine).

One documented imprecision: a transfer whose target is exactly the next
sequential address is indistinguishable from fall-through in the pc
stream and is tallied as not-taken; its executed instructions are still
counted exactly.
"""

import json
from collections import Counter

from repro.codegen.common import BASELINE_CONTROL
from repro.obs.manifest import ManifestError, _validate

PROFILE_SCHEMA_ID = "repro.profile/1"

_BLOCK_SCHEMA = {
    "type": "object",
    "required": ["start", "end", "count", "instructions", "function"],
    "properties": {
        "start": {"type": "integer"},
        "end": {"type": "integer"},
        "count": {"type": "integer"},
        "instructions": {"type": "integer"},
        "function": {"type": "string"},
    },
}

_LINE_SCHEMA = {
    "type": "object",
    "required": ["function", "line", "count"],
    "properties": {
        "function": {"type": "string"},
        "line": {"type": "integer"},
        "count": {"type": "integer"},
    },
}

_EDGE_SCHEMA = {
    "type": "object",
    "required": ["from", "to", "count"],
    "properties": {
        "from": {"type": "integer"},
        "to": {"type": "integer"},
        "count": {"type": "integer"},
    },
}

_BRANCH_SCHEMA = {
    "type": "object",
    "required": ["addr", "op", "kind", "function", "line", "executed", "taken",
                 "not_taken"],
    "properties": {
        "addr": {"type": "integer"},
        "op": {"type": "string"},
        "kind": {"type": "string"},
        "cond": {"type": "string"},
        "function": {"type": "string"},
        "line": {"type": "integer"},
        "executed": {"type": "integer"},
        "taken": {"type": "integer"},
        "not_taken": {"type": "integer"},
    },
}

PROFILE_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "workload",
        "machine",
        "instructions",
        "data_refs",
        "exit_code",
        "pc_total",
        "blocks",
        "functions",
        "lines",
        "edges",
        "branches",
    ],
    "properties": {
        "schema": {"type": "string", "const": PROFILE_SCHEMA_ID},
        "workload": {"type": "string"},
        "machine": {"type": "string", "enum": ["baseline", "branchreg"]},
        "instructions": {"type": "integer"},
        "data_refs": {"type": "integer"},
        "exit_code": {"type": "integer"},
        "pc_total": {"type": "integer"},
        "blocks": {"type": "array", "items": _BLOCK_SCHEMA},
        "functions": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["function", "count"],
                "properties": {
                    "function": {"type": "string"},
                    "count": {"type": "integer"},
                },
            },
        },
        "lines": {"type": "array", "items": _LINE_SCHEMA},
        "edges": {"type": "array", "items": _EDGE_SCHEMA},
        "branches": {"type": "array", "items": _BRANCH_SCHEMA},
        # Baseline machine only.
        "delay_slots": {
            "type": "object",
            "required": ["filled", "unfilled"],
            "properties": {
                "filled": {"type": "integer"},
                "unfilled": {"type": "integer"},
            },
        },
        # Branch-register machine only.
        "carriers": {
            "type": "object",
            "required": ["noop", "useful", "bta"],
            "properties": {
                "noop": {"type": "integer"},
                "useful": {"type": "integer"},
                "bta": {"type": "integer"},
            },
        },
        "prefetch_gap": {"type": "object"},
        "compare_gap": {"type": "object"},
    },
}


def validate_profile(doc):
    """Raise :class:`~repro.obs.manifest.ManifestError` on schema
    violation; returns the document for chaining."""
    _validate(doc, PROFILE_SCHEMA, "$")
    return doc


class ExecutionProfiler:
    """Per-run edge collector; attach via the emulators' ``profiler=``
    keyword.  One instance profiles one run."""

    def __init__(self):
        # The loop packs (observation pc, target) into one int key --
        # cheaper to build and hash than a tuple on the hot path.
        self.raw_edges = Counter()  # (obs_pc << 32 | target) -> count
        self.seg_start = None  # final segment start (written by the loop)
        self.entry = None
        self.final_end = None
        self.shadow = 0
        self.image = None
        self.machine = ""
        self.stats = None
        self._edges = None

    @property
    def edges(self):
        """(transfer addr, target addr) -> count, decoded from the packed
        keys with the machine's transfer shadow applied."""
        if self._edges is None or len(self._edges) != len(self.raw_edges):
            shadow = self.shadow
            self._edges = {
                ((key >> 32) - shadow, key & 0xFFFFFFFF): n
                for key, n in self.raw_edges.items()
            }
        return self._edges

    # -- emulator hooks ----------------------------------------------------

    def on_start(self, emulator):
        self.image = emulator.image
        self.machine = emulator.MACHINE_NAME
        self.shadow = emulator.TRANSFER_SHADOW
        self.entry = emulator.pc

    def on_end(self, emulator):
        """Record where execution stopped (the pc sits one word past the
        halting instruction on both machines)."""
        self.stats = emulator.stats
        self.final_end = emulator.pc - 4

    # -- reconstruction ----------------------------------------------------

    def _boundary_events(self):
        """(starts, ends): how many straight-line segments begin / finish
        at each address.  Every edge target starts a segment and every
        edge source (plus the transfer shadow) ends one; the entry point
        starts the first and the final pc ends the last.  If the very last
        executed step was itself a transfer, its target never ran, so that
        start is cancelled instead of closing an empty segment."""
        shadow = self.shadow
        starts = Counter()
        ends = Counter()
        for (src, dst), n in self.edges.items():
            starts[dst] += n
            ends[src + shadow] += n
        if self.entry is not None:
            starts[self.entry] += 1
        if self.final_end is not None:
            if self.seg_start is not None and self.final_end < self.seg_start:
                starts[self.seg_start] -= 1
            else:
                ends[self.final_end] += 1
        return starts, ends

    def pc_counts(self):
        """Exact dynamic execution count per text address, rebuilt from the
        segment boundary events with a difference array."""
        starts, ends = self._boundary_events()
        diff = {}
        for addr, n in starts.items():
            diff[addr] = diff.get(addr, 0) + n
        for addr, n in ends.items():
            diff[addr + 4] = diff.get(addr + 4, 0) - n
        counts = {}
        bounds = sorted(diff)
        running = 0
        for i, addr in enumerate(bounds):
            running += diff[addr]
            if running and i + 1 < len(bounds):
                for a in range(addr, bounds[i + 1], 4):
                    counts[a] = running
        return counts

    def basic_blocks(self):
        """``[(start, end, count), ...]``: maximal straight-line address
        runs split at every observed control-flow boundary.  The dynamic
        count is uniform across a block by construction (control only
        enters at edge targets and leaves at edge sources, which are
        exactly the split points)."""
        pcs = self.pc_counts()
        if not pcs:
            return []
        starts, ends = self._boundary_events()
        blocks = []
        addrs = sorted(pcs)
        start = prev = addrs[0]
        for addr in addrs[1:]:
            if (
                addr != prev + 4
                or addr in starts
                or prev in ends
                or pcs[addr] != pcs[start]
            ):
                blocks.append((start, prev, pcs[start]))
                start = addr
            prev = addr
        blocks.append((start, prev, pcs[start]))
        return blocks

    # -- derived views -----------------------------------------------------

    def _is_transfer_site(self, ins):
        if self.machine == "baseline":
            return ins.op in BASELINE_CONTROL
        return ins.br != 0

    def _branch_rows(self, pcs):
        taken = Counter()
        for (src, _dst), n in self.edges.items():
            taken[src] += n
        sites = set(taken)
        for addr in pcs:
            if self._is_transfer_site(self.image.instruction_at(addr)):
                sites.add(addr)
        rows = []
        for addr in sites:
            ins = self.image.instruction_at(addr)
            fn, line = self.image.source_location(addr)
            if self.machine == "baseline":
                kind = ins.op
                conditional = ins.op in ("bcc", "fbcc")
            else:
                kind = getattr(ins, "tkind", "jump")
                conditional = kind == "cond"
            executed = pcs.get(addr, 0)
            t = taken.get(addr, 0)
            row = {
                "addr": addr,
                "op": ins.op,
                "kind": kind,
                "function": fn,
                "line": line,
                "executed": executed,
                "taken": t,
                "not_taken": max(executed - t, 0) if conditional else 0,
            }
            if conditional and ins.cond:
                row["cond"] = ins.cond
            rows.append(row)
        rows.sort(key=lambda r: (-r["executed"], r["addr"]))
        return rows

    def _delay_slot_tallies(self, pcs):
        """Dynamic filled/unfilled delay-slot outcomes (baseline): the slot
        one word after each executed branch either does useful work or is
        a noop the slot filler could not fill."""
        filled = 0
        unfilled = 0
        for addr, n in pcs.items():
            if self.image.instruction_at(addr).op in BASELINE_CONTROL:
                if self.image.instruction_at(addr + 4).is_noop():
                    unfilled += n
                else:
                    filled += n
        return {"filled": filled, "unfilled": unfilled}

    def to_profile(self, workload=""):
        """The schema-validated JSON profile document."""
        pcs = self.pc_counts()
        stats = self.stats
        blocks = []
        for start, end, n in self.basic_blocks():
            length = (end - start) // 4 + 1
            fn, _line = self.image.source_location(start)
            blocks.append(
                {
                    "start": start,
                    "end": end,
                    "count": n,
                    "instructions": n * length,
                    "function": fn,
                }
            )
        blocks.sort(key=lambda b: (-b["instructions"], b["start"]))
        func_counts = Counter()
        line_counts = Counter()
        for addr, n in pcs.items():
            fn, line = self.image.source_location(addr)
            func_counts[fn] += n
            if line:
                line_counts[(fn, line)] += n
        functions = [
            {"function": fn, "count": n}
            for fn, n in sorted(
                func_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        lines = [
            {"function": fn, "line": line, "count": n}
            for (fn, line), n in sorted(
                line_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        edges = [
            {"from": src, "to": dst, "count": n}
            for (src, dst), n in sorted(
                self.edges.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        profile = {
            "schema": PROFILE_SCHEMA_ID,
            "workload": workload,
            "machine": self.machine,
            "instructions": stats.instructions,
            "data_refs": stats.data_refs,
            "exit_code": stats.exit_code,
            "pc_total": sum(pcs.values()),
            "blocks": blocks,
            "functions": functions,
            "lines": lines,
            "edges": edges,
            "branches": self._branch_rows(pcs),
        }
        if self.machine == "baseline":
            profile["delay_slots"] = self._delay_slot_tallies(pcs)
        else:
            profile["carriers"] = {
                "noop": stats.noop_carriers,
                "useful": stats.useful_carriers,
                "bta": stats.bta_carriers,
            }
            profile["prefetch_gap"] = {
                str(k): v for k, v in sorted(stats.prefetch_gap.items())
            }
            profile["compare_gap"] = {
                str(k): v for k, v in sorted(stats.compare_gap.items())
            }
        return validate_profile(profile)


class ProfileRun:
    """Everything one ``repro profile`` invocation produced."""

    def __init__(self, workload, machine, profile, profiler, image, stats):
        self.workload = workload
        self.machine = machine
        self.profile = profile
        self.profiler = profiler
        self.image = image
        self.stats = stats


def run_profile(name, machine, limit=None, branchreg_options=None):
    """Compile ``name`` for ``machine``, run it under the profiler, and
    return a :class:`ProfileRun` with the validated profile document."""
    from repro.ease.environment import compile_for_machine
    from repro.emu.baseline_emu import run_baseline
    from repro.emu.branchreg_emu import run_branchreg
    from repro.harness.runner import DEFAULT_LIMIT, resolve_workloads
    from repro.obs import span

    workload = resolve_workloads([name])[0]
    options = dict(branchreg_options or {}) if machine == "branchreg" else {}
    image = compile_for_machine(workload.source, machine, **options)
    profiler = ExecutionProfiler()
    runner = run_baseline if machine == "baseline" else run_branchreg
    with span("profile", machine=machine, name=name):
        stats = runner(
            image,
            stdin=workload.stdin_bytes(),
            limit=limit or DEFAULT_LIMIT,
            program=name,
            profiler=profiler,
        )
    return ProfileRun(
        workload=workload,
        machine=machine,
        profile=profiler.to_profile(name),
        profiler=profiler,
        image=image,
        stats=stats,
    )


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------

def _percent(part, whole):
    return 100.0 * part / whole if whole else 0.0


def render_listing(run, top=10):
    """The human-readable hot listing: hot source lines annotated with the
    workload's source text, hot blocks, branch behaviour, and a per-PC
    annotated disassembly of the hottest function."""
    from repro.rtl.printer import minstr_text

    profile = run.profile
    source_lines = run.workload.source.splitlines()
    total = profile["instructions"]
    out = []
    out.append(
        "profile: %s on %s -- %d instructions, %d data refs, exit %d"
        % (
            profile["workload"],
            profile["machine"],
            total,
            profile["data_refs"],
            profile["exit_code"],
        )
    )
    attributed = sum(row["count"] for row in profile["lines"])
    out.append(
        "source attribution: %d of %d dynamic instructions (%.1f%%)"
        % (attributed, total, _percent(attributed, total))
    )

    out.append("")
    out.append("hot source lines (top %d of %d):" % (
        min(top, len(profile["lines"])), len(profile["lines"])))
    out.append("   %10s %6s %5s  %s" % ("count", "%", "line", "source"))
    for row in profile["lines"][:top]:
        line_no = row["line"]
        text = (
            source_lines[line_no - 1].rstrip()
            if 0 < line_no <= len(source_lines)
            else "<line %d>" % line_no
        )
        out.append(
            "   %10d %6.2f %5d  | %s"
            % (row["count"], _percent(row["count"], total), line_no, text)
        )

    out.append("")
    out.append("hot blocks (top %d of %d):" % (
        min(top, len(profile["blocks"])), len(profile["blocks"])))
    out.append(
        "   %10s %10s  %-21s %s"
        % ("instrs", "execs", "addresses", "function")
    )
    for block in profile["blocks"][:top]:
        out.append(
            "   %10d %10d  0x%06x-0x%06x     %s"
            % (
                block["instructions"],
                block["count"],
                block["start"],
                block["end"],
                block["function"],
            )
        )

    branches = profile["branches"]
    conds = [b for b in branches if b["not_taken"] or "cond" in b]
    out.append("")
    out.append("hot conditional transfers (top %d of %d):" % (
        min(top, len(conds)), len(conds)))
    out.append(
        "   %10s %10s %7s  %-10s %5s  %s"
        % ("executed", "taken", "taken%", "op", "line", "function")
    )
    for b in conds[:top]:
        out.append(
            "   %10d %10d %6.1f%%  %-10s %5d  %s"
            % (
                b["executed"],
                b["taken"],
                _percent(b["taken"], b["executed"]),
                b["op"] + ("." + b["cond"] if b.get("cond") else ""),
                b["line"],
                b["function"],
            )
        )

    if "delay_slots" in profile:
        slots = profile["delay_slots"]
        executed = slots["filled"] + slots["unfilled"]
        out.append("")
        out.append(
            "delay slots: %d executed, %d filled (%.1f%%), %d noop"
            % (
                executed,
                slots["filled"],
                _percent(slots["filled"], executed),
                slots["unfilled"],
            )
        )
    if "carriers" in profile:
        carriers = profile["carriers"]
        transfers = carriers["noop"] + carriers["useful"]
        out.append("")
        out.append(
            "carriers: %d transfers, %d useful (%.1f%%), %d noop, %d bta"
            % (
                transfers,
                carriers["useful"],
                _percent(carriers["useful"], transfers),
                carriers["noop"],
                carriers["bta"],
            )
        )
        gaps = profile.get("prefetch_gap", {})
        if gaps:
            ready = gaps.get("-1", 0)
            out.append(
                "prefetch distance (calc->use, instructions): ready=%d  %s"
                % (
                    ready,
                    "  ".join(
                        "%s:%d" % (k, v)
                        for k, v in sorted(
                            gaps.items(), key=lambda kv: int(kv[0])
                        )
                        if k != "-1"
                    ),
                )
            )

    if profile["functions"]:
        hottest = profile["functions"][0]["function"]
        pcs = run.profiler.pc_counts()
        addrs = sorted(run.image.function_addrs.get(hottest, ()))
        out.append("")
        out.append(
            "annotated disassembly of hottest function %s "
            "(%d dynamic instructions, %.1f%%):"
            % (
                hottest,
                profile["functions"][0]["count"],
                _percent(profile["functions"][0]["count"], total),
            )
        )
        out.append("   %10s  %-8s %5s  %s" % ("count", "addr", "line", "instruction"))
        for addr in addrs:
            ins = run.image.instruction_at(addr)
            _fn, line = run.image.source_location(addr)
            out.append(
                "   %10d  0x%06x %5d  %s"
                % (pcs.get(addr, 0), addr, line, minstr_text(ins))
            )
    return "\n".join(out)


def write_profile(profile, path):
    """Write the JSON profile document."""
    with open(path, "w") as handle:
        json.dump(profile, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_profile(path):
    """Read and validate a profile document."""
    with open(path, "r") as handle:
        doc = json.load(handle)
    return validate_profile(doc)


__all__ = [
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_ID",
    "ExecutionProfiler",
    "ProfileRun",
    "ManifestError",
    "load_profile",
    "render_listing",
    "run_profile",
    "validate_profile",
    "write_profile",
]
