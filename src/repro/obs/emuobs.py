"""Low-overhead emulation hooks: sampled telemetry from the emulators.

Per-instruction callbacks would swamp the interpreters' hot loop, so the
observer works on *sampling*: the emulator's ``run`` loop calls
:meth:`EmulationObserver.on_sample` once every ``sample_every`` retired
instructions, and full-fidelity numbers (transfers, prefetch-gap
histograms, icache stats) come from the :class:`~repro.emu.stats.RunStats`
counters the emulator maintains anyway -- snapshotted at each sample point
and in full at ``on_end``.

With no observer attached the emulators run their original, untouched
loop; attaching one adds a single integer comparison per instruction plus
the sampled work, keeping overhead well under the 10% budget the run
reports promise.
"""

from repro.obs import events
from repro.obs.metrics import METRICS


class EmulationObserver:
    """Collects sampled emulator telemetry into metrics and events.

    One observer instance may watch many consecutive runs (the suite
    driver passes a single observer through every workload).
    """

    def __init__(self, sample_every=65536, registry=None):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = sample_every
        self.registry = registry if registry is not None else METRICS
        self.runs = 0
        self.samples = 0

    # -- hooks invoked by BaseEmulator.run ---------------------------------

    def on_start(self, emulator):
        self.runs += 1
        events.emit(
            "emu.start",
            machine=emulator.MACHINE_NAME,
            program=emulator.stats.program,
        )

    def on_sample(self, emulator):
        self.samples += 1
        stats = emulator.stats
        events.emit(
            "emu.sample",
            machine=emulator.MACHINE_NAME,
            program=stats.program,
            icount=emulator.icount,
            transfers=stats.transfers,
            data_refs=stats.data_refs,
            noops=stats.noops,
            cache_stalls=emulator.cache_stalls,
        )

    def on_end(self, emulator):
        stats = emulator.stats
        machine = emulator.MACHINE_NAME
        reg = self.registry
        reg.counter("emu.instructions", machine=machine).inc(stats.instructions)
        reg.counter("emu.transfers", machine=machine).inc(stats.transfers)
        reg.counter("emu.data_refs", machine=machine).inc(stats.data_refs)
        reg.counter("emu.noops", machine=machine).inc(stats.noops)
        if stats.bta_calcs:
            reg.counter("emu.bta_calcs", machine=machine).inc(stats.bta_calcs)
        payload = {
            "machine": machine,
            "program": stats.program,
            "instructions": stats.instructions,
            "transfers": stats.transfers,
            "cond_transfers": stats.cond_transfers,
            "uncond_transfers": stats.uncond_transfers,
            "data_refs": stats.data_refs,
            "noops": stats.noops,
            "exit_code": stats.exit_code,
        }
        if stats.prefetch_gap:
            payload["prefetch_gap"] = {
                str(k): v for k, v in sorted(stats.prefetch_gap.items())
            }
        icache = getattr(stats, "icache", None)
        if icache is not None:
            payload["icache"] = dict(vars(icache))
            payload["cache_stalls"] = getattr(stats, "cache_stalls", 0)
            reg.counter("emu.icache_misses", machine=machine).inc(icache.misses)
            reg.counter("emu.icache_hits", machine=machine).inc(icache.hits)
        events.emit("emu.end", **payload)
