"""Collapsed-stack flamegraph export from the basic-block profiler.

The PR-2 profiler records control-flow *edges*, not call stacks -- the
emulated machines have no frame-pointer chain to walk.  This module
reconstructs approximate stacks gprof-style from the call edges alone:

1. filter the profiled edges down to *call sites* (``call`` ops on the
   baseline machine; transfer-carrying instructions whose ``tkind`` is
   ``"call"`` on the branch-register machine) and aggregate them into a
   function-level caller -> callee multigraph;
2. give every function's *self* count (its dynamically executed
   instructions, from the profile's ``functions`` table) to the call
   paths that reach it, splitting at each step proportionally to the
   observed caller counts -- exactly gprof's attribution assumption
   (time is distributed over callers pro rata, not tracked per call);
3. emit the classic collapsed-stack format (``root;...;leaf count``, one
   line per path) that ``flamegraph.pl``, speedscope, and Brendan
   Gregg's tooling consume directly.

Cycles are cut by never revisiting a function already on the path
(recursion collapses onto its first frame, the standard flamegraph
treatment), and paths are capped at :data:`MAX_DEPTH` frames.
"""

from collections import Counter

#: Recursion guard for pathological call graphs; deeper chains collapse
#: onto their first MAX_DEPTH frames.
MAX_DEPTH = 64


def call_edges(profiler):
    """Function-level call multigraph from one profiled run.

    Returns ``{(caller_fn, callee_fn): count}`` keeping only edges whose
    source instruction is a call site.  Self-calls (direct recursion)
    are kept -- :func:`collapsed_stacks` excludes them from attribution
    but they still document the recursion in the profile.
    """
    image = profiler.image
    machine = profiler.machine
    edges = Counter()
    for (src, dst), n in profiler.edges.items():
        ins = image.instruction_at(src)
        if machine == "baseline":
            if ins.op != "call":
                continue
        elif not (ins.br and getattr(ins, "tkind", "jump") == "call"):
            continue
        caller, _ = image.source_location(src)
        callee, _ = image.source_location(dst)
        edges[(caller, callee)] += n
    return dict(edges)


def _paths(fn, callers, incoming, depth, seen):
    """``[(path, share), ...]``: root-to-``fn`` call paths with the
    fraction of ``fn``'s self count each should receive."""
    inbound = callers.get(fn)
    if not inbound or depth <= 0 or fn in seen:
        return [((fn,), 1.0)]
    out = []
    total = incoming[fn]
    blocked = seen | {fn}
    for caller, n in inbound.items():
        weight = n / total
        for path, share in _paths(caller, callers, incoming, depth - 1, blocked):
            out.append((path + (fn,), share * weight))
    return out


def collapsed_stacks(profiler, profile):
    """``{"root;...;leaf": count}`` -- collapsed stacks for one run.

    ``profile`` is the run's :func:`~repro.obs.profile.ExecutionProfiler.
    to_profile` document (its ``functions`` table carries the per-function
    dynamic instruction counts that become frame widths).
    """
    graph = call_edges(profiler)
    callers = {}
    incoming = Counter()
    for (caller, callee), n in graph.items():
        if caller == callee:
            continue  # self-recursion cannot parent its own frame
        callers.setdefault(callee, {})[caller] = (
            callers.get(callee, {}).get(caller, 0) + n
        )
        incoming[callee] += n
    stacks = Counter()
    for row in profile["functions"]:
        fn, count = row["function"], row["count"]
        if not count:
            continue
        for path, share in _paths(fn, callers, incoming, MAX_DEPTH, frozenset()):
            credit = int(round(count * share))
            if credit:
                stacks[";".join(path)] += credit
    return dict(stacks)


def render_flame(stacks):
    """The collapsed-stack text: ``stack count`` lines, widest first."""
    lines = [
        "%s %d" % (stack, count)
        for stack, count in sorted(
            stacks.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return "\n".join(lines)


def run_flame(subset=None, machine="branchreg", limit=None):
    """Profile the (sub)suite and build per-workload collapsed stacks.

    Returns ``{workload: {stack: count}}``.  Each workload runs under
    its own :class:`~repro.obs.profile.ExecutionProfiler` on ``machine``;
    the per-workload stacks are namespaced under the workload name when
    rendered by :func:`render_flame_suite` so one file can hold the
    whole suite.
    """
    from repro.harness.runner import resolve_workloads
    from repro.obs.profile import run_profile

    results = {}
    for wl in resolve_workloads(tuple(subset) if subset is not None else None):
        run = run_profile(wl.name, machine, limit=limit)
        results[wl.name] = collapsed_stacks(run.profiler, run.profile)
    return results


def render_flame_suite(results):
    """Suite-wide collapsed stacks: each workload's stacks rooted under a
    frame named after the workload, so one flamegraph shows the whole
    suite side by side."""
    merged = {}
    for name, stacks in sorted(results.items()):
        for stack, count in stacks.items():
            merged["%s;%s" % (name, stack)] = count
    return render_flame(merged)


def write_flame(text, out=None):
    """Write collapsed stacks; returns the path."""
    out = out or "flame.txt"
    with open(out, "w") as handle:
        handle.write(text)
        if text and not text.endswith("\n"):
            handle.write("\n")
    return out


__all__ = [
    "MAX_DEPTH",
    "call_edges",
    "collapsed_stacks",
    "render_flame",
    "render_flame_suite",
    "run_flame",
    "write_flame",
]
