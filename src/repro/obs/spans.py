"""Span/phase timing: context-manager and decorator wall-time profiling.

A *span* is a named, optionally labelled region of wall time ("frontend.parse",
"emulate" with ``machine=branchreg``).  Spans aggregate in place -- each
(name, labels) pair keeps a count / total / min / max rather than a log of
every occurrence -- so instrumenting a pass that runs thousands of times
per suite costs two ``perf_counter`` calls and one dict update per entry,
and memory stays bounded.

The first dot-separated component of a span name is its *phase*
("frontend", "opt", "codegen", "emulate", "workload"), which is how the
run manifest groups the profile table.

If an event sink is attached (:mod:`repro.obs.events`), every span
completion additionally emits a ``span`` event so external tools can see
the raw stream.  When a trace context is active (:mod:`repro.obs.trace`)
each span entry also opens a trace span, so the emitted event carries
``trace_id`` / ``span_id`` / ``parent_id`` and the whole run reassembles
into a hierarchy -- including across ``--jobs N`` worker processes.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps

from repro.obs import events, trace


def _label_key(labels):
    return tuple(sorted(labels.items()))


@dataclass
class SpanStats:
    """Aggregated timings for one (name, labels) pair."""

    name: str
    labels: dict
    count: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = 0.0

    def record(self, duration):
        self.count += 1
        self.total_s += duration
        if duration < self.min_s:
            self.min_s = duration
        if duration > self.max_s:
            self.max_s = duration

    @property
    def phase(self):
        return self.name.split(".", 1)[0]


class SpanRecorder:
    """Aggregates span timings; one process-wide instance by default."""

    def __init__(self):
        self._spans = {}

    @contextmanager
    def span(self, name, /, **labels):
        token = trace.push_span()
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            trace.pop_span(token)
            self._record(name, labels, duration, token=token)

    def timed(self, name, /, **labels):
        """Decorator form: ``@timed("opt.copyprop")``."""

        def deco(fn):
            @wraps(fn)
            def wrapper(*args, **kwargs):
                token = trace.push_span()
                start = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    duration = time.perf_counter() - start
                    trace.pop_span(token)
                    self._record(name, labels, duration, token=token)

            return wrapper

        return deco

    def _record(self, name, labels, duration, token=None):
        key = (name, _label_key(labels))
        stats = self._spans.get(key)
        if stats is None:
            stats = SpanStats(name=name, labels=dict(labels))
            self._spans[key] = stats
        stats.record(duration)
        if token is None:
            events.emit("span", name=name, labels=labels, duration_s=duration)
        else:
            # The span event is emitted *after* pop, so the ambient
            # context would stamp the parent's ids; pass this span's own
            # identity explicitly (explicit fields win over stamps).
            extra = {"trace_id": token.trace_id, "span_id": token.span_id}
            if token.parent_id is not None:
                extra["parent_id"] = token.parent_id
            events.emit(
                "span", name=name, labels=labels, duration_s=duration, **extra
            )

    def merge_rows(self, rows):
        """Fold :meth:`snapshot` rows from another recorder into this one.

        The parallel suite runner uses this to aggregate per-worker span
        timings: counts and totals sum, min/max combine.  Merging does not
        re-emit ``span`` events (the workers already emitted them into
        their own captured streams; see ``repro.obs.events.replay``).
        """
        for row in rows:
            key = (row["name"], _label_key(row.get("labels", {})))
            stats = self._spans.get(key)
            if stats is None:
                stats = SpanStats(name=row["name"], labels=dict(row.get("labels", {})))
                self._spans[key] = stats
            stats.count += row["count"]
            stats.total_s += row["total_s"]
            if row["count"]:
                stats.min_s = min(stats.min_s, row["min_s"])
                stats.max_s = max(stats.max_s, row["max_s"])
        return self

    def reset(self):
        self._spans.clear()

    def __len__(self):
        return len(self._spans)

    def snapshot(self):
        """Serialisable rows sorted by descending total time."""
        rows = []
        for stats in sorted(
            self._spans.values(), key=lambda s: -s.total_s
        ):
            rows.append(
                {
                    "name": stats.name,
                    "phase": stats.phase,
                    "labels": stats.labels,
                    "count": stats.count,
                    "total_s": stats.total_s,
                    "min_s": stats.min_s if stats.count else 0.0,
                    "max_s": stats.max_s,
                }
            )
        return rows

    def phase_totals(self):
        """{phase: total seconds} across all spans."""
        totals = {}
        for stats in self._spans.values():
            totals[stats.phase] = totals.get(stats.phase, 0.0) + stats.total_s
        return totals


#: Process-wide recorder used by all built-in instrumentation.
RECORDER = SpanRecorder()

span = RECORDER.span
timed = RECORDER.timed
