"""Shared logger for the whole reproduction.

Every module logs through ``repro.obs.log.log`` (logger name ``repro``);
the CLI's ``-v``/``-q`` flags call :func:`configure` to pick the level.
Diagnostics that previously went to bare ``print`` belong here, keeping
stdout clean for the actual report/table output.
"""

import logging
import sys

log = logging.getLogger("repro")

_HANDLER = None


def configure(verbosity=0, stream=None):
    """Set the log level from a verbosity count.

    ``verbosity``: <=-1 errors only (``-q``), 0 warnings (default),
    1 info (``-v``), >=2 debug (``-vv``).  Installs a single stderr
    handler; repeated calls reconfigure it rather than stacking handlers.
    """
    global _HANDLER
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler(stream or sys.stderr)
        _HANDLER.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        log.addHandler(_HANDLER)
    elif stream is not None:
        _HANDLER.setStream(stream)
    log.setLevel(level)
    return log
