"""Metrics registry: labelled counters, gauges, and histograms.

The instrumentation layer needs three primitive shapes:

* **Counter** -- a monotonically increasing count (instructions retired,
  suite-cache hits, IR instructions removed by a pass);
* **Gauge** -- a point-in-time value (code size of the last generated
  program, current suite subset size);
* **Histogram** -- a summary of observations (per-function code sizes,
  per-workload durations) with optional fixed bucket boundaries.

Every metric is identified by a name plus a frozen label set, mirroring
the Prometheus data model so the snapshot serialises naturally into the
run manifest.  The registry is cheap enough to leave permanently enabled:
metric lookup is one dict access and instruments hold plain ints/floats.
"""

from dataclasses import dataclass, field

#: Raw observations retained per histogram for percentile summaries.
#: Beyond the cap further values still update count/total/min/max/buckets
#: but are not retained (``sample_overflow`` counts them), so memory
#: stays bounded and the percentiles become approximate-by-truncation --
#: honest, because the overflow count is reported alongside them.
SAMPLE_CAP = 4096


def _label_key(labels):
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonic counter.  ``inc`` with a negative amount is rejected."""

    name: str
    labels: dict
    value: float = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        self.value += amount
        return self.value


@dataclass
class Gauge:
    """Point-in-time value; ``set`` replaces, ``add`` adjusts."""

    name: str
    labels: dict
    value: float = 0

    def set(self, value):
        self.value = value
        return self.value

    def add(self, amount):
        self.value += amount
        return self.value


@dataclass
class Histogram:
    """Observation summary with optional fixed bucket upper bounds."""

    name: str
    labels: dict
    buckets: tuple = ()
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    bucket_counts: list = field(default_factory=list)
    samples: list = field(default_factory=list)
    sample_overflow: int = 0

    def __post_init__(self):
        if self.buckets and not self.bucket_counts:
            # One count per bound plus the overflow bucket.
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value):
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(value)
        else:
            self.sample_overflow += 1
        if self.buckets:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """The ``q``-th percentile (0..100) of retained samples, by
        linear interpolation between closest ranks (numpy's default
        definition).  0.0 with no observations."""
        if not self.samples:
            return 0.0
        data = sorted(self.samples)
        rank = (len(data) - 1) * (q / 100.0)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] + (data[hi] - data[lo]) * frac


class MetricsRegistry:
    """Holds every instrument, keyed by (kind, name, labels)."""

    def __init__(self):
        self._instruments = {}

    def _get(self, kind, cls, name, labels, **kwargs):
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name=name, labels=dict(labels), **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name, /, **labels):
        return self._get("counter", Counter, name, labels)

    def gauge(self, name, /, **labels):
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name, /, buckets=(), **labels):
        return self._get("histogram", Histogram, name, labels, buckets=tuple(buckets))

    def reset(self):
        self._instruments.clear()

    def __len__(self):
        return len(self._instruments)

    def merge_snapshot(self, snapshot):
        """Fold a :meth:`snapshot` from another registry into this one.

        This is how parallel suite workers report: each worker process
        accumulates into its own registry, pickles ``snapshot()`` back,
        and the parent merges.  Counters and histograms accumulate
        (sums, counts, min/max, bucket counts); gauges are point-in-time
        values so the merged value is simply the last one applied --
        callers merge worker snapshots in deterministic (registry) order
        so the outcome does not depend on completion order.
        """
        for row in snapshot.get("counters", ()):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snapshot.get("gauges", ()):
            self.gauge(row["name"], **row["labels"]).set(row["value"])
        for row in snapshot.get("histograms", ()):
            hist = self.histogram(
                row["name"], buckets=tuple(row.get("buckets", ())), **row["labels"]
            )
            if not row["count"]:
                continue
            hist.count += row["count"]
            hist.total += row["total"]
            hist.min = min(hist.min, row["min"])
            hist.max = max(hist.max, row["max"])
            hist.sample_overflow += row.get("sample_overflow", 0)
            for value in row.get("samples", ()):
                if len(hist.samples) < SAMPLE_CAP:
                    hist.samples.append(value)
                else:
                    hist.sample_overflow += 1
            if hist.buckets:
                for i, bucket_count in enumerate(row.get("bucket_counts", ())):
                    hist.bucket_counts[i] += bucket_count
        return self

    def snapshot(self):
        """Serialisable view: {"counters": [...], "gauges": [...],
        "histograms": [...]}, each row {name, labels, ...}."""
        out = {"counters": [], "gauges": [], "histograms": []}
        for (kind, _name, _lk), inst in sorted(
            self._instruments.items(), key=lambda kv: kv[0][:2] + (kv[0][2],)
        ):
            if kind == "counter":
                out["counters"].append(
                    {"name": inst.name, "labels": inst.labels, "value": inst.value}
                )
            elif kind == "gauge":
                out["gauges"].append(
                    {"name": inst.name, "labels": inst.labels, "value": inst.value}
                )
            else:
                row = {
                    "name": inst.name,
                    "labels": inst.labels,
                    "count": inst.count,
                    "total": inst.total,
                    "mean": inst.mean,
                }
                if inst.count:
                    row["min"] = inst.min
                    row["max"] = inst.max
                    row["p50"] = inst.percentile(50)
                    row["p95"] = inst.percentile(95)
                    row["p99"] = inst.percentile(99)
                    row["samples"] = list(inst.samples)
                    row["sample_overflow"] = inst.sample_overflow
                if inst.buckets:
                    row["buckets"] = list(inst.buckets)
                    row["bucket_counts"] = list(inst.bucket_counts)
                out["histograms"].append(row)
        return out


#: Process-wide default registry; everything in ``repro`` reports here.
METRICS = MetricsRegistry()
