"""Observability layer: metrics, span timing, events, logging, manifests.

This package is the instrumentation substrate for the whole reproduction
(see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` -- labelled counters / gauges / histograms in a
  process-wide registry (``METRICS``);
* :mod:`repro.obs.spans` -- aggregated wall-time spans with
  context-manager (``span``) and decorator (``timed``) APIs;
* :mod:`repro.obs.events` -- structured JSON-lines event stream, disabled
  (one ``is None`` test) unless a sink is attached;
* :mod:`repro.obs.log` -- the shared ``repro`` logger and its ``-v``/``-q``
  configuration;
* :mod:`repro.obs.emuobs` -- sampled low-overhead emulator hooks;
* :mod:`repro.obs.trace` -- hierarchical trace contexts (trace/span/parent
  ids, propagated across worker processes) and the Chrome trace-event
  exporter behind ``python -m repro trace``;
* :mod:`repro.obs.flame` -- collapsed-stack flamegraph export from the
  basic-block profiler (``python -m repro flame``);
* :mod:`repro.obs.manifest` -- the run-manifest JSON schema, builder, and
  dependency-free validator;
* :mod:`repro.obs.report` -- the ``python -m repro report`` driver.

Everything here is pure standard library and always importable; the
instrumented code paths cost close to nothing unless a report run enables
collection.
"""

from repro.obs.events import (
    JsonlSink,
    MemorySink,
    emit,
    enabled,
    get_sink,
    set_sink,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import log
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.spans import RECORDER, SpanRecorder, span, timed


def reset():
    """Clear the global metrics registry and span recorder."""
    METRICS.reset()
    RECORDER.reset()


__all__ = [
    "METRICS",
    "MetricsRegistry",
    "RECORDER",
    "SpanRecorder",
    "span",
    "timed",
    "emit",
    "enabled",
    "set_sink",
    "get_sink",
    "MemorySink",
    "JsonlSink",
    "log",
    "configure_logging",
    "reset",
]
