"""Instruction cache with branch-register prefetch (Sections 8-9).

The paper's Section 8: "each assignment to a branch register has the side
effect of directing the instruction cache to prefetch the line associated
with the instruction address", with a busy bit per line being filled and a
prefetch queue "with the size of the queue equal to the number of
available branch registers".  Section 9 lists the organisation questions
(associativity, line size, total size, pollution) as future work; the
:mod:`repro.harness.cache9` experiment sweeps them.

The model is a set-associative cache with LRU replacement, a fixed miss
penalty, per-line readiness times (the busy bit), and a bounded number of
in-flight prefetches.  Demand fetches that arrive while their line is
still being filled stall only for the *remaining* fill time -- the partial
coverage that makes prefetching worthwhile even when it is late.
"""

from dataclasses import dataclass


@dataclass
class ICacheStats:
    demand_accesses: int = 0
    hits: int = 0
    misses: int = 0
    stall_cycles: int = 0
    full_miss_stalls: int = 0
    partial_covered: int = 0  # demand arrived while prefetch in flight
    fully_covered: int = 0  # prefetched line ready before demand
    prefetches: int = 0
    prefetch_drops: int = 0  # queue full
    unused_prefetches: int = 0  # prefetched lines evicted untouched
    pollution_evictions: int = 0  # evictions caused by prefetched lines

    @property
    def miss_rate(self):
        if not self.demand_accesses:
            return 0.0
        return self.misses / self.demand_accesses


class _Line:
    __slots__ = ("tag", "ready", "last_used", "prefetched", "touched")

    def __init__(self, tag, ready, last_used, prefetched):
        self.tag = tag
        self.ready = ready
        self.last_used = last_used
        self.prefetched = prefetched
        self.touched = False


class PrefetchICache:
    """Set-associative instruction cache with optional prefetching."""

    def __init__(
        self,
        words=256,
        line_words=4,
        assoc=2,
        miss_penalty=8,
        queue_size=8,
        prefetch_enabled=True,
    ):
        if words % (line_words * assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        self.line_words = line_words
        self.assoc = assoc
        self.miss_penalty = miss_penalty
        self.queue_size = queue_size
        self.prefetch_enabled = prefetch_enabled
        self.n_sets = words // (line_words * assoc)
        self.sets = [[] for _ in range(self.n_sets)]  # lists of _Line
        self.stats = ICacheStats()
        self._clock = 0  # LRU tick

    # -- helpers -----------------------------------------------------------

    def _locate(self, addr):
        line_addr = addr >> (2 + self.line_words.bit_length() - 1)
        index = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        return index, tag

    def _find(self, index, tag):
        for line in self.sets[index]:
            if line.tag == tag:
                return line
        return None

    def _insert(self, index, tag, ready, prefetched):
        ways = self.sets[index]
        self._clock += 1
        if len(ways) >= self.assoc:
            victim = min(ways, key=lambda l: l.last_used)
            ways.remove(victim)
            if victim.prefetched and not victim.touched:
                self.stats.unused_prefetches += 1
            if prefetched:
                self.stats.pollution_evictions += 1
        line = _Line(tag, ready, self._clock, prefetched)
        ways.append(line)
        return line

    def _in_flight(self, now):
        count = 0
        for ways in self.sets:
            for line in ways:
                if line.prefetched and line.ready > now:
                    count += 1
        return count

    # -- interface used by the emulators ------------------------------------

    def demand(self, addr, now):
        """Demand instruction fetch; returns stall cycles."""
        self.stats.demand_accesses += 1
        index, tag = self._locate(addr)
        line = self._find(index, tag)
        self._clock += 1
        if line is not None:
            line.last_used = self._clock
            line.touched = True
            if line.ready <= now:
                self.stats.hits += 1
                if line.prefetched:
                    self.stats.fully_covered += 1
                    line.prefetched = False  # count the cover once
                return 0
            # Line still being filled by a prefetch: partial cover.
            stall = line.ready - now
            self.stats.partial_covered += 1
            self.stats.misses += 1
            self.stats.stall_cycles += stall
            line.prefetched = False
            return stall
        self.stats.misses += 1
        self.stats.full_miss_stalls += 1
        self.stats.stall_cycles += self.miss_penalty
        self._insert(index, tag, now + self.miss_penalty, prefetched=False)
        return self.miss_penalty

    def prefetch(self, addr, now):
        """Prefetch request from a branch-register assignment."""
        if not self.prefetch_enabled:
            return
        index, tag = self._locate(addr)
        if self._find(index, tag) is not None:
            return  # already present (or already being fetched)
        self.stats.prefetches += 1
        if self._in_flight(now) >= self.queue_size:
            self.stats.prefetch_drops += 1
            return
        self._insert(index, tag, now + self.miss_penalty, prefetched=True)
