"""Instruction-cache model with branch-register prefetching (Section 8)."""

from repro.cache.icache import ICacheStats, PrefetchICache

__all__ = ["ICacheStats", "PrefetchICache"]
