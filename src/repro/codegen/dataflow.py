"""Def/use analysis for target machine instructions.

Used by the delay-slot filler (baseline) and the carrier/noop-replacement
passes (branch-register machine).  Pseudo-cells are represented as strings:
``"cc"`` (baseline condition codes), ``"RT"`` (baseline return-address
cell) and ``"mem"`` is *not* modelled here -- memory ordering is handled
conservatively by the reordering predicates below.
"""

from repro.rtl.operand import Reg

CC = "cc"
RT = "RT"


def minstr_defs(ins, link=None):
    """Set of storage cells written by a target instruction.

    ``link`` is the branch-register machine's link-register index; when
    given, the implicit link-register write of a transfer is modelled as
    that concrete register instead of the opaque ``"blink"`` marker."""
    out = set()
    op = ins.op
    if ins.dst is not None and isinstance(ins.dst, Reg):
        out.add(ins.dst)
    if op in ("cmp", "fcmp"):
        out.add(CC)
    if op == "call":
        out.add(RT)
    if op == "mtrt":
        out.add(RT)
    if op in ("cmpset", "fcmpset") and ins.dst is not None:
        out.add(ins.dst)
    if ins.br:
        # Referencing a non-PC branch register writes the link register
        # with the next sequential address (Section 4, Function Calls).
        out.add(Reg("b", link) if link is not None else "blink")
    return out


def minstr_uses(ins):
    """Set of storage cells read by a target instruction."""
    out = set()
    op = ins.op
    for src in ins.srcs:
        if isinstance(src, Reg):
            out.add(src)
    if op in ("bcc", "fbcc"):
        out.add(CC)
    if op == "retrt":
        out.add(RT)
    if op == "mfrt":
        out.add(RT)
    if op in ("cmpset", "fcmpset") and ins.btrue is not None:
        out.add(Reg("b", ins.btrue))
    if ins.br:
        out.add(Reg("b", ins.br))
    return out


def is_memory_op(ins):
    return ins.is_mem()


def is_barrier(ins):
    """Instructions nothing may be moved across."""
    return (
        ins.op in ("call", "trap", "halt", "retrt", "jmp", "ijmp", "bcc", "fbcc")
        or ins.is_label()
        or bool(ins.br)
    )


def can_swap(earlier, later, link=None):
    """May ``earlier`` be moved to execute after ``later``?

    Both orderings must compute the same result: no def/use overlap in
    either direction, no def/def overlap, and conservative memory
    ordering (a load may cross a load; everything else may not cross a
    memory operation).
    """
    e_defs, e_uses = minstr_defs(earlier, link), minstr_uses(earlier)
    l_defs, l_uses = minstr_defs(later, link), minstr_uses(later)
    if e_defs & l_uses:
        return False
    if l_defs & e_uses:
        return False
    if e_defs & l_defs:
        return False
    if is_memory_op(earlier) and is_memory_op(later):
        if earlier.is_load() and later.is_load():
            return True
        return False
    return True
