"""Carrier filling and noop replacement for the branch-register machine.

Materialisation emits every transfer of control as a ``noop`` carrier
(a noop whose ``br`` field names the target's branch register).  Two
post-passes then remove as many of these noops as possible:

1. **fill_noop_carriers** -- move a useful instruction from above the
   carrier into the carrier position and give it the ``br`` field, the
   branch-register analogue of delay-slot filling (the paper's Figure 4
   attaches ``b[0]=b[7]`` to ``r[2]=0``);

2. **replace_noops_with_bta** -- Section 5's final optimization: "the
   compiler attempts to replace no-operation instructions ... with branch
   target address calculations", hoisting a later ``bta`` into the carrier
   position ("Since there are no dependencies between branch target
   address calculations and other types of instructions ... noop
   instructions can often be replaced").
"""

from repro.codegen.dataflow import can_swap, minstr_defs, minstr_uses
from repro.rtl.operand import Reg

MAX_SCAN = 6

# Instructions that may never become carriers or move across a carrier.
_NEVER_CARRY = ("trap", "halt", "label", "noop", "cmpset", "fcmpset")


def _may_carry(ins, breg, link):
    """Can ``ins`` take over a transfer referencing ``b[breg]``?"""
    if ins.op in _NEVER_CARRY or ins.is_label() or ins.br:
        return False
    # The carrier reads b[breg] at decode; an instruction that writes it
    # would be read-before-write and must not carry.
    if Reg("b", breg) in minstr_defs(ins, link):
        return False
    return True


def fill_noop_carriers(mfn, spec):
    """Replace noop carriers by hoisting a nearby useful instruction into
    the carrier position.  Returns the number of carriers filled."""
    link = spec.br_link
    instrs = mfn.instrs
    filled = 0
    i = 0
    while i < len(instrs):
        ins = instrs[i]
        if ins.is_noop() and ins.br:
            j = _find_carrier_filler(instrs, i, link)
            if j is not None:
                mover = instrs.pop(j)
                # The noop shifted down to i-1 after the pop.
                mover.br = ins.br
                mover.tkind = getattr(ins, "tkind", "jump")
                instrs[i - 1] = mover
                filled = filled + 1
                continue
        i = i + 1
    return filled


def _find_carrier_filler(instrs, carrier_index, link):
    carrier = instrs[carrier_index]
    crossed = []
    j = carrier_index - 1
    steps = 0
    while j >= 0 and steps < MAX_SCAN:
        candidate = instrs[j]
        if candidate.is_label():
            return None
        if candidate.br:
            return None  # never cross another transfer
        if _may_carry(candidate, carrier.br, link):
            ok = True
            for crossing in crossed:
                if not can_swap(candidate, crossing, link):
                    ok = False
                    break
            # The candidate must also commute with the carrier's implicit
            # reads: it may not define the referenced branch register
            # (checked in _may_carry).
            if ok:
                return j
        if candidate.op in ("trap", "halt"):
            return None  # do not move anything across a trap
        crossed.append(candidate)
        j = j - 1
        steps = steps + 1
    return None


def schedule_compares(mfn, spec, max_hoist=3):
    """Move each ``cmpset`` earlier past independent instructions.

    On pipelines deeper than three stages, a conditional transfer whose
    carrier immediately follows the compare stalls for N-3 cycles
    (Figures 7-8).  Separating the compare from the transfer -- the same
    idea the paper cites for CRISP's branch folding -- hides that delay.
    Returns the number of positions gained across all compares.
    """
    link = spec.br_link
    instrs = mfn.instrs
    gained = 0
    for i in range(len(instrs)):
        ins = instrs[i]
        if ins.op not in ("cmpset", "fcmpset"):
            continue
        position = i
        for _ in range(max_hoist):
            j = position - 1
            if j < 0:
                break
            above = instrs[j]
            if (
                above.is_label()
                or above.br
                or above.op in ("cmpset", "fcmpset", "trap", "halt")
            ):
                break
            if not can_swap(above, instrs[position], link):
                break
            instrs[j], instrs[position] = instrs[position], instrs[j]
            position = j
            gained = gained + 1
    return gained


def replace_noops_with_bta(mfn, spec, protected_regs=(), safe_labels=()):
    """Merge remaining noop carriers with a later ``bta`` calculation.

    A ``bta`` found after the carrier (nothing in between touching its
    destination register) is moved into the carrier position and takes
    over the ``br`` field.  Because the carrier may branch away, the moved
    ``bta`` then also executes on the taken path; that is safe exactly for
    registers whose live ranges are always block-local -- i.e. *not* the
    registers holding hoisted loop targets, and not the function's
    link-save register.  Callers pass those as ``protected_regs``.

    Returns the count of replacements.
    """
    link = spec.br_link
    protected = set(protected_regs)
    instrs = mfn.instrs
    replaced = 0
    i = 0
    while i < len(instrs):
        ins = instrs[i]
        if ins.is_noop() and ins.br:
            j = _find_following_bta(
                instrs, i, link, protected, safe_labels, spec.br_callee_saved
            )
            if j is not None:
                bta = instrs.pop(j)
                bta.br = ins.br
                bta.tkind = getattr(ins, "tkind", "jump")
                instrs[i] = bta
                replaced = replaced + 1
        i = i + 1
    return replaced


def _find_following_bta(
    instrs, carrier_index, link, protected, safe_labels, callee_saved
):
    """Index of a ``bta`` that can legally move up into the carrier.

    Scanning may continue past a label only when (a) the carrier is a
    conditional transfer (so execution falls through into the labelled
    block on the not-taken path) and (b) the labelled block has a single
    predecessor (``safe_labels``) -- otherwise other paths into that block
    would miss the moved calculation."""
    carrier = instrs[carrier_index]
    target_reg = Reg("b", carrier.br)
    j = carrier_index + 1
    steps = 0
    while j < len(instrs) and steps < MAX_SCAN:
        candidate = instrs[j]
        if candidate.is_label():
            if (
                getattr(carrier, "tkind", None) == "cond"
                and candidate.label in safe_labels
            ):
                j = j + 1
                steps = steps + 1
                continue
            return None
        if candidate.op == "bta":
            dst = candidate.dst
            if dst == target_reg or dst.index in protected:
                return None
            if (
                getattr(carrier, "tkind", None) == "call"
                and dst.index not in callee_saved
            ):
                # A scratch branch register written just before a call is
                # dead on return -- the callee may clobber it.
                return None
            # Nothing between the carrier and the bta may read or write
            # the bta's destination register.
            for k in range(carrier_index + 1, j):
                mid = instrs[k]
                if mid.is_label():
                    continue
                if dst in minstr_uses(mid) or dst in minstr_defs(mid, link):
                    return None
            return j
        if candidate.br:
            return None
        j = j + 1
        steps = steps + 1
    return None
