"""Code generator for the baseline machine (Section 7, Figure 10).

The baseline machine is a conventional RISC: condition-code compare
(``cmp``/``fcmp``), delayed branches (``bcc``/``jmp``/``call``/``ijmp``/
``retrt``), a dedicated return-address cell ``RT`` written by ``call``, and
32+32 registers.  Every transfer of control is emitted followed by an
explicit ``noop`` in its delay slot; :mod:`repro.codegen.delayslots` later
fills slots with useful instructions where possible, exactly as the
paper's Figure 3 output shows.
"""

from repro.codegen.common import MInstr, mlabel, mnoop
from repro.codegen.lowering import (
    FrameLayout,
    Legalizer,
    MachineFunction,
    MachineProgram,
    emit_arg_setup,
    emit_moves,
)
from repro.errors import CodegenError
from repro.machine.spec import baseline_spec
from repro.opt.pipeline import optimize_function
from repro.opt.cse import pool_constants
from repro.opt.legalize import legalize_immediates
from repro.opt.licm import hoist_loop_invariants
from repro.opt.regalloc import allocate, reserved_temps
from repro.rtl.operand import Imm, Sym, VReg


class BaselineFunctionGen:
    """Lowers one register-allocated IR function to baseline MInstrs."""

    def __init__(self, fn, spec, alloc_info):
        self.fn = fn
        self.spec = spec
        self.alloc = alloc_info
        self.out = []
        self.legal = Legalizer(spec, self.out.append)
        extra = ["RT"] if fn.has_call else []
        self.frame = FrameLayout(fn, alloc_info.used_callee_saved, extra)
        self.sp = spec.sp()
        self.itemp = reserved_temps(spec, "int")[2]

    def emit(self, ins):
        self.out.append(ins)
        return ins

    # -- prologue / epilogue -------------------------------------------------

    def prologue(self):
        self.emit(mlabel(self.fn.name))
        if self.frame.size:
            operand = self.legal.imm_operand(self.frame.size)
            self.emit(MInstr("sub", dst=self.sp, srcs=[self.sp, operand]))
        for reg in sorted(
            self.alloc.used_callee_saved, key=lambda r: (r.kind, r.index)
        ):
            off = self.frame.save_offset(reg)
            op = "sf" if reg.kind == "f" else "sw"
            self.emit(MInstr(op, srcs=[reg, self.sp, Imm(off)]))
        if self.fn.has_call:
            self.emit(MInstr("mfrt", dst=self.itemp))
            self.emit(
                MInstr(
                    "sw",
                    srcs=[self.itemp, self.sp, Imm(self.frame.save_offset("RT"))],
                )
            )
        self._move_params_in()

    def _move_params_in(self):
        moves = []
        spills = []
        int_index = 0
        flt_index = 0
        for vreg, is_float in self.fn.params:
            if is_float:
                src = self.spec.arg_reg(flt_index, float_=True)
                flt_index = flt_index + 1
            else:
                src = self.spec.arg_reg(int_index)
                int_index = int_index + 1
            kind, where = self.alloc.location(vreg)
            if kind == "reg":
                moves.append((where, src))
            elif kind == "spill":
                spills.append((src, where))
        emit_moves(moves, self.emit, self.spec)
        for src, local in spills:
            off = self.frame.local_offset(local)
            op = "sf" if src.kind == "f" else "sw"
            self.emit(MInstr(op, srcs=[src, self.sp, Imm(off)]))

    def epilogue(self):
        if self.fn.has_call:
            self.emit(
                MInstr(
                    "lw",
                    dst=self.itemp,
                    srcs=[self.sp, Imm(self.frame.save_offset("RT"))],
                )
            )
            self.emit(MInstr("mtrt", srcs=[self.itemp]))
        for reg in sorted(
            self.alloc.used_callee_saved, key=lambda r: (r.kind, r.index)
        ):
            off = self.frame.save_offset(reg)
            op = "lf" if reg.kind == "f" else "lw"
            self.emit(MInstr(op, dst=reg, srcs=[self.sp, Imm(off)]))
        if self.frame.size:
            self.legal.add_immediate(self.sp, self.sp, self.frame.size)
        self.emit(MInstr("retrt"))
        self.emit(mnoop())

    # -- body ------------------------------------------------------------------

    def lower(self):
        self.prologue()
        for ins in self.fn.instrs:
            start = len(self.out)
            self.lower_instr(ins)
            if ins.line:
                for minstr in self.out[start:]:
                    if not minstr.line:
                        minstr.line = ins.line
        return MachineFunction(self.fn.name, self.out, self.frame.size)

    def lower_instr(self, ins):
        op = ins.op
        if op == "label":
            self.emit(mlabel(ins.name))
        elif op == "li":
            self.legal.load_constant(ins.dst, ins.srcs[0].value)
        elif op == "la":
            self.legal.load_address(ins.dst, ins.srcs[0])
        elif op == "laddr":
            local = ins.srcs[0]
            self.legal.add_immediate(
                ins.dst, self.sp, self.frame.local_offset(local)
            )
        elif op == "ldspill":
            local = ins.srcs[0]
            lop = "lf" if ins.dst.kind == "f" else "lw"
            base, off = self.legal.mem_operands(
                self.sp, self.frame.local_offset(local)
            )
            self.emit(MInstr(lop, dst=ins.dst, srcs=[base, off]))
        elif op == "stspill":
            value, local = ins.srcs
            sop = "sf" if value.kind == "f" else "sw"
            base, off = self.legal.mem_operands(
                self.sp, self.frame.local_offset(local)
            )
            self.emit(MInstr(sop, srcs=[value, base, off]))
        elif op in ("lw", "lb", "lf"):
            base, off = self.legal.mem_operands(ins.srcs[0], ins.srcs[1].value)
            self.emit(MInstr(op, dst=ins.dst, srcs=[base, off]))
        elif op in ("sw", "sb", "sf"):
            base, off = self.legal.mem_operands(ins.srcs[1], ins.srcs[2].value)
            self.emit(MInstr(op, srcs=[ins.srcs[0], base, off]))
        elif op in ("mov", "fmov", "neg", "not", "fneg", "cvtif", "cvtfi"):
            self.emit(MInstr(op, dst=ins.dst, srcs=list(ins.srcs)))
        elif op in (
            "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
            "fadd", "fsub", "fmul", "fdiv",
        ):
            a, b = ins.srcs
            if isinstance(b, Imm):
                b = self.legal.imm_operand(b.value)
            self.emit(MInstr(op, dst=ins.dst, srcs=[a, b]))
        elif op in ("br", "fbr"):
            self._branch(ins)
        elif op == "jmp":
            self.emit(MInstr("jmp", target=ins.target))
            self.emit(mnoop())
        elif op == "ijmp":
            self.emit(MInstr("ijmp", srcs=[ins.srcs[0]]))
            self.emit(mnoop())
        elif op == "call":
            self._call(ins)
        elif op == "trap":
            self._trap(ins)
        elif op == "ret":
            self._return(ins)
        elif op == "nop":
            self.emit(mnoop())
        else:
            raise CodegenError("baseline: cannot lower %r" % op)

    def _branch(self, ins):
        a, b = ins.srcs
        if ins.op == "br":
            if isinstance(b, Imm):
                b = self.legal.imm_operand(b.value)
            self.emit(MInstr("cmp", srcs=[a, b]))
            self.emit(MInstr("bcc", cond=ins.cond, target=ins.target))
        else:
            self.emit(MInstr("fcmp", srcs=[a, b]))
            self.emit(MInstr("fbcc", cond=ins.cond, target=ins.target))
        self.emit(mnoop())

    def _arg_moves(self, ins):
        emit_arg_setup(ins.args, self.spec, self.emit, self.legal, self.frame)

    def _call(self, ins):
        self._arg_moves(ins)
        self.emit(MInstr("call", target=Sym(ins.callee)))
        self.emit(mnoop())
        self._capture_result(ins)

    def _trap(self, ins):
        self._arg_moves(ins)
        self.emit(MInstr("trap", callee=ins.callee))
        self._capture_result(ins)

    def _capture_result(self, ins):
        if ins.dst is None:
            return
        if isinstance(ins.dst, VReg):
            raise CodegenError("unallocated vreg %r reached codegen" % (ins.dst,))
        is_float = ins.dst.kind == "f"
        ret = self.spec.ret_reg(float_=is_float)
        if ins.dst != ret:
            self.emit(
                MInstr("fmov" if is_float else "mov", dst=ins.dst, srcs=[ret])
            )

    def _return(self, ins):
        if ins.srcs:
            value = ins.srcs[0]
            is_float = value.kind == "f"
            ret = self.spec.ret_reg(float_=is_float)
            if value != ret:
                self.emit(
                    MInstr("fmov" if is_float else "mov", dst=ret, srcs=[value])
                )
        self.epilogue()


def _elide_fallthrough_jumps(instrs):
    """Remove ``jmp L`` (and its delay slot noop) when L is the next label."""
    out = []
    i = 0
    while i < len(instrs):
        ins = instrs[i]
        if ins.op == "jmp":
            j = i + 1
            if j < len(instrs) and instrs[j].is_noop() and instrs[j].br == 0:
                j = j + 1
            labels = []
            k = j
            while k < len(instrs) and instrs[k].is_label():
                labels.append(instrs[k].label)
                k = k + 1
            if ins.target.name in labels:
                i = j  # drop the jump and its noop
                continue
        out.append(ins)
        i = i + 1
    return out


def _start_stub(spec):
    """The runtime startup: call main, pass its result to exit, halt."""
    instrs = [
        mlabel("__start"),
        MInstr("call", target=Sym("main")),
        mnoop(),
        MInstr("mov", dst=spec.arg_reg(0), srcs=[spec.ret_reg()]),
        MInstr("trap", callee="exit"),
        MInstr("halt"),
    ]
    return MachineFunction("__start", instrs, 0)


def generate_baseline(program, spec=None, fill_delay_slots=True):
    """Lower an optimised IR program to a baseline MachineProgram.

    ``program`` is mutated (register allocation rewrites the IR); callers
    wanting to target both machines should compile the source twice or
    deep-copy, which :func:`repro.ease.environment.compile_both` handles.
    """
    from repro.codegen.common import record_codegen_metrics
    from repro.codegen.delayslots import fill_slots
    from repro.obs import span

    spec = spec or baseline_spec()
    mprog = MachineProgram(spec=spec, globals=dict(program.globals))
    mprog.functions.append(_start_stub(spec))
    for fn in program.functions.values():
        optimize_function(fn)
        with span("codegen.baseline"):
            legalize_immediates(fn, spec)
            pool_constants(fn)
            hoist_loop_invariants(fn)
            info = allocate(fn, spec)
            gen = BaselineFunctionGen(fn, spec, info)
            mfn = gen.lower()
            mfn.instrs = _elide_fallthrough_jumps(mfn.instrs)
            if fill_delay_slots:
                fill_slots(mfn)
        mprog.functions.append(mfn)
    record_codegen_metrics(mprog, "baseline")
    return mprog
