"""Target-machine RTL instructions (``MInstr``) and shared op tables.

Both emulated machines execute lists of :class:`MInstr` objects.  The two
instruction sets share every computational opcode; they differ only in how
transfers of control are expressed:

* the **baseline** machine has explicit delayed branch instructions
  (``bcc``, ``jmp``, ``call``, ``ijmp``, ``retrt``) plus a condition-code
  compare (``cmp``/``fcmp``);
* the **branch-register** machine has *no* branch instructions.  Every
  instruction carries a ``br`` field naming the branch register that holds
  the address of the next instruction (``b[0]`` is the PC).  New opcodes
  manipulate branch registers: ``bta`` (PC-relative target-address
  calculation), ``btahi``/``btalo`` (two-instruction far-address
  calculation), ``cmpset``/``fcmpset`` (compare with conditional
  branch-register assignment), ``bmov``, ``bld`` and ``bst``.
"""

from dataclasses import dataclass, field

# --- opcode sets shared by both machines --------------------------------

ALU_OPS = (
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
    "neg", "not", "mov", "li", "sethi", "addlo",
)
FALU_OPS = ("fadd", "fsub", "fmul", "fdiv", "fneg", "fmov", "cvtif", "cvtfi")
LOAD_OPS = ("lw", "lb", "lf")
STORE_OPS = ("sw", "sb", "sf")
MISC_OPS = ("noop", "trap", "halt")

# --- baseline-only opcodes ----------------------------------------------

BASELINE_CONTROL = ("bcc", "fbcc", "jmp", "call", "ijmp", "retrt")
BASELINE_CMP = ("cmp", "fcmp")
BASELINE_RT = ("mfrt", "mtrt")

# --- branch-register-machine-only opcodes --------------------------------

BR_OPS = ("bta", "btahi", "btalo", "cmpset", "fcmpset", "bmov", "bld", "bst")

# Opcodes whose execution touches data memory (Table I's second column).
MEM_OPS = LOAD_OPS + STORE_OPS + ("bld", "bst")


@dataclass
class MInstr:
    """One target-machine instruction.

    Attributes:
        op: opcode mnemonic.
        dst: destination operand (``Reg`` -- may be a branch register for
            ``bta``/``btalo``/``bmov``/``bld``).
        srcs: source operands.
        cond: relational condition for ``bcc``/``cmpset``.
        target: ``Label`` operand for branches, ``bta``, ``call``.
        callee: builtin name for ``trap``.
        br: branch-register field (branch-register machine; 0 = PC =
            sequential execution).  Ignored by the baseline machine.
        btrue: for ``cmpset``: index of the branch register selected when
            the condition holds (the not-taken source is implied ``b[0]``).
        label: label name when ``op == "label"`` (pseudo, removed at
            assembly).
        note: free-form annotation used by the printers.
        line: SmallC source line this instruction was lowered from
            (0 = unknown).  Feeds the image's address->line debug map so
            the execution profiler can render annotated source listings.
    """

    op: str
    dst: object = None
    srcs: list = field(default_factory=list)
    cond: str = None
    target: object = None
    callee: str = None
    br: int = 0
    btrue: int = None
    label: str = None
    note: str = ""
    line: int = 0

    def is_label(self):
        return self.op == "label"

    def is_noop(self):
        return self.op == "noop"

    def is_mem(self):
        return self.op in MEM_OPS

    def is_load(self):
        return self.op in LOAD_OPS or self.op == "bld"

    def is_store(self):
        return self.op in STORE_OPS or self.op == "bst"

    def is_baseline_transfer(self):
        return self.op in BASELINE_CONTROL

    def is_br_transfer(self):
        """On the branch-register machine, any instruction whose ``br``
        field names a register other than the PC is a transfer."""
        return self.br != 0

    def is_bta_calc(self):
        return self.op in ("bta", "btahi", "btalo")

    def __repr__(self):
        from repro.rtl.printer import minstr_text

        return minstr_text(self)


def mlabel(name):
    return MInstr("label", label=name)


def mnoop(br=0):
    return MInstr("noop", br=br)


def record_codegen_metrics(mprog, machine):
    """Report generated-code shape into the metrics registry.

    Called by both code generators after lowering a whole program:
    instruction/label/section counts plus a per-function size histogram,
    labelled by target machine.
    """
    from repro.obs import METRICS

    total_instrs = 0
    total_labels = 0
    noops = 0
    for mfn in mprog.functions:
        fn_size = 0
        for ins in mfn.instrs:
            if ins.is_label():
                total_labels += 1
                continue
            fn_size += 1
            if ins.op == "noop":
                noops += 1
        total_instrs += fn_size
        METRICS.histogram("codegen.fn_size", machine=machine).observe(fn_size)
    METRICS.counter("codegen.instructions", machine=machine).inc(total_instrs)
    METRICS.counter("codegen.labels", machine=machine).inc(total_labels)
    METRICS.counter("codegen.static_noops", machine=machine).inc(noops)
    METRICS.counter("codegen.functions", machine=machine).inc(len(mprog.functions))
    METRICS.counter("codegen.data_globals", machine=machine).inc(len(mprog.globals))
