"""Delay-slot filling for the baseline machine.

The baseline machine delays every branch by one instruction.  The code
generator always emits an explicit ``noop`` in the slot; this pass tries to
replace it by moving a useful instruction from *above* the transfer into
the slot (fill-from-above), which is always semantically safe when the
moved instruction commutes with everything it crosses.

The paper's Figure 3 shows the expected result: the return's delay slot is
filled (``PC=RT; r[0]=r[2]``) while conditional-branch slots that have no
independent instruction keep their noops.  Noops that survive here are the
pool that the branch-register machine later converts into target-address
calculations (Section 7 reports 36% of them replaced).
"""

from repro.codegen.dataflow import can_swap

MAX_SCAN = 6  # how far above the transfer to look for a filler

_TRANSFERS = ("bcc", "fbcc", "jmp", "call", "ijmp", "retrt")

_UNMOVABLE = ("cmp", "fcmp", "trap", "halt", "mtrt", "noop", "label") + _TRANSFERS


def fill_slots(mfn):
    """Fill delay slots in one MachineFunction, in place.

    Returns the number of slots filled.
    """
    instrs = mfn.instrs
    filled = 0
    i = 0
    while i < len(instrs):
        ins = instrs[i]
        if ins.op in _TRANSFERS:
            slot = i + 1
            if slot < len(instrs) and instrs[slot].is_noop():
                candidate = _find_filler(instrs, i)
                if candidate is not None:
                    mover = instrs.pop(candidate)
                    # After the pop the transfer is at i-1 and the noop at
                    # i; the mover replaces the noop.
                    instrs[i] = mover
                    filled = filled + 1
                    i = i + 1  # continue after the filled slot
                    continue
            i = slot + 1
        else:
            i = i + 1
    return filled


def _find_filler(instrs, transfer_index):
    """Index of an instruction that can legally move into the slot of the
    transfer at ``transfer_index``, or None."""
    transfer = instrs[transfer_index]
    scanned = []
    j = transfer_index - 1
    steps = 0
    while j >= 0 and steps < MAX_SCAN:
        candidate = instrs[j]
        if candidate.is_label():
            return None  # block boundary
        if j > 0 and instrs[j - 1].op in _TRANSFERS:
            # The candidate occupies the delay slot of an earlier transfer;
            # it cannot be stolen, and nothing above it can cross that
            # transfer either.
            return None
        if candidate.op in _UNMOVABLE:
            if candidate.op in ("cmp", "fcmp") and transfer.op in ("bcc", "fbcc"):
                # The compare pairs with this branch; keep scanning above it.
                scanned.append(candidate)
                j = j - 1
                steps = steps + 1
                continue
            return None
        ok = can_swap(candidate, transfer)
        for crossed in scanned:
            if not can_swap(candidate, crossed):
                ok = False
                break
        if ok:
            return j
        scanned.append(candidate)
        j = j - 1
        steps = steps + 1
    return None
