"""Branch-register allocation and loop hoisting -- the paper's Section 5.

Every transfer of control on the branch-register machine needs the target
address in a branch register.  This module decides, for every transfer
*site*:

* which branch register holds the target, and
* where the target-address calculation is placed -- hoisted to the
  preheader of an enclosing loop (possibly several levels out) or emitted
  locally in the site's own block.

following the paper's algorithm:

1. branch targets are ordered by estimated execution frequency of the
   *branches* to them (frequencies of multiple branches to one target are
   summed);
2. the calculation with the highest estimate is moved to the preheader of
   the innermost loop containing the branch, provided a branch register
   can be allocated -- a register already holding a target for a
   *non-overlapping* loop may be reused, and a loop containing calls
   requires a non-scratch (callee-saved) branch register;
3. after a move the calculation's frequency drops to the preheader's
   frequency and the process repeats, hoisting further out while registers
   remain.
"""

from dataclasses import dataclass, field

from repro.cfg.loops import ensure_preheader, innermost_loop_of, preheader_is_safe


@dataclass
class Site:
    """One transfer of control in one block."""

    kind: str  # "jump" | "cond" | "call" | "indirect" | "return"
    block: object
    ir_index: int  # index of the IR instruction within the block
    target: str = None  # label or function name (None for indirect/return)
    freq: float = 1.0
    breg: int = None
    hoisted: object = None  # HoistedCalc when the calc was hoisted


@dataclass
class HoistedCalc:
    """A target-address calculation placed in a loop preheader."""

    target: str
    kind: str  # "jump"/"cond" share "bta"; "call" uses the sethi/btalo pair
    loop: object
    preheader: object = None
    breg: int = None
    sites: list = field(default_factory=list)


@dataclass
class BranchRegPlan:
    """The full allocation decision for one function."""

    sites: list = field(default_factory=list)
    hoisted: list = field(default_factory=list)
    link_save: str = "none"  # "none" | "breg" | "stack"
    link_scratch: int = None  # scratch b-reg for the leaf save / epilogue
    used_callee_bregs: set = field(default_factory=set)
    local_regs: dict = field(default_factory=dict)  # Site -> breg


class BranchRegAllocator:
    """Runs the Section 5 algorithm for one function."""

    def __init__(self, cfg, loops, sites, spec, fn, hoisting=True):
        self.cfg = cfg
        self.loops = loops
        self.sites = sites
        self.spec = spec
        self.fn = fn
        self.hoisting = hoisting
        self.plan = BranchRegPlan(sites=sites)
        # busy[reg] = list of loops in which the register holds a hoisted
        # target (live through the whole loop body + preheader).
        self.busy = {i: [] for i in self._usable_regs()}

    def _usable_regs(self):
        return list(self.spec.br_scratch) + list(self.spec.br_callee_saved)

    # -- link-register strategy --------------------------------------------

    def _plan_link(self):
        has_call = any(s.kind == "call" for s in self.sites)
        transfers = [s for s in self.sites if s.kind != "call"]
        only_plain_return = (
            not has_call
            and len(self.sites) == 1
            and self.sites[0].kind == "return"
        )
        if only_plain_return or not self.sites:
            self.plan.link_save = "none"
            return
        # Reserve the highest scratch register for return-address traffic.
        reserve = max(self.spec.br_scratch) if self.spec.br_scratch else None
        if reserve is None:
            # Degenerate spec (no scratch): force a callee-saved reserve.
            reserve = max(self.spec.br_callee_saved)
            self.plan.used_callee_bregs.add(reserve)
        self.plan.link_scratch = reserve
        self.busy.pop(reserve, None)
        self.plan.link_save = "stack" if has_call else "breg"

    # -- hoisting ------------------------------------------------------------

    def _loops_overlap(self, a, b):
        return bool(a.blocks & b.blocks)

    def _register_free_for_loop(self, reg, loop, need_nonscratch):
        if need_nonscratch and reg in self.spec.br_scratch:
            return False
        for other in self.busy[reg]:
            if self._loops_overlap(other, loop):
                return False
        return True

    # How many registers must remain free for local (unhoisted) sites in
    # any loop region: one for call-address pairs, one for the block
    # terminator.
    LOCAL_RESERVE = 2

    def _busy_count_in(self, loop):
        count = 0
        for reg, loops in self.busy.items():
            if any(self._loops_overlap(other, loop) for other in loops):
                count = count + 1
        return count

    def _find_register(self, loop, need_nonscratch):
        # Hoisting must never starve local sites inside the loop: keep
        # LOCAL_RESERVE registers unassigned over any region.
        if self._busy_count_in(loop) >= len(self.busy) - self.LOCAL_RESERVE:
            return None
        # Prefer scratch registers (free); fall back to callee-saved (one
        # save/restore pair per function).
        order = list(self.spec.br_scratch) + list(self.spec.br_callee_saved)
        for reg in order:
            if reg not in self.busy:
                continue
            if self._register_free_for_loop(reg, loop, need_nonscratch):
                return reg
        return None

    def _hoist(self):
        # Group sites by target; frequencies of branches to the same
        # target are summed (Section 5).
        groups = {}
        for site in self.sites:
            if site.kind in ("indirect", "return") or site.target is None:
                continue
            loop = innermost_loop_of(self.loops, site.block)
            if loop is None:
                continue
            key = (site.target, id(loop))
            entry = groups.setdefault(
                key, {"target": site.target, "loop": loop, "sites": [], "freq": 0.0}
            )
            entry["sites"].append(site)
            entry["freq"] = entry["freq"] + site.freq
        worklist = sorted(groups.values(), key=lambda g: -g["freq"])
        for group in worklist:
            self._hoist_group(group)

    def _hoist_group(self, group):
        """Hoist one target's calculation as far out as registers allow."""
        loop = group["loop"]
        achieved = None
        chosen = None
        level = loop
        while level is not None:
            if not preheader_is_safe(level):
                break
            need_nonscratch = _loop_contains_call(level)
            reg = self._find_register(level, need_nonscratch)
            if reg is None:
                break
            achieved = level
            chosen = reg
            level = level.parent
        if achieved is None:
            return
        calc = HoistedCalc(
            target=group["target"],
            kind="call" if group["sites"][0].kind == "call" else "bta",
            loop=achieved,
            breg=chosen,
            sites=list(group["sites"]),
        )
        calc.preheader = ensure_preheader(self.cfg, achieved, self.fn)
        self.busy[chosen].append(achieved)
        if chosen in self.spec.br_callee_saved:
            self.plan.used_callee_bregs.add(chosen)
        for site in group["sites"]:
            site.breg = chosen
            site.hoisted = calc
        self.plan.hoisted.append(calc)

    # -- local register assignment ------------------------------------------

    def _assign_local(self):
        """Registers for sites whose calculation stays in the block.

        Within a block, a *terminator* site's register is live from the
        block start to the block end and so must differ from every call
        site's register in the same block; sequential call sites can share
        one register."""
        for block in self.cfg.blocks:
            block_sites = [
                s
                for s in self.sites
                if s.block is block and s.hoisted is None and s.kind != "return"
            ]
            if not block_sites:
                continue
            order = list(self.spec.br_scratch) + list(self.spec.br_callee_saved)
            free = [
                reg
                for reg in order
                if reg != self.plan.link_scratch
                and not self._reg_busy_at_block(reg, block)
            ]
            if not free:
                raise RuntimeError(
                    "no branch register available for local site in %s"
                    % self.fn.name
                )
            has_call_sites = any(s.kind == "call" for s in block_sites)
            call_reg = free[0]
            if not has_call_sites:
                term_reg = free[0]
            else:
                term_reg = free[1] if len(free) > 1 else free[0]
            for site in block_sites:
                if site.kind == "call":
                    site.breg = call_reg
                    self.plan.local_regs[id(site)] = call_reg
                    if call_reg in self.spec.br_callee_saved:
                        self.plan.used_callee_bregs.add(call_reg)
                else:
                    site.breg = term_reg
                    self.plan.local_regs[id(site)] = term_reg
                    if term_reg in self.spec.br_callee_saved:
                        self.plan.used_callee_bregs.add(term_reg)
            # A terminator sharing the call register is only safe when the
            # calc is placed after the last call carrier; the code
            # generator handles that via placement order.  Prefer distinct
            # registers when available (handled above).

    def _reg_busy_at_block(self, reg, block):
        for loop in self.busy.get(reg, ()):
            if block in loop.blocks or block is loop.preheader:
                return True
        return False

    # -- driver ------------------------------------------------------------------

    def run(self):
        self._plan_link()
        if self.hoisting:
            self._hoist()
        self._assign_local()
        return self.plan


def _loop_contains_call(loop):
    for block in loop.blocks:
        for ins in block.instrs:
            if getattr(ins, "op", None) == "call":
                return True
    return False


def plan_branch_registers(cfg, loops, sites, spec, fn, hoisting=True):
    """Run the Section 5 allocator; returns a :class:`BranchRegPlan`."""
    return BranchRegAllocator(cfg, loops, sites, spec, fn, hoisting).run()
