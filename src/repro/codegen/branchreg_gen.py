"""Code generator for the branch-register machine (Sections 3-5, Fig. 11).

There are no branch instructions.  Every instruction carries a ``br``
field; naming a non-PC branch register makes the instruction a transfer of
control ("carrier").  Target addresses are computed by separate
instructions (``bta`` for PC-relative targets, ``sethi``+``btalo`` for
function entries), which the Section 5 allocator hoists out of loops.

Conventions (Section 4 + DESIGN.md §5):

* ``b[0]`` is the PC; ``b[link]`` (``b[7]`` with 8 branch registers) is
  clobbered with the next sequential address by *every* transfer and is
  the implied destination of ``cmpset``;
* conditional branch = ``cmpset`` (compare, select ``b[k]`` or sequential)
  followed by a carrier referencing ``b[link]``;
* leaf functions save the incoming link in a scratch branch register
  (``b[1]=b[7]`` in the paper's Figure 4); non-leaf functions spill it to
  the stack with ``bst``/``bld``, which is exactly the extra data-memory
  traffic Table I attributes to branch-register saves/restores.
"""

from repro.codegen.braregalloc import Site, plan_branch_registers
from repro.codegen.common import MInstr, mlabel, mnoop
from repro.codegen.lowering import (
    FrameLayout,
    Legalizer,
    MachineFunction,
    MachineProgram,
    emit_arg_setup,
    emit_moves,
)
from repro.cfg.build import build_cfg
from repro.cfg.freq import estimate_frequencies
from repro.cfg.loops import ensure_preheader, find_loops, preheader_is_safe
from repro.errors import CodegenError
from repro.machine.spec import branchreg_spec
from repro.opt.pipeline import optimize_function
from repro.opt.cse import pool_constants
from repro.opt.legalize import legalize_immediates
from repro.opt.licm import hoist_loop_invariants
from repro.opt.regalloc import allocate, reserved_temps
from repro.rtl.operand import Imm, Label, Reg, Sym, VReg


class BranchRegFunctionGen:
    """Lowers one register-allocated IR function to branch-register MInstrs."""

    def __init__(self, fn, spec, alloc_info, hoisting=True):
        self.fn = fn
        self.spec = spec
        self.alloc = alloc_info
        self.hoisting = hoisting
        self.link = spec.br_link
        self.sp = spec.sp()
        self.itemp = reserved_temps(spec, "int")[2]
        self.out = []
        self.legal = Legalizer(spec, self.out.append)
        self.cfg = None
        self.loops = []
        self.plan = None
        self.frame = None

    def emit(self, ins):
        self.out.append(ins)
        return ins

    def _stamp(self, start, line):
        """Attribute MInstrs emitted since ``start`` to a source line."""
        if line:
            for minstr in self.out[start:]:
                if not minstr.line:
                    minstr.line = line

    # -- site collection -------------------------------------------------------

    def _collect_sites(self):
        sites = []
        for block in self.cfg.blocks:
            for idx, ins in enumerate(block.instrs):
                if ins.op == "call":
                    sites.append(
                        Site("call", block, idx, target=ins.callee, freq=block.freq)
                    )
            term = block.terminator()
            if term is None or term.op == "call":
                continue
            idx = len(block.instrs) - 1
            if term.op in ("br", "fbr"):
                sites.append(
                    Site("cond", block, idx, target=term.target.name, freq=block.freq)
                )
            elif term.op == "jmp":
                if self._is_fallthrough(block, term.target.name):
                    block.instrs.pop()  # elide; sequential execution suffices
                else:
                    sites.append(
                        Site(
                            "jump", block, idx, target=term.target.name,
                            freq=block.freq,
                        )
                    )
            elif term.op == "ijmp":
                sites.append(Site("indirect", block, idx, freq=block.freq))
            elif term.op == "ret":
                sites.append(Site("return", block, idx, freq=block.freq))
        return sites

    def _is_fallthrough(self, block, target_label):
        """True when the jump target is reached by sequential execution
        (skipping empty blocks)."""
        position = self.cfg.blocks.index(block)
        for nxt in self.cfg.blocks[position + 1 :]:
            if target_label in nxt.labels:
                return True
            if nxt.instrs:
                return False
        return False

    # -- prologue / epilogue -------------------------------------------------

    def _extra_slots(self):
        extra = []
        if self.plan.link_save == "stack":
            extra.append("blink")
        for breg in sorted(self.plan.used_callee_bregs):
            extra.append("b%d" % breg)
        return extra

    def prologue(self):
        self.emit(mlabel(self.fn.name))
        if self.frame.size:
            operand = self.legal.imm_operand(self.frame.size)
            self.emit(MInstr("sub", dst=self.sp, srcs=[self.sp, operand]))
        if self.plan.link_save == "stack":
            off = self.frame.save_offset("blink")
            ins = MInstr(
                "bst", srcs=[Reg("b", self.link), self.sp, Imm(off)],
                note="save link",
            )
            self.emit(ins)
        elif self.plan.link_save == "breg":
            self.emit(
                MInstr(
                    "bmov",
                    dst=Reg("b", self.plan.link_scratch),
                    srcs=[Reg("b", self.link)],
                    note="save ret address",
                )
            )
        for breg in sorted(self.plan.used_callee_bregs):
            off = self.frame.save_offset("b%d" % breg)
            self.emit(
                MInstr(
                    "bst", srcs=[Reg("b", breg), self.sp, Imm(off)],
                    note="save b%d" % breg,
                )
            )
        for reg in sorted(
            self.alloc.used_callee_saved, key=lambda r: (r.kind, r.index)
        ):
            off = self.frame.save_offset(reg)
            op = "sf" if reg.kind == "f" else "sw"
            self.emit(MInstr(op, srcs=[reg, self.sp, Imm(off)]))
        self._move_params_in()

    def _move_params_in(self):
        moves = []
        spills = []
        int_index = 0
        flt_index = 0
        for vreg, is_float in self.fn.params:
            if is_float:
                src = self.spec.arg_reg(flt_index, float_=True)
                flt_index = flt_index + 1
            else:
                src = self.spec.arg_reg(int_index)
                int_index = int_index + 1
            kind, where = self.alloc.location(vreg)
            if kind == "reg":
                moves.append((where, src))
            elif kind == "spill":
                spills.append((src, where))
        emit_moves(moves, self.emit, self.spec)
        for src, local in spills:
            off = self.frame.local_offset(local)
            op = "sf" if src.kind == "f" else "sw"
            self.emit(MInstr(op, srcs=[src, self.sp, Imm(off)]))

    def epilogue(self, site):
        """Emit the epilogue and the return transfer."""
        if self.plan.link_save == "stack":
            off = self.frame.save_offset("blink")
            self.emit(
                MInstr(
                    "bld",
                    dst=Reg("b", self.plan.link_scratch),
                    srcs=[self.sp, Imm(off)],
                    note="restore link",
                )
            )
        for breg in sorted(self.plan.used_callee_bregs):
            off = self.frame.save_offset("b%d" % breg)
            self.emit(
                MInstr(
                    "bld", dst=Reg("b", breg), srcs=[self.sp, Imm(off)],
                    note="restore b%d" % breg,
                )
            )
        for reg in sorted(
            self.alloc.used_callee_saved, key=lambda r: (r.kind, r.index)
        ):
            off = self.frame.save_offset(reg)
            op = "lf" if reg.kind == "f" else "lw"
            self.emit(MInstr(op, dst=reg, srcs=[self.sp, Imm(off)]))
        if self.frame.size:
            self.legal.add_immediate(self.sp, self.sp, self.frame.size)
        ret_reg = (
            self.plan.link_scratch
            if self.plan.link_save != "none"
            else self.link
        )
        carrier = mnoop(br=ret_reg)
        carrier.tkind = "return"
        self.emit(carrier)

    # -- body lowering -------------------------------------------------------

    def lower(self):
        optimize_needed = False  # already optimised by the driver
        self.cfg = build_cfg(self.fn)
        self.loops = find_loops(self.cfg)
        estimate_frequencies(self.cfg, self.loops)
        # Pre-create preheaders so the layout is final before planning.
        for loop in self.loops:
            if preheader_is_safe(loop):
                ensure_preheader(self.cfg, loop, self.fn)
        sites = self._collect_sites()
        self.plan = plan_branch_registers(
            self.cfg, self.loops, sites, self.spec, self.fn, hoisting=self.hoisting
        )
        self.frame = FrameLayout(
            self.fn, self.alloc.used_callee_saved, self._extra_slots()
        )
        self.prologue()
        sites_by_block = {}
        for site in self.plan.sites:
            sites_by_block.setdefault(id(site.block), []).append(site)
        hoists_by_block = {}
        for calc in self.plan.hoisted:
            hoists_by_block.setdefault(id(calc.preheader), []).append(calc)
        for block in self.cfg.blocks:
            self._lower_block(
                block,
                sites_by_block.get(id(block), []),
                hoists_by_block.get(id(block), []),
            )
        return MachineFunction(self.fn.name, self.out, self.frame.size)

    def _lower_block(self, block, sites, hoists):
        for name in block.labels:
            self.emit(mlabel(name))
        block_start = len(self.out)
        call_sites = {s.ir_index: s for s in sites if s.kind == "call"}
        term_site = None
        for s in sites:
            if s.kind in ("jump", "cond", "indirect", "return"):
                term_site = s
        # Local terminator bta placement: at block start for maximum
        # prefetch distance -- but only when the block contains no calls,
        # because a callee is free to clobber scratch branch registers.
        # With calls present, the calc is emitted after the last call.
        term_calc_early = (
            term_site is not None
            and term_site.kind in ("jump", "cond")
            and term_site.hoisted is None
            and not call_sites
        )
        if term_calc_early:
            self._emit_bta(term_site.breg, term_site.target)
            self._stamp(
                block_start, block.instrs[term_site.ir_index].line
            )
        last_call_end = None
        skip_next = False
        for idx, ins in enumerate(block.instrs):
            if skip_next:
                skip_next = False
                continue
            start = len(self.out)
            if idx in call_sites:
                self._materialize_call(call_sites[idx], ins)
                self._stamp(start, ins.line)
                last_call_end = len(self.out)
                continue
            if term_site is not None and idx == term_site.ir_index:
                break  # terminator handled below
            if (
                term_site is not None
                and term_site.kind == "indirect"
                and idx == term_site.ir_index - 1
                and ins.op == "lw"
                and block.instrs[idx + 1].op == "ijmp"
                and block.instrs[idx + 1].srcs[0] == ins.dst
            ):
                # Fuse the jump-table load into a branch-register load.
                self._materialize_indirect(term_site, ins)
                self._stamp(start, ins.line)
                skip_next = True
                term_site = None  # fully handled
                continue
            self.lower_instr(ins)
            self._stamp(start, ins.line)
        # Hoisted calculations land at the end of their preheader, before
        # the preheader's own terminator.
        for calc in hoists:
            if calc.kind == "call":
                self._emit_call_pair(calc.breg, calc.target)
            else:
                self._emit_bta(calc.breg, calc.target)
        if term_site is None:
            return
        start = len(self.out)
        term_line = block.instrs[term_site.ir_index].line
        if term_site.kind == "return":
            term = block.instrs[term_site.ir_index]
            if term.srcs:
                value = term.srcs[0]
                is_float = value.kind == "f"
                ret = self.spec.ret_reg(float_=is_float)
                if value != ret:
                    self.emit(
                        MInstr(
                            "fmov" if is_float else "mov", dst=ret, srcs=[value]
                        )
                    )
            self.epilogue(term_site)
            self._stamp(start, term_line)
            return
        if term_site.kind == "indirect":
            # Unfused fallback: the address is already in an integer
            # register; move it into the branch register via a zero-offset
            # btalo.
            term = block.instrs[term_site.ir_index]
            self.emit(
                MInstr(
                    "btalo",
                    dst=Reg("b", term_site.breg),
                    srcs=[term.srcs[0], Imm(0)],
                )
            )
            carrier = mnoop(br=term_site.breg)
            carrier.tkind = "indirect"
            self.emit(carrier)
            self._stamp(start, term_line)
            return
        if term_site.hoisted is None and not term_calc_early:
            self._emit_bta(term_site.breg, term_site.target)
        term = block.instrs[term_site.ir_index]
        if term_site.kind == "jump":
            carrier = mnoop(br=term_site.breg)
            carrier.tkind = "jump"
            self.emit(carrier)
        else:  # cond
            self._materialize_cond(term_site, term)
        self._stamp(start, term_line)

    # -- site materialisation ------------------------------------------------

    def _emit_bta(self, breg, target):
        self.emit(MInstr("bta", dst=Reg("b", breg), target=Label(target)))

    def _emit_call_pair(self, breg, target):
        self.emit(MInstr("sethi", dst=self.itemp, srcs=[Sym(target)]))
        self.emit(
            MInstr(
                "btalo", dst=Reg("b", breg), srcs=[self.itemp], target=Sym(target)
            )
        )

    def _materialize_call(self, site, ins):
        if site.hoisted is None:
            self._emit_call_pair(site.breg, site.target)
        before = len(self.out)
        emit_arg_setup(ins.args, self.spec, self.emit, self.legal, self.frame)
        if len(self.out) > before:
            carrier = self.out[-1]
            carrier.br = site.breg
            carrier.tkind = "call"
        else:
            carrier = mnoop(br=site.breg)
            carrier.tkind = "call"
            self.emit(carrier)
        self._capture_result(ins)

    def _materialize_indirect(self, site, load_ins):
        base, off = self.legal.mem_operands(
            load_ins.srcs[0], load_ins.srcs[1].value
        )
        self.emit(
            MInstr("bld", dst=Reg("b", site.breg), srcs=[base, off])
        )
        carrier = mnoop(br=site.breg)
        carrier.tkind = "indirect"
        self.emit(carrier)

    def _materialize_cond(self, site, term):
        a, b = term.srcs
        op = "fcmpset" if term.op == "fbr" else "cmpset"
        if isinstance(b, Imm) and term.op == "br":
            b = self.legal.imm_operand(b.value)
        self.emit(
            MInstr(
                op,
                dst=Reg("b", self.link),
                srcs=[a, b],
                cond=term.cond,
                btrue=site.breg,
            )
        )
        carrier = mnoop(br=self.link)
        carrier.tkind = "cond"
        self.emit(carrier)

    def _capture_result(self, ins):
        if ins.dst is None:
            return
        if isinstance(ins.dst, VReg):
            raise CodegenError("unallocated vreg %r reached codegen" % (ins.dst,))
        is_float = ins.dst.kind == "f"
        ret = self.spec.ret_reg(float_=is_float)
        if ins.dst != ret:
            self.emit(
                MInstr("fmov" if is_float else "mov", dst=ins.dst, srcs=[ret])
            )

    # -- plain instructions ----------------------------------------------------

    def lower_instr(self, ins):
        op = ins.op
        if op == "label":
            self.emit(mlabel(ins.name))
        elif op == "li":
            self.legal.load_constant(ins.dst, ins.srcs[0].value)
        elif op == "la":
            self.legal.load_address(ins.dst, ins.srcs[0])
        elif op == "laddr":
            local = ins.srcs[0]
            self.legal.add_immediate(
                ins.dst, self.sp, self.frame.local_offset(local)
            )
        elif op == "ldspill":
            local = ins.srcs[0]
            lop = "lf" if ins.dst.kind == "f" else "lw"
            base, off = self.legal.mem_operands(
                self.sp, self.frame.local_offset(local)
            )
            self.emit(MInstr(lop, dst=ins.dst, srcs=[base, off]))
        elif op == "stspill":
            value, local = ins.srcs
            sop = "sf" if value.kind == "f" else "sw"
            base, off = self.legal.mem_operands(
                self.sp, self.frame.local_offset(local)
            )
            self.emit(MInstr(sop, srcs=[value, base, off]))
        elif op in ("lw", "lb", "lf"):
            base, off = self.legal.mem_operands(ins.srcs[0], ins.srcs[1].value)
            self.emit(MInstr(op, dst=ins.dst, srcs=[base, off]))
        elif op in ("sw", "sb", "sf"):
            base, off = self.legal.mem_operands(ins.srcs[1], ins.srcs[2].value)
            self.emit(MInstr(op, srcs=[ins.srcs[0], base, off]))
        elif op in ("mov", "fmov", "neg", "not", "fneg", "cvtif", "cvtfi"):
            self.emit(MInstr(op, dst=ins.dst, srcs=list(ins.srcs)))
        elif op in (
            "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
            "fadd", "fsub", "fmul", "fdiv",
        ):
            a, b = ins.srcs
            if isinstance(b, Imm):
                b = self.legal.imm_operand(b.value)
            self.emit(MInstr(op, dst=ins.dst, srcs=[a, b]))
        elif op == "trap":
            self._trap(ins)
        elif op == "nop":
            self.emit(mnoop())
        else:
            raise CodegenError("branchreg: cannot lower %r" % op)

    def _trap(self, ins):
        emit_arg_setup(ins.args, self.spec, self.emit, self.legal, self.frame)
        self.emit(MInstr("trap", callee=ins.callee))
        self._capture_result(ins)


def _start_stub(spec):
    """Startup: compute main's address, transfer with the call carrier,
    then pass the result to exit."""
    itemp = reserved_temps(spec, "int")[2]
    call_reg = spec.br_scratch[0] if spec.br_scratch else spec.br_callee_saved[0]
    carrier = mnoop(br=call_reg)
    carrier.tkind = "call"
    instrs = [
        mlabel("__start"),
        MInstr("sethi", dst=itemp, srcs=[Sym("main")]),
        MInstr("btalo", dst=Reg("b", call_reg), srcs=[itemp], target=Sym("main")),
        carrier,
        MInstr("mov", dst=spec.arg_reg(0), srcs=[spec.ret_reg()]),
        MInstr("trap", callee="exit"),
        MInstr("halt"),
    ]
    return MachineFunction("__start", instrs, 0)


def generate_branchreg(
    program, spec=None, hoisting=True, fill_carriers=True, replace_noops=True
):
    """Lower an optimised IR program to a branch-register MachineProgram.

    The ``hoisting``/``fill_carriers``/``replace_noops`` switches exist for
    the ablation benchmarks (Section 9): they disable, respectively, the
    Section 5 loop hoisting, the useful-carrier selection, and the
    noop-to-bta replacement.
    """
    from repro.codegen.common import record_codegen_metrics
    from repro.codegen.noopfill import (
        fill_noop_carriers,
        replace_noops_with_bta,
        schedule_compares,
    )
    from repro.obs import span

    spec = spec or branchreg_spec()
    mprog = MachineProgram(spec=spec, globals=dict(program.globals))
    mprog.functions.append(_start_stub(spec))
    for fn in program.functions.values():
        optimize_function(fn)
        with span("codegen.branchreg"):
            legalize_immediates(fn, spec)
            pool_constants(fn)
            hoist_loop_invariants(fn)
            info = allocate(fn, spec)
            gen = BranchRegFunctionGen(fn, spec, info, hoisting=hoisting)
            mfn = gen.lower()
            if fill_carriers:
                fill_noop_carriers(mfn, spec)
            if replace_noops:
                protected = {calc.breg for calc in gen.plan.hoisted}
                if gen.plan.link_scratch is not None:
                    protected.add(gen.plan.link_scratch)
                safe_labels = {
                    label
                    for block in gen.cfg.blocks
                    if len(block.preds) == 1
                    for label in block.labels
                }
                replace_noops_with_bta(mfn, spec, protected, safe_labels)
            schedule_compares(mfn, spec)
        mprog.functions.append(mfn)
    record_codegen_metrics(mprog, "branchreg")
    return mprog
