"""Target code generation for the baseline and branch-register machines."""
