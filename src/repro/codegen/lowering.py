"""Target-independent lowering helpers shared by both code generators.

Covers frame layout, immediate-range legalisation (the branch-register
machine has narrower immediate fields -- Section 7: "smaller range of
available constants in some instructions"), global-address formation
(``sethi``/``addlo``), spill-slot access, and parallel argument moves.
"""

from dataclasses import dataclass, field

from repro.machine.spec import MachineSpec
from repro.opt.regalloc import reserved_temps
from repro.rtl.operand import FLT, Imm, Reg
from repro.codegen.common import MInstr


@dataclass
class MachineFunction:
    """A lowered function: labelled MInstr body plus frame metadata."""

    name: str
    instrs: list = field(default_factory=list)
    frame_size: int = 0


@dataclass
class MachineProgram:
    """A whole lowered program ready for assembly and emulation."""

    spec: MachineSpec
    functions: list = field(default_factory=list)  # of MachineFunction
    globals: dict = field(default_factory=dict)  # name -> GlobalVar
    entry: str = "__start"

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def all_instrs(self):
        for fn in self.functions:
            for ins in fn.instrs:
                yield ins


class FrameLayout:
    """Assigns frame offsets for locals, spill slots and save areas."""

    def __init__(self, fn, used_callee_saved, extra_slots):
        """``extra_slots`` is a list of slot names (e.g. "RT", "b1") that
        the code generator needs for return-address / branch-register
        saves."""
        self.offsets = {}
        self.save_offsets = {}
        offset = 0
        for local in fn.locals:
            self.offsets[local.name] = offset
            offset = offset + _align(local.size, 4)
        for reg in sorted(used_callee_saved, key=lambda r: (r.kind, r.index)):
            self.save_offsets[reg] = offset
            offset = offset + 4
        for name in extra_slots:
            self.save_offsets[name] = offset
            offset = offset + 4
        self.size = _align(offset, 8)

    def local_offset(self, local):
        return self.offsets[local.name]

    def save_offset(self, key):
        return self.save_offsets[key]


def _align(n, a):
    return (n + a - 1) // a * a


class Legalizer:
    """Emits range-legal instruction sequences for one machine."""

    def __init__(self, spec, emit):
        self.spec = spec
        self.emit = emit
        ints = reserved_temps(spec, "int")
        self.scratch = ints[2]  # dedicated legalisation temporary

    @property
    def lo_bits(self):
        return self.spec.imm_bits - 1

    def load_constant(self, dst, value):
        """Materialise an arbitrary 32-bit constant into ``dst``."""
        if self.spec.imm_fits(value):
            self.emit(MInstr("li", dst=dst, srcs=[Imm(value)]))
            return
        self.emit(MInstr("sethi", dst=dst, srcs=[Imm(value)]))
        if value & ((1 << self.lo_bits) - 1):
            self.emit(MInstr("addlo", dst=dst, srcs=[dst, Imm(value)]))

    def load_address(self, dst, sym):
        """Materialise the address of a global symbol (always two
        instructions: the linker-style HI/LO pair of Section 4)."""
        self.emit(MInstr("sethi", dst=dst, srcs=[sym]))
        self.emit(MInstr("addlo", dst=dst, srcs=[dst, sym]))

    def imm_operand(self, value):
        """Return an operand usable as an immediate source: the Imm itself
        when in range, otherwise the scratch register holding the value."""
        if self.spec.imm_fits(value):
            return Imm(value)
        self.load_constant(self.scratch, value)
        return self.scratch

    def mem_operands(self, base, offset):
        """Legalise a base+offset address; returns (base_reg, Imm)."""
        if self.spec.imm_fits(offset):
            return base, Imm(offset)
        self.load_constant(self.scratch, offset)
        self.emit(MInstr("add", dst=self.scratch, srcs=[base, self.scratch]))
        return self.scratch, Imm(0)

    def add_immediate(self, dst, src, value):
        """dst = src + value with legalisation."""
        if value == 0:
            if dst != src:
                self.emit(MInstr("mov", dst=dst, srcs=[src]))
            return
        operand = self.imm_operand(value)
        self.emit(MInstr("add", dst=dst, srcs=[src, operand]))


def resolve_parallel_moves(moves, temp):
    """Order a set of register-to-register moves, breaking cycles.

    ``moves`` is a list of (dst, src) pairs with distinct dsts; ``temp`` is
    a callable(kind) returning a scratch register of that register kind.
    Returns an ordered list of (dst, src) pairs whose sequential execution
    realises the parallel assignment.
    """
    pending = [(d, s) for d, s in moves if d != s]
    out = []
    while pending:
        src_set = {s for _, s in pending}
        ready = [(d, s) for d, s in pending if d not in src_set]
        if ready:
            for d, s in ready:
                out.append((d, s))
            pending = [(d, s) for d, s in pending if d in src_set]
            continue
        # Pure cycle: rotate through a temporary.
        d0, s0 = pending[0]
        t = temp(d0.kind)
        out.append((t, s0))
        pending[0] = (d0, t)
        # Re-enter the loop; d0's old value is now safe in t... note the
        # rewritten move waits until everything reading d0 has fired.
    return out


def emit_moves(moves, emit, spec):
    """Emit resolved parallel moves as mov/fmov MInstrs."""
    ints = reserved_temps(spec, "int")
    flts = reserved_temps(spec, FLT)

    def temp(kind):
        return ints[2] if kind == "r" else flts[1]

    for dst, src in resolve_parallel_moves(moves, temp):
        op = "fmov" if dst.kind == "f" else "mov"
        emit(MInstr(op, dst=dst, srcs=[src]))


def emit_arg_setup(args, spec, emit, legal, frame):
    """Move call/trap arguments into the argument registers.

    Register arguments go through the parallel-move resolver; DeferredArg
    markers (spilled or rematerialised values -- see
    :class:`repro.opt.regalloc.DeferredArg`) are materialised directly
    into their argument register afterwards.  Returns the number of
    instructions emitted.
    """
    from repro.opt.regalloc import DeferredArg

    moves = []
    deferred = []
    int_index = 0
    flt_index = 0
    emitted = [0]

    def counting_emit(ins):
        emitted[0] = emitted[0] + 1
        return emit(ins)

    for arg in args:
        is_float = (isinstance(arg, Reg) and arg.kind == "f") or (
            isinstance(arg, DeferredArg) and arg.cls == FLT
        )
        if is_float:
            dst = spec.arg_reg(flt_index, float_=True)
            flt_index = flt_index + 1
        else:
            dst = spec.arg_reg(int_index)
            int_index = int_index + 1
        if isinstance(arg, DeferredArg):
            deferred.append((dst, arg))
        else:
            moves.append((dst, arg))
    emit_moves(moves, counting_emit, spec)
    for dst, arg in deferred:
        if arg.kind == "spill":
            offset = frame.local_offset(arg.payload)
            lop = "lf" if dst.kind == "f" else "lw"
            base, off = legal.mem_operands(spec.sp(), offset)
            counting_emit(MInstr(lop, dst=dst, srcs=[base, off]))
        else:
            original = arg.payload
            saved_emit = legal.emit
            legal.emit = counting_emit
            try:
                if original.op == "li":
                    legal.load_constant(dst, original.srcs[0].value)
                else:
                    legal.load_address(dst, original.srcs[0])
            finally:
                legal.emit = saved_emit
    return emitted[0]


def global_init_words(gvar):
    """Flatten a word-elem GlobalVar init into (value-or-symref) entries."""
    if gvar.init is None:
        return [0] * (gvar.size // 4)
    return list(gvar.init)
