"""Textual reports in the style of the paper's tables."""


def _fmt_count(n):
    return "{:,}".format(n)


def table1_text(baseline_total, branchreg_total):
    """Render Table I: dynamic measurements from the two machines."""
    rows = [
        ("baseline", baseline_total.instructions, baseline_total.data_refs),
        ("branch register", branchreg_total.instructions, branchreg_total.data_refs),
    ]
    instr_diff = (
        branchreg_total.instructions / baseline_total.instructions - 1.0
        if baseline_total.instructions
        else 0.0
    )
    refs_diff = (
        branchreg_total.data_refs / baseline_total.data_refs - 1.0
        if baseline_total.data_refs
        else 0.0
    )
    lines = [
        "Table I: Dynamic Measurements from the Two Machines",
        "%-16s %>20s %>20s".replace(">", ""),
    ]
    lines[1] = "%-16s %20s %20s" % ("Machine", "instructions", "data references")
    for name, instructions, refs in rows:
        lines.append("%-16s %20s %20s" % (name, _fmt_count(instructions), _fmt_count(refs)))
    lines.append(
        "%-16s %19.1f%% %19.1f%%" % ("diff", instr_diff * 100.0, refs_diff * 100.0)
    )
    return "\n".join(lines)


def per_program_table(pairs):
    """One row per workload: instruction and data-reference changes."""
    lines = [
        "%-11s %12s %12s %8s %8s"
        % ("program", "base instr", "brm instr", "d-instr", "d-refs")
    ]
    for pair in pairs:
        lines.append(
            "%-11s %12s %12s %+7.1f%% %+7.1f%%"
            % (
                pair.name,
                _fmt_count(pair.baseline.instructions),
                _fmt_count(pair.branchreg.instructions),
                -100.0 * pair.instruction_reduction(),
                100.0 * pair.data_ref_increase(),
            )
        )
    return "\n".join(lines)


def cycles_table(estimates_by_stage):
    """Render the Section 7 cycle comparison for several pipeline depths.

    ``estimates_by_stage`` is a list of dicts from
    :func:`repro.pipeline.model.estimate_all`.
    """
    lines = [
        "%6s %14s %14s %14s %9s %10s %14s %9s"
        % ("stages", "no-delay", "baseline", "branch-reg", "saving",
           "delayed%", "fastcmp", "saving")
    ]
    for est in estimates_by_stage:
        fast = est.get("branchreg_fastcmp")
        lines.append(
            "%6d %14s %14s %14s %8.1f%% %9.2f%% %14s %8.1f%%"
            % (
                est["stages"],
                _fmt_count(est["no_delay"].cycles),
                _fmt_count(est["baseline"].cycles),
                _fmt_count(est["branchreg"].cycles),
                est["saving_vs_baseline"] * 100.0,
                est["delayed_fraction"] * 100.0,
                _fmt_count(fast.cycles) if fast else "-",
                est.get("fastcmp_saving_vs_baseline", 0.0) * 100.0,
            )
        )
    return "\n".join(lines)


def cache_table(rows):
    """Render the Section 8/9 cache study.

    ``rows`` is a list of dicts with keys: config, machine, stalls,
    miss_rate, covered, pollution.
    """
    lines = [
        "%-26s %-10s %10s %9s %9s %10s"
        % ("config", "machine", "stalls", "missrate", "covered", "pollution")
    ]
    for row in rows:
        lines.append(
            "%-26s %-10s %10s %8.2f%% %9d %10d"
            % (
                row["config"],
                row["machine"],
                _fmt_count(row["stalls"]),
                row["miss_rate"] * 100.0,
                row.get("covered", 0),
                row.get("pollution", 0),
            )
        )
    return "\n".join(lines)
