"""The EASE-style experiment environment (compile + emulate + measure).

The paper used EASE ("an environment which allows the fast construction
and emulation of proposed architectures") to compile each test program for
both machines and capture dynamic measurements.  This module is our
equivalent driver: it compiles SmallC source for the baseline and
branch-register machines, runs both emulators on the same input, checks
that both produce identical program output (a strong end-to-end
cross-check of both code generators), and returns the paired
:class:`~repro.emu.stats.RunStats`.
"""

from dataclasses import dataclass

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.emu.baseline_emu import run_baseline
from repro.emu.branchreg_emu import run_branchreg
from repro.emu.loader import Image
from repro.errors import MachineDivergence
from repro.lang.frontend import compile_to_ir
from repro.obs import log, span


@dataclass
class PairResult:
    """Measurements from running one program on both machines."""

    name: str
    baseline: object  # RunStats
    branchreg: object  # RunStats

    @property
    def output(self):
        return self.baseline.output

    def instruction_reduction(self):
        """Fractional reduction in executed instructions (positive =
        branch-register machine executed fewer)."""
        if not self.baseline.instructions:
            return 0.0
        return 1.0 - self.branchreg.instructions / self.baseline.instructions

    def data_ref_increase(self):
        if not self.baseline.data_refs:
            return 0.0
        return self.branchreg.data_refs / self.baseline.data_refs - 1.0


def compile_for_machine(source, machine, cache=None, **codegen_options):
    """Compile SmallC source to a loaded Image for one machine.

    ``machine`` is "baseline" or "branchreg".  ``codegen_options`` are
    forwarded to the code generator (the branch-register generator accepts
    ``hoisting``/``fill_carriers``/``replace_noops`` and ``spec`` for the
    Section 9 ablations).  ``cache`` is an optional
    :class:`~repro.harness.parallel.ArtifactCache`: when set, the image
    is served from the persistent compile cache (and compiled into it on
    a miss) instead of always being rebuilt from source.
    """
    if cache is not None:
        return cache.get_image(source, machine, codegen_options)
    program = compile_to_ir(source)
    if machine == "baseline":
        mprog = generate_baseline(program, **codegen_options)
    elif machine == "branchreg":
        mprog = generate_branchreg(program, **codegen_options)
    else:
        raise ValueError("unknown machine %r" % machine)
    return Image(mprog)


def run_on_machine(
    source, machine, stdin=b"", limit=None, name="", observer=None,
    profiler=None, deadline_s=None, record_edges=False, cache=None,
    engine=None, **options
):
    """Compile and run one program on one machine; returns RunStats.

    ``deadline_s`` arms the wall-clock watchdog and ``record_edges``
    keeps the post-mortem control-flow ring buffer (both select the
    emulators' hardened run loop; see ``docs/ROBUSTNESS.md``).
    ``cache`` forwards to :func:`compile_for_machine`.  ``engine``
    selects the run loop ("fast"/"reference"; default: the
    ``REPRO_ENGINE`` environment variable, else "fast").
    """
    image = compile_for_machine(source, machine, cache=cache, **options)
    log.debug("emulating %s on %s", name or "<anonymous>", machine)
    with span("emulate", machine=machine):
        if machine == "baseline":
            return run_baseline(
                image, stdin=stdin, limit=limit, program=name,
                observer=observer, profiler=profiler,
                deadline_s=deadline_s, record_edges=record_edges,
                engine=engine,
            )
        return run_branchreg(
            image, stdin=stdin, limit=limit, program=name,
            observer=observer, profiler=profiler,
            deadline_s=deadline_s, record_edges=record_edges,
            engine=engine,
        )


def crosscheck_pair(name, base_stats, br_stats):
    """Verify the two machines agreed on output and exit status; raises
    :class:`MachineDivergence` otherwise.  Shared by the serial
    :func:`run_pair` and the worker-pool pair runner in
    :mod:`repro.harness.parallel`."""
    if base_stats.output != br_stats.output:
        raise MachineDivergence(
            "machines disagree on %s: baseline %r... vs branchreg %r..."
            % (name, base_stats.output[:80], br_stats.output[:80]),
            mismatches=["output"],
        )
    if base_stats.exit_code != br_stats.exit_code:
        raise MachineDivergence(
            "exit codes disagree on %s: %d vs %d"
            % (name, base_stats.exit_code, br_stats.exit_code),
            mismatches=["exit_code"],
        )


def run_pair(
    source, stdin=b"", limit=None, name="", branchreg_options=None,
    observer=None, deadline_s=None, record_edges=False, cache=None,
    engine=None,
):
    """Run one program on both machines and cross-check the outputs."""
    base_stats = run_on_machine(
        source, "baseline", stdin=stdin, limit=limit, name=name,
        observer=observer, deadline_s=deadline_s, record_edges=record_edges,
        cache=cache, engine=engine,
    )
    br_stats = run_on_machine(
        source, "branchreg", stdin=stdin, limit=limit, name=name,
        observer=observer, deadline_s=deadline_s, record_edges=record_edges,
        cache=cache, engine=engine, **(branchreg_options or {}),
    )
    crosscheck_pair(name, base_stats, br_stats)
    return PairResult(name=name, baseline=base_stats, branchreg=br_stats)
