"""EASE-style experiment environment: compile, emulate, measure, report."""

from repro.ease.environment import (
    PairResult,
    compile_for_machine,
    run_on_machine,
    run_pair,
)
from repro.ease.report import cache_table, cycles_table, per_program_table, table1_text

__all__ = [
    "PairResult",
    "compile_for_machine",
    "run_on_machine",
    "run_pair",
    "cache_table",
    "cycles_table",
    "per_program_table",
    "table1_text",
]
