"""Predecoded fast emulator core.

The reference loop (``BaseEmulator.step``) resolves operands and
dispatches through a bound-method table on every dynamic instruction.
This module does that analysis once, at run start: each instruction in
the image is compiled into a specialized Python closure with its operand
register indices and immediates burned in, and the run loop becomes a
closure-table walk.  Common pairs (``cmp``+``bcc`` on the baseline
machine, ``cmpset``+transfer-carrying instruction on the branch-register
machine) are fused into superinstructions when both halves are provably
non-raising.

Static :class:`~repro.emu.stats.RunStats` counters (opcounts, noops,
loads/stores, transfer categories, carrier classes...) are reconstructed
from per-slot execution counts when the run finishes; only genuinely
dynamic observables (taken conditionals, the prefetch/compare gap
histograms) are recorded inside the closures.  The conformance suite
(:mod:`repro.harness.conformance`, ``tests/test_conformance.py``) pins
the result bit-for-bit against the reference loop on every workload.

Fallback matrix -- the fast core refuses and the reference loop runs
(``emulator.fast_fallback`` records why) whenever:

* a per-step hook is attached: profiler, wall-clock deadline, edge-ring
  recording, or the icache model (``_select_loop`` checks these before
  calling :func:`prepare`);
* a fault injector proxied machine state (``memory``, ``r``/``f``, or
  the branch-register file is no longer the plain built-in type);
* predecode meets anything it cannot compile faithfully: an unknown
  opcode or condition, an operand of unexpected shape, an unresolved
  or non-integer branch target, an out-of-range branch-register field,
  or an unknown machine.

A sampling :class:`~repro.obs.emuobs.EmulationObserver` is *not* on
that list: an observed run dispatches through the pre-fusion standalone
closure table -- one instruction per iteration, so the sample boundary
check after every retire matches the reference observed loop exactly
(same sample count, same state at every ``on_sample``) -- while still
skipping the reference loop's per-step operand resolution.  Counter
cells are flushed into the stats before each sample so the observer
reads exactly what the reference loop would have shown it.

Exact-parity corners the loop goes out of its way to preserve:

* a halting ``trap``/``halt`` still retires its own step (icount,
  opcounts, pc advance, and -- on the branch-register machine -- the
  transfer bookkeeping of its ``br`` field; ``br != 0`` on those ops
  falls back instead of guessing);
* an exception escaping a handler leaves ``pc``/``icount`` exactly
  where the reference dispatch would have (the faulting instruction not
  retired), so post-mortem stamping and fault campaigns agree;
* the last instruction before the limit is delegated to the reference
  loop so the stamped :class:`~repro.errors.RuntimeLimitExceeded` is
  raised at the identical icount even across a fused pair;
* a wild jump raises the byte-identical
  :class:`~repro.errors.ControlFlowViolation` by re-fetching through
  ``image.instruction_at``.
"""

import operator
import os

from repro.codegen.common import BASELINE_CONTROL
from repro.emu.intmath import cdiv, crem, shl, shr, to_signed, wrap
from repro.emu.memory import Memory, TEXT_BASE
from repro.errors import EmulationError
from repro.rtl.operand import Imm, Reg

ENGINES = ("fast", "reference", "trace")

#: Closure return sentinel: the program halted during this step (the
#: step itself still retires, matching the reference loop).
_STOP = object()

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

_CONDS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def resolve_engine(engine=None):
    """Resolve the emulation engine: explicit argument, then the
    ``REPRO_ENGINE`` environment variable, then the ``"fast"`` default.
    The fast engine is always safe to default to: anything it cannot
    reproduce bit-for-bit falls back to the reference loop.  The trace
    engine (:mod:`repro.emu.tracecore`) layers hot-trace compilation on
    top of this module's predecoded tables and inherits the same
    fallback guarantees."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "fast"
    if engine not in ENGINES:
        raise ValueError(
            "unknown emulation engine %r (expected one of %s)"
            % (engine, "/".join(ENGINES))
        )
    return engine


class _Unsupported(Exception):
    """Predecode cannot faithfully compile this image; the whole run
    falls back to the reference loop."""


class _Ctx:
    """Per-run mutable cells shared by the compiled closures.

    Register files, memory, and the branch-register bookkeeping lists
    are the emulator's own objects (mutated in place, so post-mortem
    state needs no sync).  The baseline machine's immutable-attribute
    state (``cc``, ``rt``) and the taken-conditional counter live in
    single-element list cells and are synced back on every loop exit.
    """

    def __init__(self, emu):
        self.emu = emu
        self.spec = emu.spec
        self.r = emu.r
        self.f = emu.f
        self.memory = emu.memory
        self.runtime = emu.runtime
        self.stats = emu.stats
        self.cc = [0, 0]
        self.rt = [0]
        self.taken = [0]
        self.b = getattr(emu, "b", None)
        self.b_set_at = getattr(emu, "b_set_at", None)
        self.cmpset_at = getattr(emu, "cmpset_at", None)
        self.link = getattr(emu, "link", None)
        # Branch-register constants, filled in by _prepare_branchreg
        # (lazy import keeps base -> fastcore -> branchreg_emu acyclic).
        self.SEQ = None
        self.READY = None
        self.GAP_CAP = None
        # Per-slot execution counter, rebound by the predecode loop before
        # each factory call; the factory burns ``c[0] += 1`` into its
        # closure so the run loop needs no bookkeeping of its own.
        self.cell = None


# -- operand getters ---------------------------------------------------------


def _value_getter(ctx, x):
    """A zero-arg closure returning the operand's current value, exactly
    like ``BaseEmulator.value`` would."""
    if type(x) is Reg:
        i = x.index
        if x.kind == "r":
            r = ctx.r

            def g():
                return r[i]

            return g
        if x.kind == "f":
            f = ctx.f

            def g():
                return f[i]

            return g
        raise _Unsupported("branch register in data context")
    if type(x) is Imm:
        v = x.value

        def g():
            return v

        return g
    raise _Unsupported("operand %r" % (x,))


def _int_src(ctx, x):
    """('r', index) / ('i', value) for the r-reg/imm fast shapes, or
    None when the operand needs the generic getter."""
    if type(x) is Reg and x.kind == "r":
        return ("r", x.index)
    if type(x) is Imm:
        return ("i", x.value)
    return None


# -- common opcode factories -------------------------------------------------
#
# Every factory takes (ins, ctx, addr) and returns a one-argument
# closure ``h(ic)`` where ``ic`` is the icount *before* this instruction
# retires (== the reference's ``self.icount`` at dispatch time).  Each
# body transcribes the corresponding ``op_`` handler with everything
# static pre-resolved.


def _c_li(ins, ctx, addr):
    c = ctx.cell
    x = ins.xsrcs[0]
    if type(x) is not Imm:
        raise _Unsupported("li source %r" % (x,))
    r, d, v = ctx.r, ins.dst.index, x.value

    def h(ic):
        c[0] += 1
        r[d] = v

    return h


def _c_sethi(ins, ctx, addr):
    c = ctx.cell
    x = ins.xsrcs[0]
    if type(x) is not Imm:
        raise _Unsupported("sethi source %r" % (x,))
    lo_bits = ctx.spec.imm_bits - 1
    const = to_signed((x.value & _MASK) & ~((1 << lo_bits) - 1))
    r, d = ctx.r, ins.dst.index

    def h(ic):
        c[0] += 1
        r[d] = const

    return h


def _c_addlo(ins, ctx, addr):
    c = ctx.cell
    x1 = ins.xsrcs[1]
    if type(x1) is not Imm:
        raise _Unsupported("addlo low part %r" % (x1,))
    lo_bits = ctx.spec.imm_bits - 1
    low = (x1.value & _MASK) & ((1 << lo_bits) - 1)
    r, d = ctx.r, ins.dst.index
    s = _int_src(ctx, ins.xsrcs[0])
    if s is not None and s[0] == "r":
        a = s[1]

        def h(ic):
            c[0] += 1
            r[d] = (((r[a] + low) & _MASK) ^ _SIGN) - _SIGN

        return h
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        r[d] = (((g0() + low) & _MASK) ^ _SIGN) - _SIGN

    return h


def _c_mov(ins, ctx, addr):
    c = ctx.cell
    r, d = ctx.r, ins.dst.index
    s = _int_src(ctx, ins.xsrcs[0])
    if s is not None:
        if s[0] == "r":
            a = s[1]

            def h(ic):
                c[0] += 1
                r[d] = r[a]

        else:
            v = s[1]

            def h(ic):
                c[0] += 1
                r[d] = v

        return h
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        r[d] = g0()

    return h


def _c_fmov(ins, ctx, addr):
    c = ctx.cell
    f, d = ctx.f, ins.dst.index
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        f[d] = g0()

    return h


def _c_neg(ins, ctx, addr):
    c = ctx.cell
    r, d = ctx.r, ins.dst.index
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        r[d] = (((-g0()) & _MASK) ^ _SIGN) - _SIGN

    return h


def _c_not(ins, ctx, addr):
    c = ctx.cell
    r, d = ctx.r, ins.dst.index
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        r[d] = (((~g0()) & _MASK) ^ _SIGN) - _SIGN

    return h


def _c_fneg(ins, ctx, addr):
    c = ctx.cell
    f, d, s = ctx.f, ins.dst.index, ins.xsrcs[0].index

    def h(ic):
        c[0] += 1
        f[d] = -f[s]

    return h


def _c_cvtif(ins, ctx, addr):
    c = ctx.cell
    f, d = ctx.f, ins.dst.index
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        f[d] = float(g0())

    return h


def _c_cvtfi(ins, ctx, addr):
    c = ctx.cell
    r, f, d, s = ctx.r, ctx.f, ins.dst.index, ins.xsrcs[0].index

    def h(ic):
        c[0] += 1
        r[d] = wrap(int(f[s]))

    return h


def _addsub_factory(sign):
    def factory(ins, ctx, addr):
        c = ctx.cell
        r, d = ctx.r, ins.dst.index
        s0 = _int_src(ctx, ins.xsrcs[0])
        s1 = _int_src(ctx, ins.xsrcs[1])
        if s0 is not None and s0[0] == "r" and s1 is not None:
            a = s0[1]
            if s1[0] == "r":
                b = s1[1]
                if sign > 0:

                    def h(ic):
                        c[0] += 1
                        r[d] = (((r[a] + r[b]) & _MASK) ^ _SIGN) - _SIGN

                else:

                    def h(ic):
                        c[0] += 1
                        r[d] = (((r[a] - r[b]) & _MASK) ^ _SIGN) - _SIGN

                return h
            v = s1[1] if sign > 0 else -s1[1]

            def h(ic):
                c[0] += 1
                r[d] = (((r[a] + v) & _MASK) ^ _SIGN) - _SIGN

            return h
        g0 = _value_getter(ctx, ins.xsrcs[0])
        g1 = _value_getter(ctx, ins.xsrcs[1])
        if sign > 0:

            def h(ic):
                c[0] += 1
                r[d] = (((g0() + g1()) & _MASK) ^ _SIGN) - _SIGN

        else:

            def h(ic):
                c[0] += 1
                r[d] = (((g0() - g1()) & _MASK) ^ _SIGN) - _SIGN

        return h

    return factory


def _int_binop_factory(fn, inline=None):
    """Two-source integer op; ``fn`` applies the reference's wrapping
    semantics.  The dominant register/register and register/immediate
    shapes skip the operand-getter closures, and ops with an ``inline``
    expression builder burn the wrapped arithmetic straight into the
    closure (no per-step function call at all)."""

    def factory(ins, ctx, addr):
        c = ctx.cell
        r, d = ctx.r, ins.dst.index
        s0 = _int_src(ctx, ins.xsrcs[0])
        s1 = _int_src(ctx, ins.xsrcs[1])
        if s0 is not None and s0[0] == "r" and s1 is not None:
            a = s0[1]
            if inline is not None:
                h = inline(c, r, d, a, s1[0] == "r", s1[1])
                if h is not None:
                    return h
            if s1[0] == "r":
                b = s1[1]

                def h(ic):
                    c[0] += 1
                    r[d] = fn(r[a], r[b])

            else:
                v = s1[1]

                def h(ic):
                    c[0] += 1
                    r[d] = fn(r[a], v)

            return h
        g0 = _value_getter(ctx, ins.xsrcs[0])
        g1 = _value_getter(ctx, ins.xsrcs[1])

        def h(ic):
            c[0] += 1
            r[d] = fn(g0(), g1())

        return h

    return factory


def _inline_shift(left):
    def build(c, r, d, a, reg, b):
        if left:
            if reg:

                def h(ic):
                    c[0] += 1
                    r[d] = (((r[a] << (r[b] & 31)) & _MASK) ^ _SIGN) - _SIGN

            else:
                k = b & 31

                def h(ic):
                    c[0] += 1
                    r[d] = (((r[a] << k) & _MASK) ^ _SIGN) - _SIGN

        else:
            if reg:

                def h(ic):
                    c[0] += 1
                    r[d] = (((r[a] >> (r[b] & 31)) & _MASK) ^ _SIGN) - _SIGN

            else:
                k = b & 31

                def h(ic):
                    c[0] += 1
                    r[d] = (((r[a] >> k) & _MASK) ^ _SIGN) - _SIGN

        return h

    return build


def _inline_wrapmul(c, r, d, a, reg, b):
    if reg:

        def h(ic):
            c[0] += 1
            r[d] = (((r[a] * r[b]) & _MASK) ^ _SIGN) - _SIGN

    else:

        def h(ic):
            c[0] += 1
            r[d] = (((r[a] * b) & _MASK) ^ _SIGN) - _SIGN

    return h


def _inline_bitop(op):
    """Masked bitwise op; masking both operands first matches the
    reference's wrap(to_unsigned op to_unsigned) exactly."""

    def build(c, r, d, a, reg, b):
        if op == "&":
            if reg:

                def h(ic):
                    c[0] += 1
                    r[d] = ((r[a] & r[b] & _MASK) ^ _SIGN) - _SIGN

            else:
                k = b & _MASK

                def h(ic):
                    c[0] += 1
                    r[d] = (((r[a] & _MASK) & k ^ _SIGN)) - _SIGN

        elif op == "|":
            if reg:

                def h(ic):
                    c[0] += 1
                    r[d] = ((((r[a] & _MASK) | (r[b] & _MASK)) ^ _SIGN)) - _SIGN

            else:
                k = b & _MASK

                def h(ic):
                    c[0] += 1
                    r[d] = ((((r[a] & _MASK) | k) ^ _SIGN)) - _SIGN

        else:
            if reg:

                def h(ic):
                    c[0] += 1
                    r[d] = ((((r[a] & _MASK) ^ (r[b] & _MASK)) ^ _SIGN)) - _SIGN

            else:
                k = b & _MASK

                def h(ic):
                    c[0] += 1
                    r[d] = ((((r[a] & _MASK) ^ k) ^ _SIGN)) - _SIGN

        return h

    return build


def _flt_binop_factory(op):
    def factory(ins, ctx, addr):
        c = ctx.cell
        f, d = ctx.f, ins.dst.index
        a, b = ins.xsrcs[0].index, ins.xsrcs[1].index
        if op == "+":

            def h(ic):
                c[0] += 1
                f[d] = f[a] + f[b]

        elif op == "-":

            def h(ic):
                c[0] += 1
                f[d] = f[a] - f[b]

        else:

            def h(ic):
                c[0] += 1
                f[d] = f[a] * f[b]

        return h

    return factory


def _c_fdiv(ins, ctx, addr):
    c = ctx.cell
    f, d = ctx.f, ins.dst.index
    a, b = ins.xsrcs[0].index, ins.xsrcs[1].index

    def h(ic):
        c[0] += 1
        denom = f[b]
        if denom == 0.0:
            raise EmulationError("float division by zero")
        f[d] = f[a] / denom

    return h


def _mem_addr_parts(ctx, base_x, off_x):
    """(base getter spec, static offset) for load/store addressing; the
    offset operand is always an ``Imm`` in reference semantics."""
    if type(off_x) is not Imm:
        raise _Unsupported("memory offset %r" % (off_x,))
    return _int_src(ctx, base_x), off_x.value


def _load_factory(kind):
    def factory(ins, ctx, addr):
        c = ctx.cell
        s, off = _mem_addr_parts(ctx, ins.xsrcs[0], ins.xsrcs[1])
        if kind == "w":
            load, dest = ctx.memory.load_word, ctx.r
        elif kind == "b":
            load, dest = ctx.memory.load_byte, ctx.r
        else:
            load, dest = ctx.memory.load_float, ctx.f
        d = ins.dst.index
        data = ctx.memory.data
        size = ctx.memory.size
        if s is not None and s[0] == "r":
            a = s[1]
            r = ctx.r
            if kind == "w":
                # Inline word load; the guarded method call on the slow
                # path raises the reference's exact MemoryFault.

                def h(ic):
                    c[0] += 1
                    at = r[a] + off
                    if at & 3 or at < 0 or at + 4 > size:
                        load(at)
                    r[d] = (
                        int.from_bytes(data[at : at + 4], "little") ^ _SIGN
                    ) - _SIGN

                return h
            if kind == "b":

                def h(ic):
                    c[0] += 1
                    at = r[a] + off
                    if at < 0 or at >= size:
                        load(at)
                    r[d] = data[at]

                return h

            def h(ic):
                c[0] += 1
                dest[d] = load(r[a] + off)

            return h
        if s is not None:  # static address (resolved symbol)
            const = s[1] + off

            def h(ic):
                c[0] += 1
                dest[d] = load(const)

            return h
        g0 = _value_getter(ctx, ins.xsrcs[0])

        def h(ic):
            c[0] += 1
            dest[d] = load(g0() + off)

        return h

    return factory


def _store_factory(kind):
    def factory(ins, ctx, addr):
        c = ctx.cell
        s, off = _mem_addr_parts(ctx, ins.xsrcs[1], ins.xsrcs[2])
        if kind == "w":
            store = ctx.memory.store_word
        elif kind == "b":
            store = ctx.memory.store_byte
        else:
            store = ctx.memory.store_float
        gv = _value_getter(ctx, ins.xsrcs[0])
        v = _int_src(ctx, ins.xsrcs[0])
        r = ctx.r
        data = ctx.memory.data
        size = ctx.memory.size
        if s is not None and s[0] == "r":
            a = s[1]
            if kind == "w" and v is not None and v[0] == "r":
                sv = v[1]

                def h(ic):
                    c[0] += 1
                    at = r[a] + off
                    if at & 3 or at < 0 or at + 4 > size:
                        store(at, r[sv])
                    data[at : at + 4] = (r[sv] & _MASK).to_bytes(4, "little")

                return h
            if kind == "b" and v is not None and v[0] == "r":
                sv = v[1]

                def h(ic):
                    c[0] += 1
                    at = r[a] + off
                    if at < 0 or at >= size:
                        store(at, r[sv])
                    data[at] = r[sv] & 0xFF

                return h
            def h(ic):
                c[0] += 1
                store(r[a] + off, gv())

            return h
        if s is not None:
            const = s[1] + off

            def h(ic):
                c[0] += 1
                store(const, gv())

            return h
        gb = _value_getter(ctx, ins.xsrcs[1])

        def h(ic):
            c[0] += 1
            store(gb() + off, gv())

        return h

    return factory


def _c_noop(ins, ctx, addr):
    c = ctx.cell
    def h(ic):
        c[0] += 1
        return None

    return h


def _c_trap(ins, ctx, addr):
    c = ctx.cell
    runtime = ctx.runtime
    trap = runtime.trap
    callee = ins.callee
    r = ctx.r
    arg_i = ctx.spec.ints.args[0]
    ret_i = ctx.spec.ints.ret

    def h(ic):
        c[0] += 1
        r[ret_i] = trap(callee, r[arg_i])
        if runtime.exit_code is not None:
            return _STOP
        return None

    return h


def _c_halt(ins, ctx, addr):
    c = ctx.cell
    def h(ic):
        c[0] += 1
        return _STOP

    return h


_COMMON_OPS = {
    "li": _c_li,
    "sethi": _c_sethi,
    "addlo": _c_addlo,
    "mov": _c_mov,
    "fmov": _c_fmov,
    "neg": _c_neg,
    "not": _c_not,
    "fneg": _c_fneg,
    "cvtif": _c_cvtif,
    "cvtfi": _c_cvtfi,
    "add": _addsub_factory(+1),
    "sub": _addsub_factory(-1),
    "mul": _int_binop_factory(lambda a, b: wrap(a * b), inline=_inline_wrapmul),
    "div": _int_binop_factory(cdiv),
    "rem": _int_binop_factory(crem),
    "and": _int_binop_factory(
        lambda a, b: wrap((a & _MASK) & (b & _MASK)), inline=_inline_bitop("&")
    ),
    "or": _int_binop_factory(
        lambda a, b: wrap((a & _MASK) | (b & _MASK)), inline=_inline_bitop("|")
    ),
    "xor": _int_binop_factory(
        lambda a, b: wrap((a & _MASK) ^ (b & _MASK)), inline=_inline_bitop("^")
    ),
    "shl": _int_binop_factory(shl, inline=_inline_shift(True)),
    "shr": _int_binop_factory(shr, inline=_inline_shift(False)),
    "fadd": _flt_binop_factory("+"),
    "fsub": _flt_binop_factory("-"),
    "fmul": _flt_binop_factory("*"),
    "fdiv": _c_fdiv,
    "lw": _load_factory("w"),
    "lb": _load_factory("b"),
    "lf": _load_factory("f"),
    "sw": _store_factory("w"),
    "sb": _store_factory("b"),
    "sf": _store_factory("f"),
    "noop": _c_noop,
    "trap": _c_trap,
    "halt": _c_halt,
}


# -- baseline-machine factories ----------------------------------------------


def _c_cmp(ins, ctx, addr):
    c = ctx.cell
    cc = ctx.cc
    s0 = _int_src(ctx, ins.xsrcs[0])
    s1 = _int_src(ctx, ins.xsrcs[1])
    if s0 is not None and s0[0] == "r" and s1 is not None:
        a = s0[1]
        r = ctx.r
        if s1[0] == "r":
            b = s1[1]

            def h(ic):
                c[0] += 1
                cc[0] = r[a]
                cc[1] = r[b]

            return h
        v = s1[1]

        def h(ic):
            c[0] += 1
            cc[0] = r[a]
            cc[1] = v

        return h
    g0 = _value_getter(ctx, ins.xsrcs[0])
    g1 = _value_getter(ctx, ins.xsrcs[1])

    def h(ic):
        c[0] += 1
        cc[0] = g0()
        cc[1] = g1()

    return h


def _c_bcc(ins, ctx, addr):
    c = ctx.cell
    fn = _CONDS.get(ins.cond)
    if fn is None:
        raise _Unsupported("condition %r" % (ins.cond,))
    t = ins.t_addr
    if not isinstance(t, int):
        raise _Unsupported("branch target %r" % (t,))
    cc = ctx.cc
    taken = ctx.taken

    def h(ic):
        c[0] += 1
        if fn(cc[0], cc[1]):
            taken[0] += 1
            return t
        return None

    return h


def _c_jmp(ins, ctx, addr):
    c = ctx.cell
    t = ins.t_addr
    if not isinstance(t, int):
        raise _Unsupported("jump target %r" % (t,))

    def h(ic):
        c[0] += 1
        return t

    return h


def _c_ijmp(ins, ctx, addr):
    c = ctx.cell
    s = _int_src(ctx, ins.xsrcs[0])
    if s is not None and s[0] == "r":
        a = s[1]
        r = ctx.r

        def h(ic):
            c[0] += 1
            return r[a]

        return h
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        return g0()

    return h


def _c_call(ins, ctx, addr):
    c = ctx.cell
    t = ins.t_addr
    if not isinstance(t, int):
        raise _Unsupported("call target %r" % (t,))
    rt = ctx.rt
    ra = addr + 8  # the return point past the delay slot (pc + 8)

    def h(ic):
        c[0] += 1
        rt[0] = ra
        return t

    return h


def _c_retrt(ins, ctx, addr):
    c = ctx.cell
    rt = ctx.rt

    def h(ic):
        c[0] += 1
        return rt[0]

    return h


def _c_mfrt(ins, ctx, addr):
    c = ctx.cell
    r, d, rt = ctx.r, ins.dst.index, ctx.rt

    def h(ic):
        c[0] += 1
        r[d] = rt[0]

    return h


def _c_mtrt(ins, ctx, addr):
    c = ctx.cell
    rt = ctx.rt
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        rt[0] = g0()

    return h


_BASELINE_OPS = dict(_COMMON_OPS)
_BASELINE_OPS.update(
    {
        "cmp": _c_cmp,
        "fcmp": _c_cmp,
        "bcc": _c_bcc,
        "fbcc": _c_bcc,
        "jmp": _c_jmp,
        "ijmp": _c_ijmp,
        "call": _c_call,
        "retrt": _c_retrt,
        "mfrt": _c_mfrt,
        "mtrt": _c_mtrt,
    }
)


# -- branch-register-machine factories ----------------------------------------


def _c_bta(ins, ctx, addr):
    c = ctx.cell
    t = ins.t_addr
    if not isinstance(t, int):
        raise _Unsupported("bta target %r" % (t,))
    b, bsa, d = ctx.b, ctx.b_set_at, ins.dst.index

    def h(ic):
        c[0] += 1
        b[d] = t
        bsa[d] = ic

    return h


def _c_btalo(ins, ctx, addr):
    c = ctx.cell
    lo_bits = ctx.spec.imm_bits - 1
    mask = (1 << lo_bits) - 1
    if ins.t_addr is not None:
        low = ins.t_addr & mask
    else:
        x1 = ins.xsrcs[1]
        if type(x1) is not Imm:
            raise _Unsupported("btalo low part %r" % (x1,))
        low = x1.value & mask
    b, bsa, d = ctx.b, ctx.b_set_at, ins.dst.index
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        b[d] = (((g0() + low) & _MASK) ^ _SIGN) - _SIGN
        bsa[d] = ic

    return h


def _c_bmov(ins, ctx, addr):
    c = ctx.cell
    b, bsa = ctx.b, ctx.b_set_at
    d, s = ins.dst.index, ins.srcs[0].index

    def h(ic):
        c[0] += 1
        b[d] = b[s]
        bsa[d] = bsa[s]

    return h


def _c_bld(ins, ctx, addr):
    c = ctx.cell
    s, off = _mem_addr_parts(ctx, ins.xsrcs[0], ins.xsrcs[1])
    load = ctx.memory.load_word
    b, bsa, d = ctx.b, ctx.b_set_at, ins.dst.index
    if s is not None and s[0] == "r":
        a = s[1]
        r = ctx.r

        def h(ic):
            c[0] += 1
            b[d] = load(r[a] + off)
            bsa[d] = ic

        return h
    g0 = _value_getter(ctx, ins.xsrcs[0])

    def h(ic):
        c[0] += 1
        b[d] = load(g0() + off)
        bsa[d] = ic

    return h


def _c_bst(ins, ctx, addr):
    c = ctx.cell
    s, off = _mem_addr_parts(ctx, ins.xsrcs[1], ins.xsrcs[2])
    store = ctx.memory.store_word
    b, sv = ctx.b, ins.srcs[0].index
    if s is not None and s[0] == "r":
        a = s[1]
        r = ctx.r

        def h(ic):
            c[0] += 1
            store(r[a] + off, b[sv])

        return h
    gb = _value_getter(ctx, ins.xsrcs[1])

    def h(ic):
        c[0] += 1
        store(gb() + off, b[sv])

    return h


def _c_cmpset(ins, ctx, addr):
    c = ctx.cell
    fn = _CONDS.get(ins.cond)
    if fn is None:
        raise _Unsupported("condition %r" % (ins.cond,))
    d = ins.dst.index
    btrue = ins.btrue
    b, bsa, csa = ctx.b, ctx.b_set_at, ctx.cmpset_at
    SEQ, READY = ctx.SEQ, ctx.READY
    g0 = _value_getter(ctx, ins.xsrcs[0])
    g1 = _value_getter(ctx, ins.xsrcs[1])

    def h(ic):
        c[0] += 1
        if fn(g0(), g1()):
            b[d] = b[btrue]
            bsa[d] = bsa[btrue]
        else:
            b[d] = SEQ
            bsa[d] = READY
        csa[d] = ic

    return h


_BRANCHREG_OPS = dict(_COMMON_OPS)
_BRANCHREG_OPS.update(
    {
        "bta": _c_bta,
        "btalo": _c_btalo,
        "bmov": _c_bmov,
        "bld": _c_bld,
        "bst": _c_bst,
        "cmpset": _c_cmpset,
        "fcmpset": _c_cmpset,
    }
)


def _with_transfer(eff, ins, ctx, addr):
    """Compose an instruction's effect with the branch-register transfer
    epilogue (read ``b[br]``, record gap histograms, clobber the link
    register, return the absolute next pc)."""
    br = ins.br
    nb = ctx.spec.branch_regs
    if not isinstance(br, int) or not 0 < br < nb:
        raise _Unsupported("branch-register field %r" % (br,))
    seq = addr + 4
    b, bsa, link = ctx.b, ctx.b_set_at, ctx.link
    stats = ctx.stats
    SEQ, READY, CAP = ctx.SEQ, ctx.READY, ctx.GAP_CAP
    prefetch_gap = stats.prefetch_gap
    if getattr(ins, "tkind", "jump") == "cond":
        csa = ctx.cmpset_at
        compare_gap = stats.compare_gap
        cond_joint = stats.cond_joint
        taken = ctx.taken

        def h(ic):
            eff(ic)
            target = b[br]
            gap_c = ic - csa[br]
            if gap_c > CAP:
                gap_c = CAP
            compare_gap[gap_c] += 1
            set_at = bsa[br]
            if target is SEQ or set_at == READY:
                gap_p = READY
            else:
                gap_p = ic - set_at
                if gap_p > CAP:
                    gap_p = CAP
            cond_joint[(gap_p, gap_c)] += 1
            if target is not SEQ:
                taken[0] += 1
            prefetch_gap[gap_p] += 1
            b[link] = seq
            bsa[link] = ic
            return seq if target is SEQ else target

        return h

    def h(ic):
        eff(ic)
        target = b[br]
        set_at = bsa[br]
        if target is SEQ or set_at == READY:
            prefetch_gap[READY] += 1
        else:
            gap = ic - set_at
            prefetch_gap[gap if gap < CAP else CAP] += 1
        b[link] = seq
        bsa[link] = ic
        return seq if target is SEQ else target

    return h


#: Longest superinstruction (head + body + optional tail).  The run
#: loops leave ``MAX_CHAIN - 1`` instructions of budget to the reference
#: tail so a chain can never retire past the instruction limit.
MAX_CHAIN = 4


def _fuse_seq(h1, h2, nextpc):
    """Superinstruction: sequential (non-raising) handlers retire
    atomically at consecutive icounts; execution continues at the
    burned-in next pc."""

    def h(ic):
        h1(ic)
        h2(ic + 1)
        return nextpc

    return h


def _seq3(h1, h2, h3, nextpc):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        h3(ic + 2)
        return nextpc

    return h


def _seq4(h1, h2, h3, h4, nextpc):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        h3(ic + 2)
        h4(ic + 3)
        return nextpc

    return h


def _fuse_to_transfer(h1, h2):
    """Superinstruction whose tail always transfers (returns the
    absolute next pc / npc itself)."""

    def h(ic):
        h1(ic)
        return h2(ic + 1)

    return h


def _chain3_t(h1, h2, h3):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        return h3(ic + 2)

    return h


def _chain4_t(h1, h2, h3, h4):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        h3(ic + 2)
        return h4(ic + 3)

    return h


def _fuse_base_cond(h1, h2, fallthrough):
    """Baseline superinstruction with a ``bcc``/``fbcc`` tail: the new
    npc is the branch target or the burned-in fall-through."""

    def h(ic):
        h1(ic)
        t = h2(ic + 1)
        return fallthrough if t is None else t

    return h


def _chain3_cond(h1, h2, h3, fallthrough):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        t = h3(ic + 2)
        return fallthrough if t is None else t

    return h


def _chain4_cond(h1, h2, h3, h4, fallthrough):
    def h(ic):
        h1(ic)
        h2(ic + 1)
        h3(ic + 2)
        t = h4(ic + 3)
        return fallthrough if t is None else t

    return h


#: Chain builders by total length; ``seq`` takes a burned-in next pc,
#: ``t`` ends in an always-taken transfer, ``cond`` in a baseline
#: conditional with a burned-in fall-through.
_SEQ_CHAIN = {2: _fuse_seq, 3: _seq3, 4: _seq4}
_T_CHAIN = {2: _fuse_to_transfer, 3: _chain3_t, 4: _chain4_t}
_COND_CHAIN = {2: _fuse_base_cond, 3: _chain3_cond, 4: _chain4_cond}


# -- fusion safety ------------------------------------------------------------

#: Ops whose compiled closures cannot raise (given in-range operands):
#: pure register/immediate arithmetic, compares, and branch-register
#: target-address manipulation.  Anything touching memory, dividing, or
#: trapping is excluded.
_SAFE_OPS = frozenset(
    (
        "noop", "li", "sethi", "addlo", "mov", "fmov", "neg", "not",
        "fneg", "cvtif", "add", "sub", "mul", "and", "or", "xor",
        "shl", "shr", "fadd", "fsub", "fmul", "cmp", "fcmp",
        "cmpset", "fcmpset", "bta", "bmov", "mfrt", "mtrt",
    )
)
_INT_DST_OPS = frozenset(
    ("li", "sethi", "addlo", "mov", "neg", "not", "add", "sub", "mul",
     "and", "or", "xor", "shl", "shr", "mfrt")
)
_FLT_DST_OPS = frozenset(("fmov", "fneg", "cvtif", "fadd", "fsub", "fmul"))

#: Baseline control ops whose compiled closures cannot raise: their
#: factories already validated the condition and target address.
_SAFE_BASE_CONTROL = frozenset(("bcc", "fbcc", "jmp", "call", "retrt"))


def _is_safe(ins, ctx):
    """True when the instruction's compiled closure provably cannot
    raise, making it eligible for superinstruction fusion."""
    op = ins.op
    if op not in _SAFE_OPS:
        return False
    nr = ctx.spec.ints.count
    nf = ctx.spec.flts.count

    def src_ok(x):
        if type(x) is Imm:
            return True
        if type(x) is Reg:
            if x.kind == "r":
                return 0 <= x.index < nr
            if x.kind == "f":
                return 0 <= x.index < nf
        return False

    if not all(src_ok(x) for x in ins.xsrcs):
        return False
    dst = ins.dst
    if op in _INT_DST_OPS:
        return type(dst) is Reg and 0 <= dst.index < nr
    if op in _FLT_DST_OPS:
        return type(dst) is Reg and 0 <= dst.index < nf
    if op in ("cmpset", "fcmpset", "bta", "bmov"):
        nb = ctx.spec.branch_regs
        if type(dst) is not Reg or not 0 <= dst.index < nb:
            return False
        if op == "bta":
            return isinstance(ins.t_addr, int)
        if op == "bmov":
            s = ins.srcs[0] if ins.srcs else None
            return type(s) is Reg and 0 <= s.index < nb
        return (
            ins.cond in _CONDS
            and isinstance(ins.btrue, int)
            and 0 <= ins.btrue < nb
        )
    return True  # noop, cmp, fcmp, mtrt


def _is_safe_baseline_tail(ins, ctx):
    """True when the instruction can be the *second* half of a baseline
    superinstruction: any safe sequential op, or a control op whose
    closure cannot raise."""
    op = ins.op
    if op in _SAFE_BASE_CONTROL:
        return True
    if op == "ijmp":
        x = ins.xsrcs[0]
        if type(x) is Imm:
            return True
        return (
            type(x) is Reg and x.kind == "r"
            and 0 <= x.index < ctx.spec.ints.count
        )
    return _is_safe(ins, ctx)


# -- static-stats reconstruction ----------------------------------------------


def _flush_spec(ins, machine):
    """(opcount names, int stat fields) credited once per execution of
    this slot; mirrors what the reference handlers increment."""
    op = ins.op
    fields = []
    if op == "noop":
        fields.append("noops")
    elif op in ("lw", "lb", "lf"):
        fields += ["loads", "data_refs"]
    elif op in ("sw", "sb", "sf"):
        fields += ["stores", "data_refs"]
    elif op == "trap":
        fields.append("traps")
    if machine == "baseline":
        if op in ("bcc", "fbcc"):
            fields.append("cond_transfers")
        elif op in ("jmp", "ijmp"):
            fields.append("uncond_transfers")
        elif op == "call":
            fields += ["uncond_transfers", "calls"]
        elif op == "retrt":
            fields += ["uncond_transfers", "returns"]
    else:
        if op in ("bta", "btalo"):
            fields.append("bta_calcs")
        elif op == "bld":
            fields += ["loads", "data_refs"]
            if ins.note.startswith("restore"):
                fields.append("branch_reg_restores")
        elif op == "bst":
            fields += ["stores", "data_refs"]
            if ins.note.startswith("save"):
                fields.append("branch_reg_saves")
        if ins.br:
            if getattr(ins, "tkind", "jump") == "cond":
                fields.append("cond_transfers")
            else:
                fields.append("uncond_transfers")
                tkind = getattr(ins, "tkind", "jump")
                if tkind == "call":
                    fields.append("calls")
                elif tkind == "return":
                    fields.append("returns")
            if ins.is_noop():
                fields.append("noop_carriers")
            else:
                fields.append("useful_carriers")
                if ins.is_bta_calc():
                    fields.append("bta_carriers")
    return ((op,), tuple(fields))


def _flush(stats, cells, specs, taken):
    """Credit the statically-reconstructible counters from the per-slot
    execution cells (called exactly once, on any loop exit).

    Each compiled closure increments its own cell, so a superinstruction
    needs no spec merging: its head and tail closures each count their
    own slot, whatever the entry path.  Cells are zeroed after crediting
    so a flush is idempotent."""
    opcounts = stats.opcounts
    for i, cell in enumerate(cells):
        c = cell[0]
        if not c:
            continue
        cell[0] = 0
        names, fields = specs[i]
        for name in names:
            opcounts[name] += c
        for fname in fields:
            setattr(stats, fname, getattr(stats, fname) + c)
    if taken[0]:
        stats.cond_taken += taken[0]
        taken[0] = 0


# -- predecode ----------------------------------------------------------------


def prepare(emulator):
    """Predecode the emulator's image into a closure table.

    Returns a zero-argument runner (drop-in for ``_run_plain``) or
    ``None`` -- with ``emulator.fast_fallback`` explaining why -- when
    the image or machine state cannot be compiled faithfully."""
    machine = emulator.MACHINE_NAME
    if machine == "baseline":
        build = _prepare_baseline
    elif machine == "branchreg":
        build = _prepare_branchreg
    else:
        emulator.fast_fallback = "unknown machine %r" % (machine,)
        return None
    if type(emulator.memory) is not Memory:
        emulator.fast_fallback = "memory proxied (fault injection)"
        return None
    if type(emulator.r) is not list or type(emulator.f) is not list:
        emulator.fast_fallback = "register file proxied (fault injection)"
        return None
    if machine == "branchreg" and (
        type(emulator.b) is not list
        or type(emulator.b_set_at) is not list
        or type(emulator.cmpset_at) is not list
    ):
        emulator.fast_fallback = "branch registers proxied (fault injection)"
        return None
    try:
        return build(emulator)
    except _Unsupported as exc:
        emulator.fast_fallback = str(exc) or "unsupported instruction"
        return None
    except Exception as exc:  # corrupted image shapes, missing operands...
        emulator.fast_fallback = "predecode failed: %s" % (exc,)
        return None


def _prepare_baseline(emu):
    return _make_baseline_runner(emu, *_predecode_baseline(emu))


def _predecode_baseline(emu):
    """Build the baseline predecode tables without committing to a run
    loop: ``(ctx, handlers, lens, specs, cells, plain)``.  ``handlers``
    holds the fused superinstruction closures, ``plain`` the standalone
    (pre-fusion) closures; both count the shared per-slot ``cells``.
    The trace engine reuses these tables for its off-trace loop."""
    ctx = _Ctx(emu)
    ctx.cc = [emu.cc[0], emu.cc[1]]
    ctx.rt = [emu.rt]
    instrs = emu.image.instrs
    n = len(instrs)
    handlers = [None] * n
    lens = [1] * n
    specs = [None] * n
    cells = [[0] for _ in range(n)]
    for i, ins in enumerate(instrs):
        factory = _BASELINE_OPS.get(ins.op)
        if factory is None:
            raise _Unsupported("op %r" % (ins.op,))
        ctx.cell = cells[i]
        handlers[i] = factory(ins, ctx, TEXT_BASE + 4 * i)
        specs[i] = _flush_spec(ins, "baseline")
    # Fuse straight-line runs (up to MAX_CHAIN long) into
    # superinstructions.  The fused closure assumes the delayed-branch
    # entry invariant npc == pc + 4, which only a taken transfer breaks;
    # statically that means: never start a chain in a delay slot (the
    # word after a control op).  The body must be safe sequential ops;
    # the last element may be any safe op *including* a control op (its
    # delay slot is then the word after the chain, which the loop
    # fetches next -- delayed semantics fall out).  A jump *into* a
    # chain lands on that slot's untouched standalone handler;
    # overlapping chains are consistent because each chain captured the
    # standalone closures, which also count their own cells (no spec
    # merging).
    plain = [h for h in handlers]
    for i in range(n - 1):
        head = instrs[i]
        if head.op in BASELINE_CONTROL or not _is_safe(head, ctx):
            continue
        if i > 0 and instrs[i - 1].op in BASELINE_CONTROL:
            continue  # delay slot: npc == pc + 4 not guaranteed on entry
        parts = [plain[i]]
        kind = "seq"
        j = i + 1
        while len(parts) < MAX_CHAIN and j < n:
            tail = instrs[j]
            if tail.op not in BASELINE_CONTROL and _is_safe(tail, ctx):
                parts.append(plain[j])
                j += 1
                continue
            if _is_safe_baseline_tail(tail, ctx):
                parts.append(plain[j])
                kind = "cond" if tail.op in ("bcc", "fbcc") else "t"
            break
        k = len(parts)
        if k < 2:
            continue
        after = TEXT_BASE + 4 * (i + k) + 4  # npc past the chain
        if kind == "seq":
            handlers[i] = _SEQ_CHAIN[k](*parts, after)
        elif kind == "t":
            handlers[i] = _T_CHAIN[k](*parts)
        else:
            handlers[i] = _COND_CHAIN[k](*parts, after)
        lens[i] = k
    return ctx, handlers, lens, specs, cells, plain


def _prepare_branchreg(emu):
    return _make_branchreg_runner(emu, *_predecode_branchreg(emu))


def _predecode_branchreg(emu):
    """Branch-register twin of :func:`_predecode_baseline`."""
    from repro.emu.branchreg_emu import GAP_CAP, READY, _SEQ

    ctx = _Ctx(emu)
    ctx.SEQ = _SEQ
    ctx.READY = READY
    ctx.GAP_CAP = GAP_CAP
    instrs = emu.image.instrs
    n = len(instrs)
    handlers = [None] * n
    lens = [1] * n
    specs = [None] * n
    cells = [[0] for _ in range(n)]
    effects = [None] * n  # pre-epilogue effect, for fusion safety checks
    for i, ins in enumerate(instrs):
        factory = _BRANCHREG_OPS.get(ins.op)
        if factory is None:
            raise _Unsupported("op %r" % (ins.op,))
        addr = TEXT_BASE + 4 * i
        ctx.cell = cells[i]
        eff = factory(ins, ctx, addr)
        effects[i] = eff
        if ins.br:
            if ins.op in ("trap", "halt"):
                # The runner's _STOP protocol cannot carry a transfer
                # target as well; the reference loop handles this
                # (never-generated) combination correctly.
                raise _Unsupported("halting op with a transfer")
            handlers[i] = _with_transfer(eff, ins, ctx, addr)
        else:
            handlers[i] = eff
        specs[i] = _flush_spec(ins, "branchreg")
    # Fuse straight-line runs (up to MAX_CHAIN long) into
    # superinstructions: element m of a chain starting at icount ic runs
    # at ic + m, including any transfer epilogue on the last element.
    # Every element must be provably non-raising so the chain retires
    # atomically; only the last element may carry a transfer (br != 0).
    # A jump into a chain lands on that slot's untouched standalone
    # handler; overlapping chains are consistent because each chain
    # captured the standalone closures, which also count their own
    # cells (no spec merging).
    plain = [h for h in handlers]
    for i in range(n - 1):
        head = instrs[i]
        if head.br or not _is_safe(head, ctx):
            continue
        parts = [plain[i]]
        has_transfer = False
        j = i + 1
        while len(parts) < MAX_CHAIN and j < n:
            tail = instrs[j]
            if not _is_safe(tail, ctx):
                break
            parts.append(plain[j])
            if tail.br:
                has_transfer = True
                break
            j += 1
        k = len(parts)
        if k < 2:
            continue
        if has_transfer:
            handlers[i] = _T_CHAIN[k](*parts)
        else:
            handlers[i] = _SEQ_CHAIN[k](*parts, TEXT_BASE + 4 * (i + k))
        lens[i] = k
    return ctx, handlers, lens, specs, cells, plain


# -- run loops ----------------------------------------------------------------


def _make_baseline_runner(emu, ctx, handlers, lens, specs, cells, plain):
    image = emu.image
    by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(handlers)}
    len_by_pc = {TEXT_BASE + 4 * i: k for i, k in enumerate(lens)}

    def _sync():
        emu.cc = (ctx.cc[0], ctx.cc[1])
        emu.rt = ctx.rt[0]
        _flush(emu.stats, cells, specs, ctx.taken)

    def run_observed():
        # Sampled-observer loop: between boundaries (the next sample
        # point or the instruction limit) dispatch runs through the same
        # superinstruction table as the unobserved loop, switching to
        # the *pre-fusion* standalone closures within ``MAX_CHAIN - 1``
        # instructions of the boundary so no chain can retire across it.
        # Samples therefore fire at exactly the reference observed
        # loop's icounts -- same sample count, same machine state at
        # every ``on_sample`` (state and counters are synced/flushed
        # first) -- while long sampling intervals run at fused speed.
        observer = emu.observer
        observer.on_start(emu)
        HgF = by_pc.get
        Lg = len_by_pc.__getitem__
        Hg = {TEXT_BASE + 4 * i: h for i, h in enumerate(plain)}.get
        STOP = _STOP
        sample_every = observer.sample_every
        next_sample = sample_every
        limit = emu.limit
        pc = emu.pc
        npc = emu.npc
        ic = emu.icount
        stopped = False
        bad = False
        sampling = False
        try:
            while True:
                if ic >= next_sample:
                    emu.pc, emu.npc, emu.icount = pc, npc, ic
                    _sync()
                    sampling = True
                    observer.on_sample(emu)
                    sampling = False
                    next_sample = ic + sample_every
                if stopped or bad or ic >= limit:
                    break
                boundary = next_sample if next_sample < limit else limit
                fused_stop = boundary - (MAX_CHAIN - 1)
                while ic < fused_stop:  # fused phase (run_fused's body)
                    h = HgF(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:  # sequential, one instruction
                        ic += 1
                        pc = npc
                        npc = pc + 4
                    elif t is STOP:
                        ic += 1
                        pc = npc
                        npc = pc + 4
                        stopped = True
                        break
                    else:  # t is the new npc
                        k = Lg(pc)
                        if k == 1:  # taken transfer
                            ic += 1
                            pc = npc
                            npc = t
                        else:  # fused chain: all slots retire
                            ic += k
                            pc += k << 2
                            npc = t
                if stopped or bad:
                    continue
                while ic < boundary:  # single-step up to the boundary
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    ic += 1
                    pc = npc
                    npc = pc + 4 if (t is None or t is STOP) else t
                    if t is STOP:
                        stopped = True
                        break
        except Exception:
            # A faulting instruction does not retire (the reference
            # raises from dispatch; only standalone closures can raise,
            # so the culprit's slot is pc's); an exception out of
            # ``on_sample`` happened *after* its instruction retired
            # and flushed.
            if not sampling:
                cells[(pc - TEXT_BASE) >> 2][0] -= 1
            emu.pc, emu.npc, emu.icount = pc, npc, ic
            _sync()
            raise
        emu.pc, emu.npc, emu.icount = pc, npc, ic
        _sync()
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)  # raises the reference's exact error
            raise AssertionError("unreachable: bad fetch did not raise")
        raise emu._limit_error()

    def run():
        if emu.observer is not None:
            return run_observed()
        return run_fused()

    def run_fused():
        # Dispatch is one dict probe keyed by pc: a miss covers every bad
        # fetch (misaligned, below text, past the end) in a single check,
        # and the closures count their own cells, so the hot loop carries
        # no index arithmetic, bounds tests, or per-slot bookkeeping.
        Hg = by_pc.get
        Lg = len_by_pc.__getitem__
        STOP = _STOP
        # A chain retires up to MAX_CHAIN instructions atomically;
        # leave that margin so the loop can never run past the limit
        # (the reference tail retires the remainder and raises the
        # stamped limit error at the exact icount).
        stop_at = emu.limit - (MAX_CHAIN - 1)
        pc = emu.pc
        npc = emu.npc
        ic = emu.icount
        stopped = False
        bad = False
        try:
            while ic < stop_at:
                h = Hg(pc)
                if h is None:
                    bad = True
                    break
                t = h(ic)
                if t is None:  # sequential, one instruction
                    ic += 1
                    pc = npc
                    npc = pc + 4
                elif t is STOP:
                    ic += 1
                    pc = npc
                    npc = pc + 4
                    stopped = True
                    break
                else:  # t is the new npc
                    k = Lg(pc)
                    if k == 1:  # taken transfer
                        ic += 1
                        pc = npc
                        npc = t
                    else:  # fused pair: both slots retire
                        ic += k
                        pc += k << 2
                        npc = t
        except Exception:
            # The faulting instruction does not retire (the reference
            # raises from dispatch, before icount/pc advance).  Only
            # standalone closures can raise -- fusion requires provably
            # non-raising halves -- so the culprit's slot is pc's.
            cells[(pc - TEXT_BASE) >> 2][0] -= 1
            emu.pc, emu.npc, emu.icount = pc, npc, ic
            emu.cc = (ctx.cc[0], ctx.cc[1])
            emu.rt = ctx.rt[0]
            _flush(emu.stats, cells, specs, ctx.taken)
            raise
        emu.pc, emu.npc, emu.icount = pc, npc, ic
        emu.cc = (ctx.cc[0], ctx.cc[1])
        emu.rt = ctx.rt[0]
        _flush(emu.stats, cells, specs, ctx.taken)
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)  # raises the reference's exact error
            raise AssertionError("unreachable: bad fetch did not raise")
        # At most one instruction of budget left: let the reference loop
        # retire it and raise the stamped limit error at the exact icount.
        emu._run_plain()

    return run


def _make_branchreg_runner(emu, ctx, handlers, lens, specs, cells, plain):
    image = emu.image
    by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(handlers)}
    len_by_pc = {TEXT_BASE + 4 * i: k for i, k in enumerate(lens)}

    def run_observed():
        # See _make_baseline_runner.run_observed: fused dispatch between
        # boundaries, standalone (pre-fusion) dispatch within
        # ``MAX_CHAIN - 1`` instructions of the next sample point or the
        # limit -- bit-identical sampling to the reference loop at fused
        # speed.
        observer = emu.observer
        observer.on_start(emu)
        HgF = by_pc.get
        Lg = len_by_pc.__getitem__
        Hg = {TEXT_BASE + 4 * i: h for i, h in enumerate(plain)}.get
        STOP = _STOP
        sample_every = observer.sample_every
        next_sample = sample_every
        limit = emu.limit
        pc = emu.pc
        ic = emu.icount
        stopped = False
        bad = False
        sampling = False
        try:
            while True:
                if ic >= next_sample:
                    emu.pc, emu.icount = pc, ic
                    _flush(emu.stats, cells, specs, ctx.taken)
                    sampling = True
                    observer.on_sample(emu)
                    sampling = False
                    next_sample = ic + sample_every
                if stopped or bad or ic >= limit:
                    break
                boundary = next_sample if next_sample < limit else limit
                fused_stop = boundary - (MAX_CHAIN - 1)
                while ic < fused_stop:  # fused phase (run_fused's body)
                    h = HgF(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:  # sequential, one instruction
                        ic += 1
                        pc += 4
                    elif t is STOP:
                        ic += 1
                        pc += 4
                        stopped = True
                        break
                    else:  # transfer or fused pair: t is the new pc
                        ic += Lg(pc)
                        pc = t
                if stopped or bad:
                    continue
                while ic < boundary:  # single-step up to the boundary
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    ic += 1
                    if t is None or t is STOP:
                        pc += 4
                        if t is STOP:
                            stopped = True
                            break
                    else:
                        pc = t
        except Exception:
            if not sampling:
                cells[(pc - TEXT_BASE) >> 2][0] -= 1
            emu.pc, emu.icount = pc, ic
            _flush(emu.stats, cells, specs, ctx.taken)
            raise
        emu.pc, emu.icount = pc, ic
        _flush(emu.stats, cells, specs, ctx.taken)
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)
            raise AssertionError("unreachable: bad fetch did not raise")
        raise emu._limit_error()

    def run():
        if emu.observer is not None:
            return run_observed()
        return run_fused()

    def run_fused():
        Hg = by_pc.get
        Lg = len_by_pc.__getitem__
        STOP = _STOP
        stop_at = emu.limit - (MAX_CHAIN - 1)
        pc = emu.pc
        ic = emu.icount
        stopped = False
        bad = False
        try:
            while ic < stop_at:
                h = Hg(pc)
                if h is None:
                    bad = True
                    break
                t = h(ic)
                if t is None:  # sequential, one instruction
                    ic += 1
                    pc += 4
                elif t is STOP:
                    ic += 1
                    pc += 4
                    stopped = True
                    break
                else:  # transfer or fused pair: t is the new pc
                    ic += Lg(pc)
                    pc = t
        except Exception:
            cells[(pc - TEXT_BASE) >> 2][0] -= 1
            emu.pc, emu.icount = pc, ic
            _flush(emu.stats, cells, specs, ctx.taken)
            raise
        emu.pc, emu.icount = pc, ic
        _flush(emu.stats, cells, specs, ctx.taken)
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)
            raise AssertionError("unreachable: bad fetch did not raise")
        emu._run_plain()

    return run
