"""Assembly and loading: MachineProgram -> executable Image.

Assigns every instruction a word address in the text segment, resolves
labels and symbols, lays out the data segment, and pre-resolves operand
values onto the instruction objects so the emulators avoid per-step symbol
lookups.
"""

from repro.errors import CodegenError, ControlFlowViolation, ImageCorruption
from repro.emu.memory import DATA_BASE, Memory, STACK_TOP, TEXT_BASE
from repro.rtl.operand import Imm, Label, Sym


class Image:
    """A loaded program ready to run.

    ``align_functions`` (in words) pads each function's start to a
    multiple of that many instruction words -- the Section 9 idea of
    aligning function entries on cache-line boundaries so that sequential
    and prefetched-target lines conflict less.  Padding slots hold ``noop``
    instructions that are never executed (nothing jumps to them).
    """

    def __init__(self, mprog, align_functions=1):
        self.mprog = mprog
        self.spec = mprog.spec
        self.align_functions = max(1, align_functions)
        self.instrs = []  # index = (addr - TEXT_BASE) // 4
        self.labels = {}  # label/function name -> text address
        self.symbols = {}  # global name -> data address
        self.debug_map = {}  # text address -> (function name, source line)
        self.function_addrs = {}  # function name -> set of text addresses
        self.memory = Memory()
        self.entry = None
        self._assemble_text()
        self._layout_data()
        self._resolve()
        self._pristine = bytes(self.memory.data)

    # -- layout ------------------------------------------------------------

    def _assemble_text(self):
        from repro.codegen.common import mnoop

        addr = TEXT_BASE
        align_bytes = 4 * self.align_functions
        for fn in self.mprog.functions:
            while addr % align_bytes:
                pad = mnoop()
                pad.addr = addr
                pad.note = "align pad"
                self.instrs.append(pad)
                addr = addr + 4
            fn_addrs = self.function_addrs.setdefault(fn.name, set())
            for ins in fn.instrs:
                if ins.is_label():
                    if ins.label in self.labels:
                        raise CodegenError("duplicate label %r" % ins.label)
                    self.labels[ins.label] = addr
                else:
                    ins.addr = addr
                    self.instrs.append(ins)
                    fn_addrs.add(addr)
                    self.debug_map[addr] = (fn.name, getattr(ins, "line", 0))
                    addr = addr + 4
        self.entry = self.labels[self.mprog.entry]

    def source_location(self, addr):
        """(function name, source line) for a text address; line 0 means
        no attribution (runtime stubs, alignment padding)."""
        return self.debug_map.get(addr, ("?", 0))

    def _layout_data(self):
        addr = DATA_BASE
        for name, gvar in self.mprog.globals.items():
            align = 4 if gvar.elem != "byte" else 1
            addr = (addr + align - 1) // align * align
            self.symbols[name] = addr
            addr = addr + max(gvar.size, 1)
        self.data_end = (addr + 7) // 8 * 8
        for name, gvar in self.mprog.globals.items():
            self._init_global(self.symbols[name], gvar)

    def _init_global(self, addr, gvar):
        init = gvar.init
        if init is None:
            return
        if gvar.elem == "byte":
            self.memory.write_bytes(addr, bytes(init))
            return
        if gvar.elem == "float":
            for i, value in enumerate(init):
                self.memory.store_float(addr + 4 * i, float(value))
            return
        if gvar.elem == "label":
            for i, name in enumerate(init):
                self.memory.store_word(addr + 4 * i, self.labels[name])
            return
        # word data, possibly containing ("sym", name) address entries
        for i, value in enumerate(init):
            if isinstance(value, tuple) and value[0] == "sym":
                self.memory.store_word(addr + 4 * i, self.symbols[value[1]])
            else:
                self.memory.store_word(addr + 4 * i, int(value))

    # -- symbol resolution -----------------------------------------------------

    def address_of(self, name):
        """Address of a label, function, or global symbol."""
        if name in self.labels:
            return self.labels[name]
        if name in self.symbols:
            return self.symbols[name]
        raise KeyError(name)

    def _resolve(self):
        """Pre-resolve symbolic operands onto each instruction:

        * ``ins.t_addr``  -- target address for control ops and bta;
        * ``ins.xsrcs``   -- sources with Sym/Label replaced by ints
          (for sethi/addlo the full resolved constant).
        """
        for ins in self.instrs:
            if ins.target is not None:
                ins.t_addr = self.address_of(ins.target.name)
            else:
                ins.t_addr = None
            xsrcs = []
            for src in ins.srcs:
                if isinstance(src, (Sym, Label)):
                    base = self.address_of(src.name)
                    offset = getattr(src, "offset", 0)
                    xsrcs.append(Imm(base + offset))
                else:
                    xsrcs.append(src)
            ins.xsrcs = xsrcs

    def reset(self):
        """Restore the pristine memory image so the program can be run
        again (emulation mutates globals and the stack in place)."""
        self.memory.data[:] = self._pristine
        return self

    def instruction_at(self, addr):
        if addr & 3:
            raise ControlFlowViolation("misaligned instruction fetch", addr)
        index = (addr - TEXT_BASE) >> 2
        if index < 0 or index >= len(self.instrs):
            raise ControlFlowViolation("fetch outside text segment", addr)
        return self.instrs[index]

    def text_end(self):
        """First address past the last text-segment instruction."""
        return TEXT_BASE + 4 * len(self.instrs)

    def verify(self):
        """Integrity-check the loaded image; raises
        :class:`~repro.errors.ImageCorruption` on the first violation.

        Catches what static inspection can: an entry point outside the
        text segment, instructions whose opcode no machine defines, and
        resolved control-flow relocations (``t_addr``) that are
        misaligned or point outside the text segment -- the load-time
        face of truncated-segment and clobbered-relocation faults.
        Returns self so call sites can chain.
        """
        from repro.machine.encoding import OPCODES

        end = self.text_end()
        if self.entry is None or not (TEXT_BASE <= self.entry < end):
            raise ImageCorruption(
                "entry point 0x%x outside text segment [0x%x, 0x%x)"
                % (self.entry or 0, TEXT_BASE, end)
            )
        for ins in self.instrs:
            if ins.op not in OPCODES:
                raise ImageCorruption(
                    "undecodable instruction %r at 0x%x" % (ins.op, ins.addr)
                )
            if ins.t_addr is not None:
                if ins.t_addr & 3 or not (TEXT_BASE <= ins.t_addr < end):
                    raise ImageCorruption(
                        "relocation at 0x%x targets 0x%x, outside the "
                        "aligned text segment [0x%x, 0x%x)"
                        % (ins.addr, ins.t_addr, TEXT_BASE, end)
                    )
        return self

    @property
    def stack_top(self):
        return STACK_TOP
