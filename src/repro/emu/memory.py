"""Byte-addressable memory for the emulated machines.

Layout (both machines)::

    0x00001000  text base   (4 bytes per instruction; instructions are
                             *not* stored as bytes -- fetch goes through the
                             image's instruction table)
    0x00100000  data base   (globals, string literals, jump tables)
    0x007FFFF0  initial stack pointer (stack grows down)

Words are little-endian; floats are IEEE-754 single precision.
"""

import struct

from repro.errors import MemoryFault
from repro.emu.intmath import to_signed

TEXT_BASE = 0x1000
DATA_BASE = 0x100000
STACK_TOP = 0x7FFFF0
MEMORY_SIZE = 0x800000


class Memory:
    """Flat byte-addressable memory."""

    def __init__(self, size=MEMORY_SIZE):
        self.size = size
        self.data = bytearray(size)

    def _check(self, address, length):
        if address < 0 or address + length > self.size:
            raise MemoryFault("access out of range", address)

    def _check_word(self, address, what):
        """Word-sized accesses must be 4-byte aligned; a misaligned
        address is a corrupted pointer, never legitimate generated code."""
        if address & 3:
            raise MemoryFault("misaligned %s access" % what, address)
        if address < 0 or address + 4 > self.size:
            raise MemoryFault("access out of range", address)

    def load_word(self, address):
        self._check_word(address, "word")
        return to_signed(int.from_bytes(self.data[address : address + 4], "little"))

    def store_word(self, address, value):
        self._check_word(address, "word")
        self.data[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def load_byte(self, address):
        self._check(address, 1)
        return self.data[address]

    def store_byte(self, address, value):
        self._check(address, 1)
        self.data[address] = value & 0xFF

    def load_float(self, address):
        self._check_word(address, "float")
        return struct.unpack_from("<f", self.data, address)[0]

    def store_float(self, address, value):
        self._check_word(address, "float")
        struct.pack_into("<f", self.data, address, value)

    def write_bytes(self, address, blob):
        self._check(address, len(blob))
        self.data[address : address + len(blob)] = blob

    def read_bytes(self, address, length):
        self._check(address, length)
        return bytes(self.data[address : address + length])

    def read_cstring(self, address, limit=1 << 16):
        """Read a NUL-terminated string (for debugging and runtime I/O)."""
        out = bytearray()
        for i in range(limit):
            b = self.load_byte(address + i)
            if b == 0:
                break
            out.append(b)
        return out.decode("latin-1")
