"""Emulation substrate: memory, runtime, and the two machine emulators."""
