"""Execution tracing: annotated per-instruction logs from either emulator.

Built on the emulators' ``step`` loop, the tracer records (address,
paper-notation text, interesting state) tuples, optionally filtered to a
single function's address range.  Used by ``python -m repro steptrace``
and by tests that assert on control-flow sequences.  (The suite-level
Chrome-trace exporter is separate: :mod:`repro.obs.trace`.)
"""

from dataclasses import dataclass, field

from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.rtl.printer import minstr_text


@dataclass
class TraceEntry:
    index: int
    addr: int
    text: str
    detail: str = ""

    def __str__(self):
        base = "%6d  0x%05x  %s" % (self.index, self.addr, self.text)
        if self.detail:
            base = "%-60s ; %s" % (base, self.detail)
        return base


@dataclass
class Trace:
    entries: list = field(default_factory=list)
    truncated: bool = False

    def __str__(self):
        lines = [str(e) for e in self.entries]
        if self.truncated:
            lines.append("... (truncated)")
        return "\n".join(lines)

    def addresses(self):
        return [e.addr for e in self.entries]


def _function_addresses(image, function):
    """Exact set of one function's instruction addresses.

    Uses the loader's per-function membership sets rather than the old
    ``min(addrs)..max(addrs)`` span approximation, which also matched any
    alignment-padding noops laid out inside the span and would
    mis-attribute them to the filtered function."""
    if function not in image.function_addrs:
        raise KeyError(function)
    addrs = image.function_addrs[function]
    if not addrs:
        raise ValueError("function %r has no instructions" % function)
    return frozenset(addrs)


def trace_run(
    image,
    machine,
    stdin=b"",
    max_entries=200,
    function=None,
    limit=2_000_000,
):
    """Run ``image`` on ``machine`` ("baseline"/"branchreg"), recording up
    to ``max_entries`` executed instructions (optionally only those inside
    ``function``).  Returns (Trace, RunStats)."""
    if machine == "baseline":
        emulator = BaselineEmulator(image.reset(), stdin=stdin, limit=limit)
    elif machine == "branchreg":
        emulator = BranchRegEmulator(image.reset(), stdin=stdin, limit=limit)
    else:
        raise ValueError("unknown machine %r" % machine)
    addr_filter = _function_addresses(image, function) if function else None
    trace = Trace()
    while not emulator.halted and emulator.icount < limit:
        pc = emulator.pc
        ins = image.instruction_at(pc)
        record = addr_filter is None or pc in addr_filter
        detail = ""
        if record and len(trace.entries) < max_entries:
            if machine == "branchreg" and ins.br:
                target = emulator.b[ins.br]
                detail = (
                    "-> seq" if target == "seq" else "-> 0x%05x" % target
                )
            trace.entries.append(
                TraceEntry(emulator.icount, pc, minstr_text(ins), detail)
            )
        elif record:
            trace.truncated = True
            # Keep running to completion for accurate stats, but stop
            # recording.
            addr_filter = frozenset()  # never matches again
        emulator.step()
    emulator.stats.instructions = emulator.icount
    emulator.stats.output = bytes(emulator.runtime.stdout)
    return trace, emulator.stats
