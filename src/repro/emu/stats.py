"""Dynamic measurement counters -- the observables of Table I and Section 7.

The EASE environment the paper used reported dynamic instruction counts and
data memory references; we additionally keep the per-category breakdowns
needed for the Section 7 cycle estimates (transfer counts, noop counts,
branch-target-calculation counts, prefetch-distance histograms).
"""

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Counters accumulated while emulating one program."""

    machine: str = ""
    program: str = ""
    instructions: int = 0
    data_refs: int = 0
    loads: int = 0
    stores: int = 0
    noops: int = 0
    traps: int = 0
    # Transfers of control.
    uncond_transfers: int = 0
    cond_transfers: int = 0
    cond_taken: int = 0
    calls: int = 0
    returns: int = 0
    # Branch-register machine only.
    bta_calcs: int = 0
    noop_carriers: int = 0  # transfers carried by a noop (unfilled)
    useful_carriers: int = 0  # transfers carried by a useful instruction
    bta_carriers: int = 0  # transfers carried by a target-address calc
    branch_reg_saves: int = 0
    branch_reg_restores: int = 0
    # Histogram of the dynamic distance (in instructions) between the
    # branch-target-address calculation and its use; key 0 means the
    # target register was written by the immediately preceding
    # instruction.  "ready" distances (sequential path of an untaken
    # conditional) are recorded under the key -1.
    prefetch_gap: Counter = field(default_factory=Counter)
    # Distance between a cmpset and the transfer that consumes it.
    compare_gap: Counter = field(default_factory=Counter)
    # Joint histogram for conditional transfers: (prefetch gap, compare
    # gap) -> count, so pipeline models can charge the max of both
    # penalties per transfer exactly.
    cond_joint: Counter = field(default_factory=Counter)
    opcounts: Counter = field(default_factory=Counter)
    exit_code: int = 0
    output: bytes = b""

    @property
    def transfers(self):
        return self.uncond_transfers + self.cond_transfers

    def transfer_fraction(self):
        if not self.instructions:
            return 0.0
        return self.transfers / self.instructions

    def merge(self, other):
        """Accumulate another run's counters into this one (suite totals)."""
        self.instructions += other.instructions
        self.data_refs += other.data_refs
        self.loads += other.loads
        self.stores += other.stores
        self.noops += other.noops
        self.traps += other.traps
        self.uncond_transfers += other.uncond_transfers
        self.cond_transfers += other.cond_transfers
        self.cond_taken += other.cond_taken
        self.calls += other.calls
        self.returns += other.returns
        self.bta_calcs += other.bta_calcs
        self.noop_carriers += other.noop_carriers
        self.useful_carriers += other.useful_carriers
        self.bta_carriers += other.bta_carriers
        self.branch_reg_saves += other.branch_reg_saves
        self.branch_reg_restores += other.branch_reg_restores
        self.prefetch_gap.update(other.prefetch_gap)
        self.compare_gap.update(other.compare_gap)
        self.cond_joint.update(other.cond_joint)
        self.opcounts.update(other.opcounts)
        return self


def suite_totals(stats_list, machine=""):
    """Merge a list of per-program stats into suite totals."""
    total = RunStats(machine=machine, program="TOTAL")
    for stats in stats_list:
        total.merge(stats)
    return total
