"""Dynamic measurement counters -- the observables of Table I and Section 7.

The EASE environment the paper used reported dynamic instruction counts and
data memory references; we additionally keep the per-category breakdowns
needed for the Section 7 cycle estimates (transfer counts, noop counts,
branch-target-calculation counts, prefetch-distance histograms).
"""

from collections import Counter
from dataclasses import dataclass, field, fields


@dataclass
class RunStats:
    """Counters accumulated while emulating one program."""

    machine: str = ""
    program: str = ""
    #: Which run loop produced these counters ("reference", "fast", or
    #: "trace"); identity, not a measurement -- the conformance suite
    #: asserts the measured fields are bit-identical across engines.
    engine: str = ""
    #: Why the requested engine degraded to a slower loop family (empty
    #: when the requested engine ran).  Identity, not a measurement; it
    #: surfaces the fallback matrix in run manifests.
    engine_fallback: str = ""
    instructions: int = 0
    data_refs: int = 0
    loads: int = 0
    stores: int = 0
    noops: int = 0
    traps: int = 0
    # Transfers of control.
    uncond_transfers: int = 0
    cond_transfers: int = 0
    cond_taken: int = 0
    calls: int = 0
    returns: int = 0
    # Branch-register machine only.
    bta_calcs: int = 0
    noop_carriers: int = 0  # transfers carried by a noop (unfilled)
    useful_carriers: int = 0  # transfers carried by a useful instruction
    bta_carriers: int = 0  # transfers carried by a target-address calc
    branch_reg_saves: int = 0
    branch_reg_restores: int = 0
    # Histogram of the dynamic distance (in instructions) between the
    # branch-target-address calculation and its use; key 0 means the
    # target register was written by the immediately preceding
    # instruction.  "ready" distances (sequential path of an untaken
    # conditional) are recorded under the key -1.
    prefetch_gap: Counter = field(default_factory=Counter)
    # Distance between a cmpset and the transfer that consumes it.
    compare_gap: Counter = field(default_factory=Counter)
    # Joint histogram for conditional transfers: (prefetch gap, compare
    # gap) -> count, so pipeline models can charge the max of both
    # penalties per transfer exactly.
    cond_joint: Counter = field(default_factory=Counter)
    opcounts: Counter = field(default_factory=Counter)
    # Trace-engine diagnostics (repro.emu.tracecore): how many hot traces
    # were compiled for the image, how often compiled code was entered,
    # and how many instructions retired inside compiled traces.  These
    # describe *how* the work was done, not *what* was done, so the
    # conformance digest excludes them alongside ``engine``.
    traces_compiled: int = 0
    trace_enters: int = 0
    trace_instructions: int = 0
    exit_code: int = 0
    output: bytes = b""

    @property
    def transfers(self):
        return self.uncond_transfers + self.cond_transfers

    def transfer_fraction(self):
        if not self.instructions:
            return 0.0
        return self.transfers / self.instructions

    #: Fields that identify a run rather than measure it; ``merge`` leaves
    #: them untouched on the receiving side.
    IDENTITY_FIELDS = (
        "machine", "program", "engine", "engine_fallback",
        "exit_code", "output",
    )

    #: Fields describing *how* a run executed rather than what it
    #: computed; the conformance digest pops these (plus ``engine`` and
    #: ``engine_fallback``) before comparing engines bit-for-bit.
    DIAGNOSTIC_FIELDS = (
        "traces_compiled", "trace_enters", "trace_instructions",
    )

    def merge(self, other):
        """Accumulate another run's counters into this one (suite totals).

        Derived from ``dataclasses.fields()`` so that adding a counter to
        the dataclass automatically includes it in suite totals: integer
        fields sum, Counter fields update, identity fields are skipped.
        """
        for f in fields(self):
            if f.name in self.IDENTITY_FIELDS:
                continue
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            elif isinstance(mine, int):
                setattr(self, f.name, mine + theirs)
            else:
                raise TypeError(
                    "RunStats.%s has unmergeable type %s; add it to "
                    "IDENTITY_FIELDS or give it int/Counter semantics"
                    % (f.name, type(mine).__name__)
                )
        return self


def suite_totals(stats_list, machine=""):
    """Merge a list of per-program stats into suite totals."""
    total = RunStats(machine=machine, program="TOTAL")
    for stats in stats_list:
        total.merge(stats)
    return total
