"""Trace-compiling emulator engine.

The predecoded fast core (:mod:`repro.emu.fastcore`) pays one closure
call per retired instruction (amortized by short superinstruction
chains).  This engine goes one step further for *hot* code: it runs a
profiled warm-up using the fast core's standalone closure tables while
recording control-flow edges exactly like
:meth:`~repro.emu.base.BaseEmulator._run_profiled`, asks the
:class:`~repro.obs.profile.ExecutionProfiler` reconstruction which
back-edge targets are hot, and compiles one specialized Python function
per hot trace (a loop body closed over its back edge, or a straight-line
superblock) via ``compile``/``exec``:

* registers live in Python locals for the whole trace;
* memory accesses are inlined against the raw ``bytearray`` with the
  fast core's exact guard expressions (the guarded method call on the
  slow path raises the reference's error);
* every point where execution can leave the trace -- a conditional that
  goes the cold way, an indirect target mismatch, a halting trap -- is a
  side-exit stub that retires the exact number of instructions executed
  and returns the precise continuation pc;
* the icount budget is enforced by construction: a trace is entered only
  with ``ic <= fuel`` (``limit - trace_length``), so no invocation can
  retire past the instruction limit, and the final sub-``MAX_CHAIN``
  tail is still delegated to the reference loop for the exact stamped
  :class:`~repro.errors.RuntimeLimitExceeded`.

Off-trace execution falls back to the fast core's fused dispatch (the
tables are shared -- ``_predecode_*`` builds them once), so cold code is
never slower than ``engine="fast"``.  Per-slot execution cells are
credited by the trace's exit stubs and exception handler, which keeps
:func:`repro.emu.fastcore._flush` reconstruction -- and therefore every
RunStats counter -- bit-identical to the reference loop; the conformance
wall (``tests/test_conformance.py``, ``repro golden --check``) pins
this across all three engines.

Compiled trace sources are memoized in the content-addressed artifact
cache (:class:`repro.harness.parallel.ArtifactCache` blob entries keyed
by image hash, trace PCs, and engine version), inheriting its
corrupt-entry detect/delete/rebuild guard and telemetry.  Compilation
is observable: a ``trace_compile`` span wraps selection+codegen and the
``emulator.trace_compile`` counter records compiled/cached/none/error
outcomes per machine.

Fallback matrix -- mirrors the fast core's, with the reason recorded in
``emulator.trace_fallback`` (see ``BaseEmulator._select_loop``): any
per-step hook except the sampling observer (profiler, deadline,
edge-ring, icache) or proxied machine state degrades the run, first to
the fast core, then to the reference loop.  A sampling
:class:`~repro.obs.emuobs.EmulationObserver` is serviced natively: the
observed loop bounds each trace invocation's fuel by the next sample
boundary, so samples fire at reference-identical icounts while hot code
still rides the compiled traces between boundaries.
"""

import hashlib
import os
import re
from collections import Counter

from repro.codegen.common import BASELINE_CONTROL
from repro.emu.fastcore import (
    MAX_CHAIN,
    _STOP,
    _Unsupported,
    _flush,
    _predecode_baseline,
    _predecode_branchreg,
)
from repro.emu.intmath import cdiv, crem, to_signed
from repro.emu.memory import Memory, TEXT_BASE
from repro.errors import EmulationError
from repro.rtl.operand import Imm, Reg

#: Instructions executed under the profiled warm-up loop before hot
#: traces are selected and compiled (``REPRO_TRACE_WARMUP`` overrides).
WARMUP_INSTRUCTIONS = 4096
#: Length of each *re*-profiling window: when off-trace execution keeps
#: dominating after a compile (a program phase the warm-up never saw),
#: the runner records another edge window and compiles the new hot
#: anchors it reveals.
REPROFILE_WINDOW = 4096
#: Off-trace instructions retired since the last compile before a
#: re-profiling window fires; doubles after any window that yields no
#: new trace, so untraceable programs stop paying for profiling.  The
#: doubled value persists per image (:data:`_RETRACE_MEMO`), so repeat
#: runs of a converged image skip the windows entirely.
RETRACE_START = 8_192
#: At most this many *new* traces are compiled per selection pass.
MAX_TRACES = 24
#: Hard cap on compiled traces per image across all passes.
TOTAL_TRACES = 64
#: A trace stops growing past this many instructions.
MAX_TRACE_LEN = 96
#: Minimum length for a closed loop trace to be worth compiling.
MIN_LOOP_LEN = 2
#: Minimum length for an open (superblock) trace to be worth compiling.
MIN_SUPERBLOCK_LEN = 4
#: A back edge must have fired at least this often during warm-up for
#: its target to become a trace anchor.
HOT_EDGE_MIN = 8

#: Minimum re-profile-window heat for anchoring a target that is
#: already inside a compiled trace's body (a duplicate tail that closes
#: an off-trace gap between sibling traces).
COVERED_EDGE_MIN = 32
#: Bump to invalidate every cached trace when codegen changes shape.
TRACE_FORMAT = 4

#: Assignment to a register-shaped local in generated trace bodies.
_ASSIGN = re.compile(r"\s*([rfbsq]\d+|cA|cB|rtv) = ")

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000
_M = "4294967295"
_S = "2147483648"

_COND_OPS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}

#: Ops whose emitted code provably cannot raise (given the grow-time
#: operand validation); only these may sit in a baseline delay slot
#: inside a trace, which preserves ``npc == pc + 4`` at any fault.
_NONRAISING_COMMON = frozenset(
    (
        "noop", "li", "sethi", "addlo", "mov", "fmov", "neg", "not",
        "fneg", "cvtif", "add", "sub", "mul", "and", "or", "xor",
        "shl", "shr", "fadd", "fsub", "fmul", "cmp", "fcmp",
    )
)
_NONRAISING_BASE = _NONRAISING_COMMON | frozenset(("mfrt", "mtrt"))
_RAISING_COMMON = frozenset(
    ("cvtfi", "div", "rem", "fdiv", "lw", "lb", "lf", "sw", "sb", "sf",
     "trap")
)
#: Everything the per-machine emitters can compile (control flow and
#: ``halt`` are handled by the growers, not here).
_EMIT_BASE = _NONRAISING_BASE | _RAISING_COMMON
_EMIT_BR = (
    _NONRAISING_COMMON
    | _RAISING_COMMON
    | frozenset(("bta", "btalo", "bmov", "bld", "bst", "cmpset", "fcmpset"))
)


def _warmup_budget():
    """Warm-up instruction budget; the environment variable wins so the
    property tests can force early compilation on tiny programs."""
    raw = os.environ.get("REPRO_TRACE_WARMUP")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return WARMUP_INSTRUCTIONS


class _Abort(Exception):
    """This anchor cannot be (profitably) compiled; skip it."""


# -- artifact-cache memoization ----------------------------------------------

#: Per-process cache instances keyed by root directory (same idiom as
#: the suite runner's worker caches).
_CACHES = {}

#: In-process memo of selected trace sources keyed by
#: ``(image hash, machine)``: ``{anchor: (source, pcs)}``.  A repeat run
#: of the same image (golden re-checks, engine crosschecks, benchmark
#: repetitions) installs its traces at instruction zero -- no profiled
#: warm-up, no re-selection, no re-render -- and CPython's compiled code
#: objects are reused outright via :data:`_CODE_MEMO`.
_TRACE_MEMO = {}
_TRACE_MEMO_MAX = 64

#: Memoized mega-function per image: ``(ihash, machine) -> (source,
#: ((anchor, len), ...), all_pcs)``.  Validated against the trace
#: memo's (anchor, len) sequence so a repeat run skips re-rendering the
#: combined dispatcher and goes straight to the cached code object.
_MEGA_MEMO = {}

#: Persisted re-profile back-off per image: ``(ihash, machine) ->
#: rethreshold``.  Each failed re-profile round doubles the off-trace
#: count required to try again; without persistence every repeat run
#: would reset the back-off and re-pay the profiled windows (slow,
#: plain dispatch) that the previous run already proved fruitless.
_RETRACE_MEMO = {}

#: Compiled code objects keyed by trace key; exec'ing a cached code
#: object into a fresh namespace is ~100x cheaper than compile().
_CODE_MEMO = {}
_CODE_MEMO_MAX = 512


def _trace_cache():
    """The shared on-disk artifact cache, or None when caching is
    disabled (``REPRO_CACHE_DIR=""``) or the root is unusable."""
    from repro.harness.parallel import ArtifactCache, resolve_cache_dir

    root = resolve_cache_dir(None)
    if not root:
        return None
    cache = _CACHES.get(root)
    if cache is None:
        try:
            cache = ArtifactCache(root)
        except OSError:
            return None
        _CACHES[root] = cache
    return cache


def _image_hash(image, machine):
    """Content address of the instruction stream (memoized per image)."""
    cached = getattr(image, "_tracecore_hash", None)
    if cached is not None:
        return cached
    from repro.rtl.printer import minstr_text

    parts = [machine, "0x%x" % getattr(image, "entry", 0)]
    for ins in image.instrs:
        parts.append(minstr_text(ins))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    try:
        image._tracecore_hash = digest
    except Exception:
        pass
    return digest


def _trace_key(ihash, pcs):
    """Cache key for one compiled trace: image hash, the exact trace PC
    sequence, the codegen format, and the package version."""
    from repro import __version__

    payload = repr((ihash, tuple(pcs), TRACE_FORMAT, __version__))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- trace codegen ------------------------------------------------------------


class _Trace:
    """Builder for one compiled trace's Python source.

    The generated function has the signature ``_trace(ic, fuel)`` and
    returns ``None`` (not entered: over budget) or ``(pc, ic, stop)``.
    Registers named in the trace are loaded into locals up front and
    written back on every exit path; per-slot execution cells are
    credited from full-iteration (``_nf``) and side-exit (``_e<j>``)
    counters so :func:`repro.emu.fastcore._flush` reconstructs RunStats
    bit-identically.  An exception inside the ``try`` body performs the
    reference loop's post-mortem itself (state written back, the
    faulting instruction not retired, ``emu.pc``/``npc``/``icount``
    stamped) and sets the shared ``F`` flag so the runner knows not to
    re-stamp.
    """

    def __init__(self, machine, anchor, ctx):
        self.machine = machine
        self.anchor = anchor
        self.ctx = ctx
        self.spec = ctx.spec
        self.body = []
        self.exits = []  # retired-instruction count per side exit
        self.pcs = []
        self.seen = set()
        self.ints = set()
        self.flts = set()
        self.bregs = set()
        self.cregs = set()
        self.use_cc = False
        self.use_rt = False
        self.use_hp = False
        self.use_hc = False
        self.use_hj = False
        self.closed = False
        self.rastack = []
        # Straight-line constant tracking for branch-register locals:
        # maps a local name to an int (b-local holding a static target),
        # ("stamp", P) (s/q-local holding ``ic + P`` from this
        # iteration), or ("const", v).  The trace body is one linear
        # iteration, so a value recorded here is exact wherever it is
        # consumed later in the same walk; anything written
        # conditionally or from outside the walk stays absent.
        self.known = {}
        # Constant-keyed histogram bumps deferred to ``_fold``: a list
        # of ``(P, container, key_literal)`` where the container name is
        # an ns global (HP/HC/HJ/TK).  A bump recorded here executes
        # exactly when position ``P`` retires, so ``_fold`` credits it
        # with the same per-position count the cell credit uses and the
        # exception stub credits the partial iteration from ``_HL`` --
        # bit-identical to inline updates at every sync point, without
        # a Counter hash per branch per iteration.
        self.hist = []

    # -- emission helpers --------------------------------------------------

    def w(self, line, depth=0):
        self.body.append("    " * depth + line)

    def note(self, addr):
        """Claim the next trace position for ``addr``; returns it."""
        p = len(self.pcs)
        self.pcs.append(addr)
        self.seen.add(addr)
        return p

    def exit_block(self, retired, pc_expr, depth, stop=False):
        """Emit a side exit retiring ``retired`` instructions of the
        current iteration and continuing at ``pc_expr``.  The exit count
        goes straight into the persistent ``_EX`` accumulator (exits run
        at most once per invocation), deferring the per-slot cell credit
        to ``_fold``."""
        j = len(self.exits)
        self.exits.append(retired)
        self.w("_EX[%d] += 1" % j, depth)
        self.w("ic += %d" % retired, depth)
        self.w("_pc = %s" % pc_expr, depth)
        if stop:
            self.w("_stop = 1", depth)
        self.w("break", depth)

    # -- operand -> expression --------------------------------------------

    def ival(self, x):
        if type(x) is Reg:
            i = x.index
            if x.kind == "r":
                if not 0 <= i < self.spec.ints.count:
                    raise _Abort("int register out of range")
                self.ints.add(i)
                return "r%d" % i
            if x.kind == "f":
                if not 0 <= i < self.spec.flts.count:
                    raise _Abort("float register out of range")
                self.flts.add(i)
                return "f%d" % i
            raise _Abort("branch register in data context")
        if type(x) is Imm:
            return repr(x.value)
        raise _Abort("operand %r" % (x,))

    def ireg(self, x):
        if (
            type(x) is not Reg
            or x.kind != "r"
            or not 0 <= x.index < self.spec.ints.count
        ):
            raise _Abort("int destination %r" % (x,))
        self.ints.add(x.index)
        return "r%d" % x.index

    def fidx(self, x):
        """Float-file operand addressed by raw index, exactly like the
        reference's ``self.f[x.index]`` (kind is not consulted)."""
        if type(x) is not Reg or not 0 <= x.index < self.spec.flts.count:
            raise _Abort("float operand %r" % (x,))
        self.flts.add(x.index)
        return "f%d" % x.index

    def breg(self, i):
        if not isinstance(i, int) or not 0 <= i < self.spec.branch_regs:
            raise _Abort("branch register %r" % (i,))
        self.bregs.add(i)
        return "b%d" % i, "s%d" % i

    def mem_parts(self, base_x, off_x):
        """(base expression or static int, offset) for load/store
        addressing; mirrors fastcore's ``_mem_addr_parts``."""
        if type(off_x) is not Imm:
            raise _Abort("memory offset %r" % (off_x,))
        if type(base_x) is Imm:
            return base_x.value, off_x.value
        return self.ival(base_x), off_x.value

    # -- per-op emitters ---------------------------------------------------

    def emit_simple(self, ins, addr, P):
        """Emit one non-control instruction at trace position ``P``.

        Each body transcribes the corresponding fastcore closure with
        operands burned into source text; raising ops record their
        position in ``_ix`` first so the exception handler stamps the
        exact faulting pc/icount.
        """
        op = ins.op
        w = self.w
        if op == "noop":
            return
        if op == "li":
            x = ins.xsrcs[0]
            if type(x) is not Imm:
                raise _Abort("li source %r" % (x,))
            w("%s = %r" % (self.ireg(ins.dst), x.value))
        elif op == "sethi":
            x = ins.xsrcs[0]
            if type(x) is not Imm:
                raise _Abort("sethi source %r" % (x,))
            lo = self.spec.imm_bits - 1
            const = to_signed((x.value & _MASK) & ~((1 << lo) - 1))
            w("%s = %r" % (self.ireg(ins.dst), const))
        elif op == "addlo":
            x1 = ins.xsrcs[1]
            if type(x1) is not Imm:
                raise _Abort("addlo low part %r" % (x1,))
            lo = self.spec.imm_bits - 1
            low = (x1.value & _MASK) & ((1 << lo) - 1)
            w("%s = (((%s + %d) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]), low, _M, _S, _S))
        elif op == "mov":
            w("%s = %s" % (self.ireg(ins.dst), self.ival(ins.xsrcs[0])))
        elif op == "fmov":
            w("%s = %s" % (self.fidx(ins.dst), self.ival(ins.xsrcs[0])))
        elif op == "neg":
            w("%s = (((-%s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]), _M, _S, _S))
        elif op == "not":
            w("%s = (((~%s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]), _M, _S, _S))
        elif op == "fneg":
            w("%s = -%s" % (self.fidx(ins.dst), self.fidx(ins.xsrcs[0])))
        elif op == "cvtif":
            w("%s = float(%s)" % (self.fidx(ins.dst), self.ival(ins.xsrcs[0])))
        elif op == "cvtfi":
            w("_ix = %d" % P)
            w("%s = ((int(%s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.fidx(ins.xsrcs[0]), _M, _S, _S))
        elif op in ("add", "sub"):
            sign = "+" if op == "add" else "-"
            w("%s = (((%s %s %s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]), sign,
                 self.ival(ins.xsrcs[1]), _M, _S, _S))
        elif op == "mul":
            w("%s = (((%s * %s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]),
                 self.ival(ins.xsrcs[1]), _M, _S, _S))
        elif op in ("div", "rem"):
            fn = "cdiv" if op == "div" else "crem"
            w("_ix = %d" % P)
            w("%s = %s(%s, %s)"
              % (self.ireg(ins.dst), fn, self.ival(ins.xsrcs[0]),
                 self.ival(ins.xsrcs[1])))
        elif op in ("and", "or", "xor"):
            sign = {"and": "&", "or": "|", "xor": "^"}[op]
            w("%s = (((%s %s %s) ^ %s) - %s)"
              % (self.ireg(ins.dst), self.mval(ins.xsrcs[0]), sign,
                 self.mval(ins.xsrcs[1]), _S, _S))
        elif op in ("shl", "shr"):
            sign = "<<" if op == "shl" else ">>"
            x1 = ins.xsrcs[1]
            if type(x1) is Imm:
                amt = "%d" % (x1.value & 31)
            else:
                amt = "(%s & 31)" % self.ival(x1)
            w("%s = (((%s %s %s) & %s) ^ %s) - %s"
              % (self.ireg(ins.dst), self.ival(ins.xsrcs[0]), sign, amt,
                 _M, _S, _S))
        elif op in ("fadd", "fsub", "fmul"):
            sign = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            w("%s = %s %s %s"
              % (self.fidx(ins.dst), self.fidx(ins.xsrcs[0]), sign,
                 self.fidx(ins.xsrcs[1])))
        elif op == "fdiv":
            a = self.fidx(ins.xsrcs[0])
            b = self.fidx(ins.xsrcs[1])
            w("_ix = %d" % P)
            w("if %s == 0.0:" % b)
            w("raise EE('float division by zero')", 1)
            w("%s = %s / %s" % (self.fidx(ins.dst), a, b))
        elif op in ("lw", "lb", "lf"):
            self._emit_load(ins, P)
        elif op in ("sw", "sb", "sf"):
            self._emit_store(ins, P)
        elif op == "trap":
            r_arg, _s = "r%d" % self.spec.ints.args[0], None
            self.ints.add(self.spec.ints.args[0])
            self.ints.add(self.spec.ints.ret)
            w("_ix = %d" % P)
            w("r%d = TRAP(%r, %s)" % (self.spec.ints.ret, ins.callee, r_arg))
            w("if RT.exit_code is not None:")
            self.exit_block(P + 1, "%d" % (addr + 4), 1, stop=True)
        elif op == "cmp" or op == "fcmp":
            self.use_cc = True
            w("cA = %s" % self.ival(ins.xsrcs[0]))
            w("cB = %s" % self.ival(ins.xsrcs[1]))
        elif op == "mfrt":
            self.use_rt = True
            w("%s = rtv" % self.ireg(ins.dst))
        elif op == "mtrt":
            self.use_rt = True
            w("rtv = %s" % self.ival(ins.xsrcs[0]))
        elif op == "bta":
            t = ins.t_addr
            if not isinstance(t, int):
                raise _Abort("bta target %r" % (t,))
            bn, sn = self.breg(ins.dst.index)
            w("%s = %d" % (bn, t))
            w("%s = ic + %d" % (sn, P))
            self.known[bn] = t
            self.known[sn] = ("stamp", P)
        elif op == "btalo":
            lo = self.spec.imm_bits - 1
            mask = (1 << lo) - 1
            if ins.t_addr is not None:
                low = ins.t_addr & mask
            else:
                x1 = ins.xsrcs[1]
                if type(x1) is not Imm:
                    raise _Abort("btalo low part %r" % (x1,))
                low = x1.value & mask
            bn, sn = self.breg(ins.dst.index)
            x0 = ins.xsrcs[0]
            if type(x0) is Imm:
                val = ((((x0.value + low) & _MASK) ^ _SIGN) - _SIGN)
                w("%s = %d" % (bn, val))
                self.known[bn] = val
            else:
                w("%s = (((%s + %d) & %s) ^ %s) - %s"
                  % (bn, self.ival(x0), low, _M, _S, _S))
                self.known.pop(bn, None)
            w("%s = ic + %d" % (sn, P))
            self.known[sn] = ("stamp", P)
        elif op == "bmov":
            bn, sn = self.breg(ins.dst.index)
            src = ins.srcs[0] if ins.srcs else None
            if type(src) is not Reg:
                raise _Abort("bmov source %r" % (src,))
            b2, s2 = self.breg(src.index)
            w("%s = %s" % (bn, b2))
            w("%s = %s" % (sn, s2))
            for dst_l, src_l in ((bn, b2), (sn, s2)):
                if src_l in self.known:
                    self.known[dst_l] = self.known[src_l]
                else:
                    self.known.pop(dst_l, None)
        elif op == "bld":
            base, off = self.mem_parts(ins.xsrcs[0], ins.xsrcs[1])
            bn, sn = self.breg(ins.dst.index)
            w("_ix = %d" % P)
            if isinstance(base, int):
                w("%s = LW(%d)" % (bn, base + off))
            else:
                w("%s = LW(%s + %d)" % (bn, base, off))
            w("%s = ic + %d" % (sn, P))
            # LW returns an int from memory -- never the SEQ sentinel
            # object -- so a loaded branch register is always "taken".
            self.known[bn] = ("int",)
            self.known[sn] = ("stamp", P)
        elif op == "bst":
            base, off = self.mem_parts(ins.xsrcs[1], ins.xsrcs[2])
            src = ins.srcs[0] if ins.srcs else None
            if type(src) is not Reg:
                raise _Abort("bst source %r" % (src,))
            bn, _sn = self.breg(src.index)
            w("_ix = %d" % P)
            if isinstance(base, int):
                w("SW(%d, %s)" % (base + off, bn))
            else:
                w("SW(%s + %d, %s)" % (base, off, bn))
        elif op in ("cmpset", "fcmpset"):
            cond = _COND_OPS.get(ins.cond)
            if cond is None:
                raise _Abort("condition %r" % (ins.cond,))
            if type(ins.dst) is not Reg or not isinstance(ins.btrue, int):
                raise _Abort("cmpset shape")
            bn, sn = self.breg(ins.dst.index)
            bt, st = self.breg(ins.btrue)
            self.cregs.add(ins.dst.index)
            w("if %s %s %s:"
              % (self.ival(ins.xsrcs[0]), cond, self.ival(ins.xsrcs[1])))
            w("%s = %s" % (bn, bt), 1)
            w("%s = %s" % (sn, st), 1)
            w("else:")
            w("%s = SEQ" % bn, 1)
            w("%s = %r" % (sn, self.ctx.READY), 1)
            w("q%d = ic + %d" % (ins.dst.index, P))
            self.known.pop(bn, None)  # condition-dependent
            self.known.pop(sn, None)
            self.known["q%d" % ins.dst.index] = ("stamp", P)
        else:
            raise _Abort("op %r" % (op,))

    def mval(self, x):
        """Operand expression pre-masked to 32 bits (for bitwise ops)."""
        if type(x) is Imm:
            return repr(x.value & _MASK)
        return "(%s & %s)" % (self.ival(x), _M)

    def _emit_load(self, ins, P):
        op = ins.op
        base, off = self.mem_parts(ins.xsrcs[0], ins.xsrcs[1])
        size = self.ctx.memory.size
        w = self.w
        w("_ix = %d" % P)
        if op == "lf":
            dst = self.fidx(ins.dst)
            if isinstance(base, int):
                w("%s = LF(%d)" % (dst, base + off))
            else:
                w("%s = LF(%s + %d)" % (dst, base, off))
            return
        dst = self.ireg(ins.dst)
        fn = "LW" if op == "lw" else "LB"
        if isinstance(base, int):
            # Static address (resolved symbol): the guarded method call
            # raises the reference's exact MemoryFault when bad.
            w("%s = %s(%d)" % (dst, fn, base + off))
            return
        w("_at = %s + %d" % (base, off))
        if op == "lw":
            w("if _at & 3 or _at < 0 or _at + 4 > %d:" % size)
            w("LW(_at)", 1)
            w("%s = (int.from_bytes(D[_at:_at + 4], 'little') ^ %s) - %s"
              % (dst, _S, _S))
        else:
            w("if _at < 0 or _at >= %d:" % size)
            w("LB(_at)", 1)
            w("%s = D[_at]" % dst)

    def _emit_store(self, ins, P):
        op = ins.op
        base, off = self.mem_parts(ins.xsrcs[1], ins.xsrcs[2])
        size = self.ctx.memory.size
        val_x = ins.xsrcs[0]
        w = self.w
        w("_ix = %d" % P)
        if op == "sf":
            val = self.ival(val_x)
            if isinstance(base, int):
                w("SF(%d, %s)" % (base + off, val))
            else:
                w("SF(%s + %d, %s)" % (base, off, val))
            return
        fn = "SW" if op == "sw" else "SB"
        val = self.ival(val_x)
        if isinstance(base, int):
            w("%s(%d, %s)" % (fn, base + off, val))
            return
        w("_at = %s + %d" % (base, off))
        if op == "sw":
            w("if _at & 3 or _at < 0 or _at + 4 > %d:" % size)
            w("SW(_at, %s)" % val, 1)
            if type(val_x) is Imm:
                w("D[_at:_at + 4] = %r"
                  % ((val_x.value & _MASK).to_bytes(4, "little"),))
            else:
                w("D[_at:_at + 4] = ((%s) & %s).to_bytes(4, 'little')"
                  % (val, _M))
        else:
            w("if _at < 0 or _at >= %d:" % size)
            w("SB(_at, %s)" % val, 1)
            w("D[_at] = %s & 255" % val)

    # -- rendering ---------------------------------------------------------

    def _written_locals(self):
        """Register-shaped locals the body ever assigns.  Locals only
        ever *read* keep their load-time value, so writing them back
        would store what the file already holds -- skip them."""
        written = set()
        for line in self.body:
            m = _ASSIGN.match(line)
            if m:
                written.add(m.group(1))
        return written

    def _writeback_lines(self):
        wr = self._written_locals()
        out = []
        for i in sorted(self.ints):
            if "r%d" % i in wr:
                out.append("r[%d] = r%d" % (i, i))
        for i in sorted(self.flts):
            if "f%d" % i in wr:
                out.append("f[%d] = f%d" % (i, i))
        if self.use_cc and "cA" in wr:
            out.append("cc[0] = cA")
            out.append("cc[1] = cB")
        if self.use_rt and "rtv" in wr:
            out.append("rt[0] = rtv")
        for i in sorted(self.bregs):
            if "b%d" % i in wr:
                out.append("b[%d] = b%d" % (i, i))
            if "s%d" % i in wr:
                out.append("bs[%d] = s%d" % (i, i))
        for i in sorted(self.cregs):
            if "q%d" % i in wr:
                out.append("cs[%d] = q%d" % (i, i))
        out.append("TK[0] += _tk")
        out.append("_NF[0] += _nf")
        return out

    def render(self):
        # Per-trace persistent accumulators: full-iteration and
        # side-exit counts pile up here across invocations, and _fold
        # credits them into the shared per-slot execution cells.  The
        # runner folds every trace before any _flush, so the cells are
        # exact at every sync point without the trace paying an
        # O(trace length) writeback on every enter.
        lines = ["_NF = [0]", "_EX = [0] * %d" % len(self.exits)]
        a = lines.append
        hist_at = {}
        for p, cname, key in self.hist:
            hist_at.setdefault(p, []).append((cname, key))
        if self.hist:
            a("_HL = (%s,)" % ", ".join(
                _hl_literal(hist_at.get(i)) for i in range(len(self.pcs))
            ))
        a("def _fold():")
        a("    _acc = _NF[0]")
        a("    _NF[0] = 0")
        by_retired = {}
        for j, retired in enumerate(self.exits):
            by_retired.setdefault(retired, []).append(j)
        for i in range(len(self.pcs) - 1, -1, -1):
            for j in by_retired.get(i + 1, ()):
                a("    _acc += _EX[%d]" % j)
                a("    _EX[%d] = 0" % j)
            a("    _CL[%d][0] += _acc" % i)
            hs = hist_at.get(i)
            if hs:
                # A Counter bump of 0 would materialize a zero entry
                # the reference's inline updates never create.
                a("    if _acc:")
                for cname, key in hs:
                    a("        %s[%s] += _acc" % (cname, key))
        a("def _trace(ic, fuel):")
        a("    if ic > fuel:")
        a("        return None")
        for i in sorted(self.ints):
            a("    r%d = r[%d]" % (i, i))
        for i in sorted(self.flts):
            a("    f%d = f[%d]" % (i, i))
        if self.use_cc:
            a("    cA = cc[0]")
            a("    cB = cc[1]")
        if self.use_rt:
            a("    rtv = rt[0]")
        for i in sorted(self.bregs):
            a("    b%d = b[%d]" % (i, i))
            a("    s%d = bs[%d]" % (i, i))
        for i in sorted(self.cregs):
            a("    q%d = cs[%d]" % (i, i))
        # Histogram Counters are updated in place (``__missing__``
        # yields 0), so partial iterations need no merge-or-discard
        # bookkeeping in the exception stub -- exactly like fastcore's
        # per-instruction closures.
        if self.use_hp:
            a("    _hp = HP")
        if self.use_hc:
            a("    _hc = HC")
        if self.use_hj:
            a("    _hj = HJ")
        a("    _tk = 0")
        a("    _nf = 0")
        a("    _ix = 0")
        a("    _stop = 0")
        a("    _pc = %d" % self.anchor)
        a("    try:")
        a("        while True:")
        for line in self.body:
            a("            " + line)
        if self.closed:
            a("            ic += %d" % len(self.pcs))
            a("            _nf += 1")
            a("            if ic > fuel:")
            a("                break")
        wb = self._writeback_lines()
        a("    except BaseException:")
        for line in wb:
            a("        " + line)
        a("        for _k in range(_ix):")
        a("            _CL[_k][0] += 1")
        if self.hist:
            a("            for _c, _y in _HL[_k]:")
            a("                _c[_y] += 1")
        a("        emu.pc = _PCS[_ix]")
        if self.machine == "baseline":
            a("        emu.npc = _PCS[_ix] + 4")
        a("        emu.icount = ic + _ix")
        a("        F[0] = 1")
        a("        raise")
        for line in wb:
            a("    " + line)
        a("    return (_pc, ic, _stop)")
        return "\n".join(lines) + "\n"


# -- trace growing ------------------------------------------------------------


def _require_super(tr):
    if len(tr.pcs) < MIN_SUPERBLOCK_LEN:
        raise _Abort("superblock too short")


def _static_exit(tr, addr):
    """End the trace just before ``addr`` (which is not executed)."""
    tr.exit_block(len(tr.pcs), "%d" % addr, 0)
    _require_super(tr)


def _best_target(targets, n):
    """The hottest recorded target that is a plausible text address."""
    best = None
    best_n = -1
    for dst, cnt in targets.items():
        if cnt > best_n and (dst - TEXT_BASE) % 4 == 0:
            if 0 <= (dst - TEXT_BASE) >> 2 < n:
                best, best_n = dst, cnt
    return best


def _grow_baseline(tr, instrs, counts, by_src):
    """Grow a baseline-machine trace from its anchor.

    Control ops always bring their delay slot along (two consecutive
    trace positions), and the slot must be provably non-raising -- which
    preserves ``npc == pc + 4`` at every possible fault site, so the
    exception stub's ``npc`` stamp is exact.  Conditionals follow the
    warm-up-biased direction and side-exit the other way; ``call``/
    ``retrt`` pairs are matched on a grow-time return-address stack.
    """
    n = len(instrs)
    addr = tr.anchor
    while True:
        if tr.pcs and addr == tr.anchor:
            tr.closed = True
            if len(tr.pcs) < MIN_LOOP_LEN:
                raise _Abort("loop too short")
            return
        if len(tr.pcs) >= MAX_TRACE_LEN or addr in tr.seen:
            _static_exit(tr, addr)
            return
        i = (addr - TEXT_BASE) >> 2
        if not 0 <= i < n or (addr - TEXT_BASE) % 4:
            raise _Abort("trace left the text segment")
        ins = instrs[i]
        op = ins.op
        if op in BASELINE_CONTROL:
            addr = _grow_base_control(tr, instrs, ins, addr, i, counts, by_src)
            if addr is None:
                return
            continue
        if op == "halt":
            P = tr.note(addr)
            tr.exit_block(P + 1, "%d" % (addr + 4), 0, stop=True)
            _require_super(tr)
            return
        if op not in _EMIT_BASE:
            _static_exit(tr, addr)
            return
        P = tr.note(addr)
        tr.emit_simple(ins, addr, P)
        addr += 4


def _grow_base_control(tr, instrs, ins, addr, i, counts, by_src):
    """Emit one baseline control op plus its delay slot; returns the
    next trace address, or None when the trace ended here."""
    n = len(instrs)
    op = ins.op
    w = tr.w
    if i + 1 >= n:
        raise _Abort("control op at image end")
    slot = instrs[i + 1]
    if slot.op not in _NONRAISING_BASE:
        _static_exit(tr, addr)
        return None

    def emit_slot():
        sp = tr.note(addr + 4)
        tr.emit_simple(slot, addr + 4, sp)

    if op in ("bcc", "fbcc"):
        cond = _COND_OPS.get(ins.cond)
        t = ins.t_addr
        if cond is None or not isinstance(t, int):
            raise _Abort("branch shape %r" % (op,))
        P = tr.note(addr)
        tr.use_cc = True
        w("_t = cA %s cB" % cond)
        w("if _t:")
        w("_tk += 1", 1)
        emit_slot()
        executed = counts.get(addr, 0)
        taken = by_src.get(addr, {}).get(t, 0)
        if taken and 2 * taken >= executed:
            w("if not _t:")
            tr.exit_block(P + 2, "%d" % (addr + 8), 1)
            return t
        w("if _t:")
        tr.exit_block(P + 2, "%d" % t, 1)
        return addr + 8
    if op == "jmp":
        t = ins.t_addr
        if not isinstance(t, int):
            raise _Abort("jump target %r" % (t,))
        tr.note(addr)
        emit_slot()
        return t
    if op == "call":
        t = ins.t_addr
        if not isinstance(t, int):
            raise _Abort("call target %r" % (t,))
        tr.note(addr)
        tr.use_rt = True
        w("rtv = %d" % (addr + 8))
        emit_slot()
        tr.rastack.append(addr + 8)
        return t
    if op == "retrt":
        P = tr.note(addr)
        tr.use_rt = True
        # Read the return target at the branch's own execution time:
        # the delay slot may legally overwrite rt afterwards.
        w("_j = rtv")
        emit_slot()
        if tr.rastack:
            ra = tr.rastack.pop()
            w("if _j != %d:" % ra)
            tr.exit_block(P + 2, "_j", 1)
            return ra
        tr.exit_block(P + 2, "_j", 0)
        _require_super(tr)
        return None
    if op == "ijmp":
        src = tr.ival(ins.xsrcs[0])
        P = tr.note(addr)
        w("_j = %s" % src)
        emit_slot()
        best = _best_target(by_src.get(addr, {}), n)
        if best is not None:
            w("if _j != %d:" % best)
            tr.exit_block(P + 2, "_j", 1)
            return best
        tr.exit_block(P + 2, "_j", 0)
        _require_super(tr)
        return None
    raise _Abort("control op %r" % (op,))


def _grow_branchreg(tr, instrs, counts, by_src):
    """Branch-register twin of :func:`_grow_baseline`: any instruction
    may carry a transfer (``br != 0``), whose epilogue -- gap
    histograms, link-register clobber, target selection -- is
    transcribed from fastcore's ``_with_transfer`` onto trace locals."""
    n = len(instrs)
    ctx = tr.ctx
    addr = tr.anchor
    while True:
        if tr.pcs and addr == tr.anchor:
            tr.closed = True
            if len(tr.pcs) < MIN_LOOP_LEN:
                raise _Abort("loop too short")
            return
        if len(tr.pcs) >= MAX_TRACE_LEN or addr in tr.seen:
            _static_exit(tr, addr)
            return
        i = (addr - TEXT_BASE) >> 2
        if not 0 <= i < n or (addr - TEXT_BASE) % 4:
            raise _Abort("trace left the text segment")
        ins = instrs[i]
        op = ins.op
        if op == "halt" and not ins.br:
            P = tr.note(addr)
            tr.exit_block(P + 1, "%d" % (addr + 4), 0, stop=True)
            _require_super(tr)
            return
        if op not in _EMIT_BR:
            _static_exit(tr, addr)
            return
        if not ins.br:
            P = tr.note(addr)
            tr.emit_simple(ins, addr, P)
            addr += 4
            continue
        # Transfer carrier: effect first, then the epilogue.
        br = ins.br
        if op in ("trap", "halt"):
            raise _Abort("halting op with a transfer")
        if not isinstance(br, int) or not 0 < br < ctx.spec.branch_regs:
            raise _Abort("branch-register field %r" % (br,))
        P = tr.note(addr)
        tr.emit_simple(ins, addr, P)
        w = tr.w
        bn, sn = tr.breg(br)
        bl, sl = tr.breg(ctx.link)
        seq = addr + 4
        CAP = ctx.GAP_CAP
        READY = ctx.READY
        # A b-local holding a statically-known target (bta/btalo with an
        # immediate, earlier in this same walk) can never be SEQ, and a
        # stamp local written at a known position makes the gap a
        # compile-time constant -- the SEQ tests, gap subtract/clamp
        # chains, and the not-taken/wrong-target side exits all fold
        # away, leaving bare constant-keyed histogram bumps.
        t0k = tr.known.get(bn)
        i_t = (t0k - TEXT_BASE) >> 2 if isinstance(t0k, int) else -1
        static_taken = (
            isinstance(t0k, int)
            and 0 <= i_t < n
            and (t0k - TEXT_BASE) % 4 == 0
        )
        # An int (bta/btalo constant) or a bld-loaded word is never the
        # SEQ sentinel: the transfer is always taken, so every ``is
        # SEQ`` test and the not-taken side exit are dead code.
        never_seq = isinstance(t0k, int) or t0k == ("int",)
        snk = tr.known.get(sn)
        if not static_taken:
            w("_t0 = %s" % bn)
        if getattr(ins, "tkind", "jump") == "cond":
            tr.cregs.add(br)
            qk = tr.known.get("q%d" % br)
            gc_const = min(P - qk[1], CAP) if qk is not None else None
            gp_const = None
            if never_seq and snk is not None and snk[0] == "stamp":
                gp_const = min(P - snk[1], CAP)
            if gc_const is not None:
                tr.hist.append((P, "HC", "%d" % gc_const))
                gc_x = "%d" % gc_const
            else:
                tr.use_hc = True
                w("_gc = ic + %d - q%d" % (P, br))
                w("if _gc > %d:" % CAP)
                w("_gc = %d" % CAP, 1)
                w("_hc[_gc] += 1")
                gc_x = "_gc"
            if gp_const is not None:
                gp_x = "%d" % gp_const
            elif never_seq:
                w("if %s == %d:" % (sn, READY))
                w("_gp = %d" % READY, 1)
                w("else:")
                w("_gp = ic + %d - %s" % (P, sn), 1)
                w("if _gp > %d:" % CAP, 1)
                w("_gp = %d" % CAP, 2)
                gp_x = "_gp"
            else:
                w("if _t0 is SEQ or %s == %d:" % (sn, READY))
                w("_gp = %d" % READY, 1)
                w("else:")
                w("_gp = ic + %d - %s" % (P, sn), 1)
                w("if _gp > %d:" % CAP, 1)
                w("_gp = %d" % CAP, 2)
                gp_x = "_gp"
            if gp_const is not None and gc_const is not None:
                tr.hist.append(
                    (P, "HJ", "(%d, %d)" % (gp_const, gc_const))
                )
            else:
                tr.use_hj = True
                w("_hj[(%s, %s)] += 1" % (gp_x, gc_x))
            if never_seq:
                tr.hist.append((P, "TK", "0"))
            else:
                w("if _t0 is not SEQ:")
                w("_tk += 1", 1)
            if gp_const is not None:
                tr.hist.append((P, "HP", "%d" % gp_const))
            else:
                tr.use_hp = True
                w("_hp[%s] += 1" % gp_x)
        else:
            if never_seq and snk is not None and snk[0] == "stamp":
                tr.hist.append((P, "HP", "%d" % min(P - snk[1], CAP)))
            elif never_seq:
                tr.use_hp = True
                w("if %s == %d:" % (sn, READY))
                w("_hp[%d] += 1" % READY, 1)
                w("else:")
                w("_gp = ic + %d - %s" % (P, sn), 1)
                w("if _gp >= %d:" % CAP, 1)
                w("_gp = %d" % CAP, 2)
                w("_hp[_gp] += 1", 1)
            else:
                tr.use_hp = True
                w("if _t0 is SEQ or %s == %d:" % (sn, READY))
                w("_hp[%d] += 1" % READY, 1)
                w("else:")
                w("_gp = ic + %d - %s" % (P, sn), 1)
                w("if _gp >= %d:" % CAP, 1)
                w("_gp = %d" % CAP, 2)
                w("_hp[_gp] += 1", 1)
        w("%s = %d" % (bl, seq))
        w("%s = ic + %d" % (sl, P))
        tr.known[bl] = seq
        tr.known[sl] = ("stamp", P)
        if static_taken:
            # The transfer is unconditional with a known in-text target:
            # no fall-through exit, no wrong-target exit -- the trace
            # simply continues there (closing the loop if it is the
            # anchor).
            addr = t0k
            continue
        executed = counts.get(addr, 0)
        targets = by_src.get(addr, {})
        taken_total = sum(targets.values())
        if (not targets or 2 * taken_total < executed) and not never_seq:
            # Mostly falls through: side-exit on any taken transfer.
            w("if _t0 is not SEQ:")
            tr.exit_block(P + 1, "_t0", 1)
            addr = seq
            continue
        best = _best_target(targets, n) if targets else None
        if best is not None:
            if not never_seq:
                w("if _t0 is SEQ:")
                tr.exit_block(P + 1, "%d" % seq, 1)
            w("if _t0 != %d:" % best)
            tr.exit_block(P + 1, "_t0", 1)
            addr = best
            continue
        # No usable static target (or an always-taken transfer the
        # profile never saw): end the trace dynamically.
        if never_seq:
            w("_pc = _t0")
        else:
            w("if _t0 is SEQ:")
            w("_pc = %d" % seq, 1)
            w("else:")
            w("_pc = _t0", 1)
        j = len(tr.exits)
        tr.exits.append(P + 1)
        w("_EX[%d] += 1" % j)
        w("ic += %d" % (P + 1))
        w("break")
        _require_super(tr)
        return


# -- trace selection and compilation ------------------------------------------


def _select_anchors(emu, machine, state, cur_pc, exclude=frozenset(),
                    allow_covered=False):
    """(anchors, counts, by_src) from the accumulated edge profile.

    Anchor candidates are hot transfer targets: back-edge targets (loop
    heads) but also hot forward targets -- else-blocks and callees
    inside hot loops -- so a side exit from one trace can land directly
    on the anchor of another and chain without an off-trace gap.
    Candidates must be hot enough (:data:`HOT_EDGE_MIN`), aligned,
    inside the text segment, not already compiled (``exclude``), and --
    on the baseline machine -- not a delay slot (a trace entry assumes
    no transfer is in flight).
    """
    from repro.obs.profile import ExecutionProfiler

    prof = ExecutionProfiler()
    prof.raw_edges = state["edges"]
    prof.entry = state["entry"]
    prof.shadow = emu.TRANSFER_SHADOW
    prof.image = emu.image
    prof.machine = machine
    prof.seg_start = state["seg"]
    prof.final_end = cur_pc - 4
    counts = prof.pc_counts()
    by_src = {}
    heat = Counter()
    for (src, dst), cnt in prof.edges.items():
        by_src.setdefault(src, {})[dst] = cnt
        heat[dst] += cnt
    instrs = emu.image.instrs
    n = len(instrs)
    covered = state.setdefault("covered", set())
    anchors = []
    for dst, cnt in heat.items():
        if cnt < HOT_EDGE_MIN or dst in exclude:
            continue
        # Covered targets are normally redundant (a trace through that
        # pc exists), but traces cannot be entered mid-body: when a
        # re-profile round finds one hot *off-trace* -- a side exit
        # landing just past a sibling's anchor -- a duplicate tail
        # anchored there closes the gap and keeps execution in-trace.
        # The higher bar keeps marginal duplicates from churning the
        # trace set (every addition re-renders the image's dispatcher).
        if dst in covered and (
            not allow_covered or cnt < COVERED_EDGE_MIN
        ):
            continue
        off = dst - TEXT_BASE
        if off % 4 or not 0 <= off >> 2 < n:
            continue
        i = off >> 2
        if machine == "baseline" and i > 0 \
                and instrs[i - 1].op in BASELINE_CONTROL:
            continue  # delay slot: a transfer may be in flight on entry
        anchors.append((dst, cnt))
    anchors.sort(key=lambda it: (-it[1], it[0]))
    return anchors[:MAX_TRACES], counts, by_src


def _never_enter(ic, fuel):
    """Stand-in trace function for an anchor whose compile failed: the
    probe always misses and dispatch falls back to the fast core."""
    return None


def _no_fold():
    """Fold stand-in for entries with no deferred cell credits."""


def _lazy_entry(machine, traces, anchor, src_text, pcs, result, make_ns,
                stats, program):
    """A self-replacing trace-table entry: the first probe compiles the
    rendered source (or reuses the process-wide code object), installs
    the real ``(fn, len, fold)`` entry, and delegates to it.  Selected
    anchors that execution never reaches never pay compile()."""
    from repro.obs import METRICS, log

    npcs = len(pcs)

    def thunk(ic, fuel):
        try:
            code = _CODE_MEMO.get(src_text)
            if code is None:
                code = compile(src_text, "<trace@0x%x>" % anchor, "exec")
                if len(_CODE_MEMO) >= _CODE_MEMO_MAX:
                    _CODE_MEMO.clear()
                _CODE_MEMO[src_text] = code
            ns = make_ns(pcs)
            exec(code, ns)
        except Exception as exc:
            traces[anchor] = (_never_enter, npcs, _no_fold)
            METRICS.counter(
                "emulator.trace_compile", machine=machine, result="error"
            ).inc()
            log.warning(
                "trace compile failed at 0x%x in %s: %s",
                anchor, program, exc,
            )
            return None
        entry = (ns["_trace"], npcs, ns["_fold"])
        traces[anchor] = entry
        stats.traces_compiled += 1
        METRICS.counter(
            "emulator.trace_compile", machine=machine, result=result
        ).inc()
        return entry[0](ic, fuel)

    return (thunk, npcs, _no_fold)


_IX_LINE = re.compile(r"^(\s*)_ix = (\d+)$")


def _hl_literal(pairs):
    """One position's ``_HL`` entry: a tuple of (container, key) pairs
    the exception stub credits when a partial iteration retired past
    that position."""
    if not pairs:
        return "()"
    return "(%s,)" % ", ".join(
        "(%s, %s)" % (cname, key) for cname, key in pairs
    )


def _render_mega(machine, records):
    """Render one dispatcher function covering every compiled trace of
    an image.  A side exit whose target is another trace's anchor hops
    to that trace *inside the same Python frame*: the dispatch loop
    costs one int compare per hop, where separate per-trace functions
    pay a full register writeback, a runner round-trip, a probe, and a
    fresh prologue.  Sibling loops that ping-pong (caller loop <->
    callee body) are exactly the traces with short average stays, so
    this is where the per-enter overhead actually lives.

    Layout: trace k's slots occupy ``[base_k, base_k + len_k)`` of the
    shared ``_CL``/``_PCS`` arrays, its ``_ix`` constants are rebased to
    those global positions, and ``_rb`` tracks the current region's base
    so the exception stub can credit ``range(_rb, _ix)`` and stamp
    ``icount = ic + _ix - _rb`` -- bit-identical to the per-trace stubs.
    Per-region fuel checks use ``_L - len_k`` (``_L`` is the caller's
    limit or sample boundary), which is exactly the admission test the
    runner would apply before entering trace k on its own.
    """
    ints = set()
    flts = set()
    bregs = set()
    cregs = set()
    written = set()
    use = {"cc": False, "rt": False, "hp": False, "hc": False,
           "hj": False}
    bases = []
    base = 0
    for rec in records:
        bases.append(base)
        base += len(rec["pcs"])
        ints |= rec["ints"]
        flts |= rec["flts"]
        bregs |= rec["bregs"]
        cregs |= rec["cregs"]
        written |= rec["written"]
        for flag in use:
            use[flag] = use[flag] or rec["use_" + flag]
    wb = []
    for i in sorted(ints):
        if "r%d" % i in written:
            wb.append("r[%d] = r%d" % (i, i))
    for i in sorted(flts):
        if "f%d" % i in written:
            wb.append("f[%d] = f%d" % (i, i))
    if use["cc"] and "cA" in written:
        wb.append("cc[0] = cA")
        wb.append("cc[1] = cB")
    if use["rt"] and "rtv" in written:
        wb.append("rt[0] = rtv")
    for i in sorted(bregs):
        if "b%d" % i in written:
            wb.append("b[%d] = b%d" % (i, i))
        if "s%d" % i in written:
            wb.append("bs[%d] = s%d" % (i, i))
    for i in sorted(cregs):
        if "q%d" % i in written:
            wb.append("cs[%d] = q%d" % (i, i))
    wb.append("TK[0] += _tk")

    any_hist = any(rec["hist"] for rec in records)
    lines = []
    a = lines.append
    for k, rec in enumerate(records):
        a("_NF%d = [0]" % k)
        a("_EX%d = [0] * %d" % (k, len(rec["exits"])))
    if any_hist:
        cells = []
        for rec in records:
            hist_at = {}
            for p, cname, key in rec["hist"]:
                hist_at.setdefault(p, []).append((cname, key))
            cells.extend(
                _hl_literal(hist_at.get(i))
                for i in range(len(rec["pcs"]))
            )
        a("_HL = (%s,)" % ", ".join(cells))
    a("def _fold():")
    for k, rec in enumerate(records):
        a("    _acc = _NF%d[0]" % k)
        a("    _NF%d[0] = 0" % k)
        by_retired = {}
        for j, retired in enumerate(rec["exits"]):
            by_retired.setdefault(retired, []).append(j)
        hist_at = {}
        for p, cname, key in rec["hist"]:
            hist_at.setdefault(p, []).append((cname, key))
        for i in range(len(rec["pcs"]) - 1, -1, -1):
            for j in by_retired.get(i + 1, ()):
                a("    _acc += _EX%d[%d]" % (k, j))
                a("    _EX%d[%d] = 0" % (k, j))
            a("    _CL[%d][0] += _acc" % (bases[k] + i))
            hs = hist_at.get(i)
            if hs:
                # A Counter bump of 0 would materialize a zero entry
                # the reference's inline updates never create.
                a("    if _acc:")
                for cname, key in hs:
                    a("        %s[%s] += _acc" % (cname, key))
    a("def _mega(_pc, ic, _L):")
    for i in sorted(ints):
        a("    r%d = r[%d]" % (i, i))
    for i in sorted(flts):
        a("    f%d = f[%d]" % (i, i))
    if use["cc"]:
        a("    cA = cc[0]")
        a("    cB = cc[1]")
    if use["rt"]:
        a("    rtv = rt[0]")
    for i in sorted(bregs):
        a("    b%d = b[%d]" % (i, i))
        a("    s%d = bs[%d]" % (i, i))
    for i in sorted(cregs):
        a("    q%d = cs[%d]" % (i, i))
    if use["hp"]:
        a("    _hp = HP")
    if use["hc"]:
        a("    _hc = HC")
    if use["hj"]:
        a("    _hj = HJ")
    a("    _tk = 0")
    a("    _ix = 0")
    a("    _rb = 0")
    a("    _stop = 0")
    a("    _went = 0")
    a("    try:")
    a("        while 1:")
    for k, rec in enumerate(records):
        npcs = len(rec["pcs"])
        a("            %s _pc == %d:"
          % ("if" if k == 0 else "elif", rec["anchor"]))
        a("                if ic > _L - %d:" % npcs)
        a("                    break")
        a("                _went = 1")
        a("                _rb = %d" % bases[k])
        a("                while 1:")
        ex = "_EX%d[" % k
        for line in rec["body"]:
            m = _IX_LINE.match(line)
            if m:
                line = "%s_ix = %d" % (m.group(1),
                                       int(m.group(2)) + bases[k])
            elif "_EX[" in line:
                line = line.replace("_EX[", ex)
            a("                    " + line)
        if rec["closed"]:
            a("                    ic += %d" % npcs)
            a("                    _NF%d[0] += 1" % k)
            a("                    if ic > _L - %d:" % npcs)
            a("                        break")
        a("                if _stop:")
        a("                    break")
    a("            else:")
    a("                break")
    a("    except BaseException:")
    for line in wb:
        a("        " + line)
    a("        for _k in range(_rb, _ix):")
    a("            _CL[_k][0] += 1")
    if any_hist:
        a("            for _c, _y in _HL[_k]:")
        a("                _c[_y] += 1")
    a("        emu.pc = _PCS[_ix]")
    if machine == "baseline":
        a("        emu.npc = _PCS[_ix] + 4")
    a("        emu.icount = ic + _ix - _rb")
    a("        F[0] = 1")
    a("        raise")
    a("    if not _went:")
    a("        return None")
    for line in wb:
        a("    " + line)
    a("    return (_pc, ic, _stop)")
    for k, rec in enumerate(records):
        a("def _t%d(ic, fuel):" % k)
        a("    return _mega(%d, ic, fuel + %d)"
          % (rec["anchor"], len(rec["pcs"])))
    return "\n".join(lines) + "\n"


def _trace_record(tr, heat=0):
    """The ctx-free slice of a grown :class:`_Trace` that the mega
    renderer needs; safe to hold in the process-wide memo (no image,
    memory, or runtime references)."""
    return {
        "heat": heat,
        "anchor": tr.anchor,
        "pcs": tuple(tr.pcs),
        "body": tuple(tr.body),
        "exits": tuple(tr.exits),
        "closed": tr.closed,
        "ints": frozenset(tr.ints),
        "flts": frozenset(tr.flts),
        "bregs": frozenset(tr.bregs),
        "cregs": frozenset(tr.cregs),
        "use_cc": tr.use_cc,
        "use_rt": tr.use_rt,
        "use_hp": tr.use_hp,
        "use_hc": tr.use_hc,
        "use_hj": tr.use_hj,
        "hist": tuple(tr.hist),
        "written": frozenset(tr._written_locals()),
    }


def _build_mega(machine, memo, traces, make_ns, stats, program, fresh,
                mega_key=None):
    """Compile the image's memoized traces into one mega-function and
    swap its per-anchor entry points into ``traces``, replacing any
    per-trace functions (their pending fold credits are flushed first).
    ``fresh`` maps the anchors new to this build to their compile-metric
    result label; they are stamped only if the build succeeds -- on
    failure the caller's per-trace lazy entries stay in place and stamp
    themselves on first probe, exactly as before.  The rendered source
    is memoized per image (``_MEGA_MEMO``) so a repeat run re-binds the
    cached code object to the fresh context instead of re-rendering.
    Returns True on success."""
    from repro.obs import METRICS, log

    records = [rec for (_src, _pcs, rec) in memo.values()]
    if not records:
        return False
    # Hottest anchors first: the dispatcher is a linear if/elif scan,
    # so every chain hop pays one compare per arm it walks past.
    records.sort(key=lambda r: (-r["heat"], r["anchor"]))
    order = tuple((rec["anchor"], len(rec["pcs"])) for rec in records)
    try:
        mg = _MEGA_MEMO.get(mega_key) if mega_key is not None else None
        if mg is not None and mg[1] == order:
            src, all_pcs = mg[0], mg[2]
        else:
            src = _render_mega(machine, records)
            all_pcs = []
            for rec in records:
                all_pcs.extend(rec["pcs"])
            all_pcs = tuple(all_pcs)
            if mega_key is not None:
                if len(_MEGA_MEMO) >= _TRACE_MEMO_MAX:
                    _MEGA_MEMO.clear()
                _MEGA_MEMO[mega_key] = (src, order, all_pcs)
        code = _CODE_MEMO.get(src)
        if code is None:
            code = compile(src, "<mega:%s>" % machine, "exec")
            if len(_CODE_MEMO) >= _CODE_MEMO_MAX:
                _CODE_MEMO.clear()
            _CODE_MEMO[src] = code
        ns = make_ns(all_pcs)
        exec(code, ns)
        fold = ns["_fold"]
        entries = {
            anchor: (ns["_t%d" % k], npcs, fold)
            for k, (anchor, npcs) in enumerate(order)
        }
    except Exception as exc:
        METRICS.counter(
            "emulator.trace_compile", machine=machine, result="error"
        ).inc()
        log.warning("mega-trace compile failed in %s: %s", program, exc)
        return False
    for entry in traces.values():
        entry[2]()  # flush pending credits before the swap discards them
    traces.update(entries)
    for _anchor, result in fresh.items():
        stats.traces_compiled += 1
        METRICS.counter(
            "emulator.trace_compile", machine=machine, result=result
        ).inc()
    return True


def _install_memo(emu, machine, state, traces, make_ns):
    """Install this image's previously-selected traces (same process,
    same instruction stream), letting a repeat run trace from
    instruction zero with no profiled warm-up, selection, or rendering.
    Returns True when traces were installed."""
    ihash = _image_hash(emu.image, machine)
    state["rekey"] = (ihash, machine)
    memo = _TRACE_MEMO.get((ihash, machine))
    if not memo:
        return False
    stats = emu.stats
    program = stats.program or "program"
    covered = state.setdefault("covered", set())
    fresh = {anchor: "cached" for anchor in memo}
    if not _build_mega(machine, memo, traces, make_ns, stats, program,
                       fresh, (ihash, machine)):
        for anchor, (src_text, pcs, _rec) in memo.items():
            traces[anchor] = _lazy_entry(
                machine, traces, anchor, src_text, pcs, "cached",
                make_ns, stats, program,
            )
    for _anchor, (_src, pcs, _rec) in memo.items():
        covered.update(pcs)
    state["compiled"] = True
    return True


def _compile_traces(emu, machine, ctx, cells, state, traces, cur_pc, make_ns):
    """Select hot anchors from the warm-up profile and compile one
    specialized function per trace into ``traces``.  Never raises: any
    failure is counted (``emulator.trace_compile{result=error}``),
    logged, and simply leaves that anchor -- or all of them -- running
    on the fast core's fused dispatch."""
    state["compiled"] = True
    from repro.obs import METRICS, log, span

    stats = emu.stats
    grow = _grow_baseline if machine == "baseline" else _grow_branchreg
    program = stats.program or "program"
    before = len(traces)
    try:
        with span("trace_compile", machine=machine, program=program):
            allow_covered = before > 0  # re-profile round: edges are
            # recorded off-trace only, so a hot covered target is real
            anchors, counts, by_src = _select_anchors(
                emu, machine, state, cur_pc, exclude=frozenset(traces),
                allow_covered=allow_covered,
            )
            anchors = anchors[:max(0, TOTAL_TRACES - len(traces))]
            cache = _trace_cache()
            ihash = _image_hash(emu.image, machine)
            if (
                len(_TRACE_MEMO) >= _TRACE_MEMO_MAX
                and (ihash, machine) not in _TRACE_MEMO
            ):
                _TRACE_MEMO.clear()
                _MEGA_MEMO.clear()
                _RETRACE_MEMO.clear()
            memo = _TRACE_MEMO.setdefault((ihash, machine), {})
            state["rekey"] = (ihash, machine)
            instrs = emu.image.instrs
            covered = state.setdefault("covered", set())
            fresh = {}
            round_cov = set() if allow_covered else covered
            for anchor, _cnt in anchors:
                if anchor in round_cov:  # swallowed by an earlier pick
                    continue
                try:
                    tr = _Trace(machine, anchor, ctx)
                    grow(tr, instrs, counts, by_src)
                    result = "compiled"
                    src_text = None
                    key = None
                    if cache is not None:
                        key = _trace_key(ihash, tr.pcs)
                        blob = cache.get_blob("trace", key)
                        if (
                            isinstance(blob, dict)
                            and blob.get("pcs") == list(tr.pcs)
                            and isinstance(blob.get("source"), str)
                        ):
                            src_text = blob["source"]
                            result = "cached"
                    if src_text is None:
                        src_text = tr.render()
                        if cache is not None and key is not None:
                            cache.put_blob(
                                "trace", key,
                                {"pcs": list(tr.pcs), "source": src_text},
                            )
                    pcs = tuple(tr.pcs)
                    traces[anchor] = _lazy_entry(
                        machine, traces, anchor, src_text, pcs, result,
                        make_ns, stats, program,
                    )
                    memo[anchor] = (src_text, pcs, _trace_record(tr, _cnt))
                    fresh[anchor] = result
                    # A selected trace's body makes every pc inside it a
                    # redundant anchor candidate: a trace anchored there
                    # would mostly duplicate this one's tail, and each
                    # duplicate pays CPython's compile() on first enter.
                    covered.update(pcs)
                    if round_cov is not covered:
                        round_cov.update(pcs)
                except _Abort:
                    continue
                except Exception as exc:
                    METRICS.counter(
                        "emulator.trace_compile",
                        machine=machine, result="error",
                    ).inc()
                    log.warning(
                        "trace selection failed at 0x%x in %s: %s",
                        anchor, program, exc,
                    )
                    continue
            if len(traces) == before:
                METRICS.counter(
                    "emulator.trace_compile",
                    machine=machine, result="none",
                ).inc()
            if fresh and before == 0:
                # Combine the initial selection into one dispatcher; on
                # failure the lazy per-trace entries above stay.  Later
                # re-profile batches are NOT combined mid-run: rendering
                # and compiling a fresh multi-thousand-line dispatcher
                # would stall this run for longer than the new traces
                # save, so they run as per-trace functions now and join
                # the (memoized) mega at the next run's install.
                _build_mega(
                    machine, memo, traces, make_ns, stats, program,
                    fresh, (ihash, machine),
                )
    except Exception as exc:
        METRICS.counter(
            "emulator.trace_compile", machine=machine, result="error"
        ).inc()
        log.warning("trace selection failed in %s: %s", program, exc)


# -- run loops ----------------------------------------------------------------


def _make_baseline_tracerunner(emu, ctx, handlers, lens, specs, cells, plain):
    image = emu.image
    mem = ctx.memory
    by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(handlers)}
    len_by_pc = {TEXT_BASE + 4 * i: k for i, k in enumerate(lens)}
    plain_by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(plain)}
    traces = {}
    state = {"compiled": False, "edges": Counter(), "entry": None,
             "seg": None}
    #: Set by a trace's exception stub after it has stamped the exact
    #: faulting pc/npc/icount and credited its cells, so the runner's
    #: handler must not re-stamp or decrement anything.
    fail = [0]

    def _sync():
        done = set()  # mega entries share one fold: run it once
        for entry in traces.values():
            fold = entry[2]
            if id(fold) not in done:
                done.add(id(fold))
                fold()  # fold deferred trace credits into the cells
        emu.cc = (ctx.cc[0], ctx.cc[1])
        emu.rt = ctx.rt[0]
        _flush(emu.stats, cells, specs, ctx.taken)

    def make_ns(pcs):
        return {
            "r": ctx.r, "f": ctx.f, "cc": ctx.cc, "rt": ctx.rt,
            "D": mem.data,
            "LW": mem.load_word, "LB": mem.load_byte,
            "LF": mem.load_float, "SW": mem.store_word,
            "SB": mem.store_byte, "SF": mem.store_float,
            "cdiv": cdiv, "crem": crem, "EE": EmulationError,
            "TRAP": ctx.runtime.trap, "RT": ctx.runtime,
            "TK": ctx.taken, "emu": emu, "F": fail,
            "_CL": [cells[(a - TEXT_BASE) >> 2] for a in pcs],
            "_PCS": tuple(pcs),
        }

    def _compile_now(cur_pc):
        _compile_traces(
            emu, "baseline", ctx, cells, state, traces, cur_pc, make_ns
        )

    def run_plain():
        Hg = by_pc.get
        Lg = len_by_pc.__getitem__
        Pg = plain_by_pc.get
        Tg = traces.get
        STOP = _STOP
        raw = state["edges"]
        limit = emu.limit
        pc = emu.pc
        npc = emu.npc
        ic = emu.icount
        state["entry"] = pc
        state["seg"] = pc
        stopped = False
        bad = False
        tent = 0
        tin = 0
        stats = emu.stats
        if not state["compiled"]:
            _install_memo(emu, "baseline", state, traces, make_ns)
        wstop = 0 if state["compiled"] else _warmup_budget()
        if wstop > limit:
            wstop = limit
        try:
            # Profiled warm-up: standalone (pre-fusion) dispatch while
            # recording control-flow edges exactly like _run_profiled.
            while ic < wstop:
                h = Pg(pc)
                if h is None:
                    bad = True
                    break
                t = h(ic)
                ic += 1
                opc = pc
                pc = npc
                npc = pc + 4 if (t is None or t is STOP) else t
                if pc != opc + 4:
                    raw[(opc << 32) | pc] += 1
                    state["seg"] = pc
                if t is STOP:
                    stopped = True
                    break
            if not stopped and not bad:
                if ic < limit and not state["compiled"]:
                    _compile_now(pc)
                off = 0
                rekey = state.get("rekey")
                rethreshold = _RETRACE_MEMO.get(rekey, RETRACE_START)
                stop_at = limit - (MAX_CHAIN - 1)
                while ic < stop_at:
                    if off >= rethreshold:
                        # Off-trace execution keeps dominating: the
                        # startup profile missed this phase.  Record
                        # another edge window and compile more traces.
                        off = 0
                        if len(traces) < TOTAL_TRACES:
                            wb = ic + REPROFILE_WINDOW
                            if wb > limit:
                                wb = limit
                            while ic < wb:
                                h = Pg(pc)
                                if h is None:
                                    bad = True
                                    break
                                t = h(ic)
                                ic += 1
                                opc = pc
                                pc = npc
                                npc = (
                                    pc + 4 if (t is None or t is STOP)
                                    else t
                                )
                                if pc != opc + 4:
                                    raw[(opc << 32) | pc] += 1
                                    state["seg"] = pc
                                if t is STOP:
                                    stopped = True
                                    break
                            if stopped or bad:
                                break
                            before = len(traces)
                            _compile_now(pc)
                            if len(traces) == before:
                                rethreshold <<= 1
                                if rekey is not None:
                                    _RETRACE_MEMO[rekey] = rethreshold
                            continue
                        rethreshold = limit + 1  # cap hit: stop probing
                    if npc == pc + 4:  # no transfer in flight
                        tr = Tg(pc)
                        if tr is not None:
                            res = tr[0](ic, limit - tr[1])
                            if res is not None:
                                tent += 1
                                tin += res[1] - ic
                                pc = res[0]
                                ic = res[1]
                                npc = pc + 4
                                if res[2]:
                                    stopped = True
                                    break
                                continue
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:  # sequential, one instruction
                        ic += 1
                        off += 1
                        pc = npc
                        npc = pc + 4
                    elif t is STOP:
                        ic += 1
                        pc = npc
                        npc = pc + 4
                        stopped = True
                        break
                    else:  # t is the new npc
                        k = Lg(pc)
                        if k == 1:  # taken transfer
                            ic += 1
                            off += 1
                            pc = npc
                            npc = t
                        else:  # fused chain: all slots retire
                            ic += k
                            off += k
                            pc += k << 2
                            npc = t
        except Exception:
            stats.trace_enters += tent
            stats.trace_instructions += tin
            if fail[0]:
                fail[0] = 0  # the trace stub stamped the exact state
            else:
                cells[(pc - TEXT_BASE) >> 2][0] -= 1
                emu.pc, emu.npc, emu.icount = pc, npc, ic
            _sync()
            raise
        emu.pc, emu.npc, emu.icount = pc, npc, ic
        stats.trace_enters += tent
        stats.trace_instructions += tin
        _sync()
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)  # raises the reference's exact error
            raise AssertionError("unreachable: bad fetch did not raise")
        emu._run_plain()

    def run_observed():
        # See fastcore's run_observed; additionally each trace
        # invocation's fuel is bounded by the sample boundary, so
        # samples still fire at reference-identical icounts.
        observer = emu.observer
        observer.on_start(emu)
        HgF = by_pc.get
        Lg = len_by_pc.__getitem__
        Hg = plain_by_pc.get
        Tg = traces.get
        STOP = _STOP
        raw = state["edges"]
        sample_every = observer.sample_every
        next_sample = sample_every
        limit = emu.limit
        pc = emu.pc
        npc = emu.npc
        ic = emu.icount
        state["entry"] = pc
        state["seg"] = pc
        if not state["compiled"]:
            _install_memo(emu, "baseline", state, traces, make_ns)
        wend = _warmup_budget()
        stopped = False
        bad = False
        sampling = False
        tent = 0
        tin = 0
        stats = emu.stats
        try:
            while True:
                if ic >= next_sample:
                    emu.pc, emu.npc, emu.icount = pc, npc, ic
                    stats.trace_enters += tent
                    stats.trace_instructions += tin
                    tent = tin = 0
                    _sync()
                    sampling = True
                    observer.on_sample(emu)
                    sampling = False
                    next_sample = ic + sample_every
                if stopped or bad or ic >= limit:
                    break
                if not state["compiled"] and ic >= wend:
                    _compile_now(pc)
                boundary = next_sample if next_sample < limit else limit
                if not state["compiled"]:
                    # Profiled warm-up, capped by the sample boundary.
                    wb = boundary if boundary < wend else wend
                    while ic < wb:
                        h = Hg(pc)
                        if h is None:
                            bad = True
                            break
                        t = h(ic)
                        ic += 1
                        opc = pc
                        pc = npc
                        npc = pc + 4 if (t is None or t is STOP) else t
                        if pc != opc + 4:
                            raw[(opc << 32) | pc] += 1
                            state["seg"] = pc
                        if t is STOP:
                            stopped = True
                            break
                    continue
                fused_stop = boundary - (MAX_CHAIN - 1)
                while ic < fused_stop:  # fused phase with trace probes
                    if npc == pc + 4:
                        tr = Tg(pc)
                        if tr is not None:
                            res = tr[0](ic, boundary - tr[1])
                            if res is not None:
                                tent += 1
                                tin += res[1] - ic
                                pc = res[0]
                                ic = res[1]
                                npc = pc + 4
                                if res[2]:
                                    stopped = True
                                    break
                                continue
                    h = HgF(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:
                        ic += 1
                        pc = npc
                        npc = pc + 4
                    elif t is STOP:
                        ic += 1
                        pc = npc
                        npc = pc + 4
                        stopped = True
                        break
                    else:
                        k = Lg(pc)
                        if k == 1:
                            ic += 1
                            pc = npc
                            npc = t
                        else:
                            ic += k
                            pc += k << 2
                            npc = t
                if stopped or bad:
                    continue
                while ic < boundary:  # single-step up to the boundary
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    ic += 1
                    pc = npc
                    npc = pc + 4 if (t is None or t is STOP) else t
                    if t is STOP:
                        stopped = True
                        break
        except Exception:
            stats.trace_enters += tent
            stats.trace_instructions += tin
            if fail[0]:
                fail[0] = 0
            else:
                if not sampling:
                    cells[(pc - TEXT_BASE) >> 2][0] -= 1
                emu.pc, emu.npc, emu.icount = pc, npc, ic
            _sync()
            raise
        emu.pc, emu.npc, emu.icount = pc, npc, ic
        stats.trace_enters += tent
        stats.trace_instructions += tin
        _sync()
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)  # raises the reference's exact error
            raise AssertionError("unreachable: bad fetch did not raise")
        raise emu._limit_error()

    def run():
        if emu.observer is not None:
            return run_observed()
        return run_plain()

    return run


def _make_branchreg_tracerunner(emu, ctx, handlers, lens, specs, cells,
                                plain):
    image = emu.image
    mem = ctx.memory
    by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(handlers)}
    len_by_pc = {TEXT_BASE + 4 * i: k for i, k in enumerate(lens)}
    plain_by_pc = {TEXT_BASE + 4 * i: h for i, h in enumerate(plain)}
    traces = {}
    state = {"compiled": False, "edges": Counter(), "entry": None,
             "seg": None}
    fail = [0]
    stats = emu.stats

    def _sync():
        done = set()  # mega entries share one fold: run it once
        for entry in traces.values():
            fold = entry[2]
            if id(fold) not in done:
                done.add(id(fold))
                fold()  # fold deferred trace credits into the cells
        _flush(emu.stats, cells, specs, ctx.taken)

    def make_ns(pcs):
        return {
            "r": ctx.r, "f": ctx.f, "cc": ctx.cc, "rt": ctx.rt,
            "b": ctx.b, "bs": ctx.b_set_at, "cs": ctx.cmpset_at,
            "SEQ": ctx.SEQ,
            "D": mem.data,
            "LW": mem.load_word, "LB": mem.load_byte,
            "LF": mem.load_float, "SW": mem.store_word,
            "SB": mem.store_byte, "SF": mem.store_float,
            "cdiv": cdiv, "crem": crem, "EE": EmulationError,
            "TRAP": ctx.runtime.trap, "RT": ctx.runtime,
            "TK": ctx.taken, "emu": emu, "F": fail,
            "HP": stats.prefetch_gap, "HC": stats.compare_gap,
            "HJ": stats.cond_joint,
            "_CL": [cells[(a - TEXT_BASE) >> 2] for a in pcs],
            "_PCS": tuple(pcs),
        }

    def _compile_now(cur_pc):
        _compile_traces(
            emu, "branchreg", ctx, cells, state, traces, cur_pc, make_ns
        )

    def run_plain():
        Hg = by_pc.get
        Lg = len_by_pc.__getitem__
        Pg = plain_by_pc.get
        Tg = traces.get
        STOP = _STOP
        raw = state["edges"]
        limit = emu.limit
        pc = emu.pc
        ic = emu.icount
        state["entry"] = pc
        state["seg"] = pc
        stopped = False
        bad = False
        tent = 0
        tin = 0
        if not state["compiled"]:
            _install_memo(emu, "branchreg", state, traces, make_ns)
        wstop = 0 if state["compiled"] else _warmup_budget()
        if wstop > limit:
            wstop = limit
        try:
            while ic < wstop:  # profiled warm-up, standalone dispatch
                h = Pg(pc)
                if h is None:
                    bad = True
                    break
                t = h(ic)
                ic += 1
                opc = pc
                pc = opc + 4 if (t is None or t is STOP) else t
                if pc != opc + 4:
                    raw[(opc << 32) | pc] += 1
                    state["seg"] = pc
                if t is STOP:
                    stopped = True
                    break
            if not stopped and not bad:
                if ic < limit and not state["compiled"]:
                    _compile_now(pc)
                off = 0
                rekey = state.get("rekey")
                rethreshold = _RETRACE_MEMO.get(rekey, RETRACE_START)
                stop_at = limit - (MAX_CHAIN - 1)
                while ic < stop_at:
                    if off >= rethreshold:
                        # Off-trace execution keeps dominating: the
                        # startup profile missed this phase.  Record
                        # another edge window and compile more traces.
                        off = 0
                        if len(traces) < TOTAL_TRACES:
                            wb = ic + REPROFILE_WINDOW
                            if wb > limit:
                                wb = limit
                            while ic < wb:
                                h = Pg(pc)
                                if h is None:
                                    bad = True
                                    break
                                t = h(ic)
                                ic += 1
                                opc = pc
                                pc = (
                                    opc + 4 if (t is None or t is STOP)
                                    else t
                                )
                                if pc != opc + 4:
                                    raw[(opc << 32) | pc] += 1
                                    state["seg"] = pc
                                if t is STOP:
                                    stopped = True
                                    break
                            if stopped or bad:
                                break
                            before = len(traces)
                            _compile_now(pc)
                            if len(traces) == before:
                                rethreshold <<= 1
                                if rekey is not None:
                                    _RETRACE_MEMO[rekey] = rethreshold
                            continue
                        rethreshold = limit + 1  # cap hit: stop probing
                    tr = Tg(pc)
                    if tr is not None:
                        res = tr[0](ic, limit - tr[1])
                        if res is not None:
                            tent += 1
                            tin += res[1] - ic
                            pc = res[0]
                            ic = res[1]
                            if res[2]:
                                stopped = True
                                break
                            continue
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:  # sequential, one instruction
                        ic += 1
                        off += 1
                        pc += 4
                    elif t is STOP:
                        ic += 1
                        pc += 4
                        stopped = True
                        break
                    else:  # transfer or fused pair: t is the new pc
                        k = Lg(pc)
                        ic += k
                        off += k
                        pc = t
        except Exception:
            stats.trace_enters += tent
            stats.trace_instructions += tin
            if fail[0]:
                fail[0] = 0
            else:
                cells[(pc - TEXT_BASE) >> 2][0] -= 1
                emu.pc, emu.icount = pc, ic
            _sync()
            raise
        emu.pc, emu.icount = pc, ic
        stats.trace_enters += tent
        stats.trace_instructions += tin
        _sync()
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)
            raise AssertionError("unreachable: bad fetch did not raise")
        emu._run_plain()

    def run_observed():
        observer = emu.observer
        observer.on_start(emu)
        HgF = by_pc.get
        Lg = len_by_pc.__getitem__
        Hg = plain_by_pc.get
        Tg = traces.get
        STOP = _STOP
        raw = state["edges"]
        sample_every = observer.sample_every
        next_sample = sample_every
        limit = emu.limit
        pc = emu.pc
        ic = emu.icount
        state["entry"] = pc
        state["seg"] = pc
        if not state["compiled"]:
            _install_memo(emu, "branchreg", state, traces, make_ns)
        wend = _warmup_budget()
        stopped = False
        bad = False
        sampling = False
        tent = 0
        tin = 0
        try:
            while True:
                if ic >= next_sample:
                    emu.pc, emu.icount = pc, ic
                    stats.trace_enters += tent
                    stats.trace_instructions += tin
                    tent = tin = 0
                    _sync()
                    sampling = True
                    observer.on_sample(emu)
                    sampling = False
                    next_sample = ic + sample_every
                if stopped or bad or ic >= limit:
                    break
                if not state["compiled"] and ic >= wend:
                    _compile_now(pc)
                boundary = next_sample if next_sample < limit else limit
                if not state["compiled"]:
                    wb = boundary if boundary < wend else wend
                    while ic < wb:  # profiled warm-up
                        h = Hg(pc)
                        if h is None:
                            bad = True
                            break
                        t = h(ic)
                        ic += 1
                        opc = pc
                        pc = opc + 4 if (t is None or t is STOP) else t
                        if pc != opc + 4:
                            raw[(opc << 32) | pc] += 1
                            state["seg"] = pc
                        if t is STOP:
                            stopped = True
                            break
                    continue
                fused_stop = boundary - (MAX_CHAIN - 1)
                while ic < fused_stop:  # fused phase with trace probes
                    tr = Tg(pc)
                    if tr is not None:
                        res = tr[0](ic, boundary - tr[1])
                        if res is not None:
                            tent += 1
                            tin += res[1] - ic
                            pc = res[0]
                            ic = res[1]
                            if res[2]:
                                stopped = True
                                break
                            continue
                    h = HgF(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    if t is None:
                        ic += 1
                        pc += 4
                    elif t is STOP:
                        ic += 1
                        pc += 4
                        stopped = True
                        break
                    else:
                        ic += Lg(pc)
                        pc = t
                if stopped or bad:
                    continue
                while ic < boundary:  # single-step up to the boundary
                    h = Hg(pc)
                    if h is None:
                        bad = True
                        break
                    t = h(ic)
                    ic += 1
                    if t is None or t is STOP:
                        pc += 4
                        if t is STOP:
                            stopped = True
                            break
                    else:
                        pc = t
        except Exception:
            stats.trace_enters += tent
            stats.trace_instructions += tin
            if fail[0]:
                fail[0] = 0
            else:
                if not sampling:
                    cells[(pc - TEXT_BASE) >> 2][0] -= 1
                emu.pc, emu.icount = pc, ic
            _sync()
            raise
        emu.pc, emu.icount = pc, ic
        stats.trace_enters += tent
        stats.trace_instructions += tin
        _sync()
        if stopped:
            emu.halted = True
            return
        if bad:
            image.instruction_at(pc)
            raise AssertionError("unreachable: bad fetch did not raise")
        raise emu._limit_error()

    def run():
        if emu.observer is not None:
            return run_observed()
        return run_plain()

    return run


def prepare(emulator):
    """Build the trace-compiling runner for an emulator.

    Returns a zero-argument runner (drop-in for ``_run_plain``) or
    ``None`` -- with ``emulator.trace_fallback`` explaining why -- when
    the image or machine state cannot be compiled faithfully.  The
    eligibility matrix is the fast core's: trace compilation happens
    lazily after warm-up, so preparation cost is one predecode."""
    machine = emulator.MACHINE_NAME
    if machine == "baseline":
        predecode = _predecode_baseline
        make = _make_baseline_tracerunner
    elif machine == "branchreg":
        predecode = _predecode_branchreg
        make = _make_branchreg_tracerunner
    else:
        emulator.trace_fallback = "unknown machine %r" % (machine,)
        return None
    if type(emulator.memory) is not Memory:
        emulator.trace_fallback = "memory proxied (fault injection)"
        return None
    if type(emulator.r) is not list or type(emulator.f) is not list:
        emulator.trace_fallback = "register file proxied (fault injection)"
        return None
    if machine == "branchreg" and (
        type(emulator.b) is not list
        or type(emulator.b_set_at) is not list
        or type(emulator.cmpset_at) is not list
    ):
        emulator.trace_fallback = "branch registers proxied (fault injection)"
        return None
    try:
        return make(emulator, *predecode(emulator))
    except _Unsupported as exc:
        emulator.trace_fallback = str(exc) or "unsupported instruction"
        return None
    except Exception as exc:  # corrupted image shapes, missing operands...
        emulator.trace_fallback = "predecode failed: %s" % (exc,)
        return None
