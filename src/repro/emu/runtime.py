"""Emulated runtime services (the ``trap`` builtins).

stdin is a byte buffer supplied at run time; stdout accumulates into a
byte buffer.  A trap reads its arguments from the machine's argument
registers and leaves a result in the integer return register, exactly like
a call would, but costs one instruction and no transfer of control on
either machine (see DESIGN.md §3).
"""


class Runtime:
    """I/O state shared by both emulators."""

    def __init__(self, stdin=b""):
        if isinstance(stdin, str):
            stdin = stdin.encode("latin-1")
        self.stdin = bytes(stdin)
        self.stdin_pos = 0
        self.stdout = bytearray()
        self.exit_code = None

    def trap(self, name, arg0):
        """Execute builtin ``name`` with integer argument ``arg0``;
        returns the integer result."""
        if name == "getchar":
            if self.stdin_pos >= len(self.stdin):
                return -1
            ch = self.stdin[self.stdin_pos]
            self.stdin_pos = self.stdin_pos + 1
            return ch
        if name == "putchar":
            self.stdout.append(arg0 & 0xFF)
            return arg0 & 0xFF
        if name == "exit":
            self.exit_code = arg0
            return 0
        raise ValueError("unknown trap %r" % name)

    @property
    def output_text(self):
        return self.stdout.decode("latin-1")
