"""Shared emulator machinery for both machines.

The two machines share every computational opcode; subclasses add the
control-transfer semantics.  Execution is instruction-object based: the
loader pre-resolves symbols, and ``step`` dispatches on the opcode through
a bound-method table.
"""

import time as _time
from collections import deque

from repro.emu.fastcore import resolve_engine
from repro.emu.intmath import cdiv, crem, shl, shr, to_signed, wrap
from repro.emu.runtime import Runtime
from repro.emu.stats import RunStats
from repro.errors import (
    EmulationError,
    IllegalInstruction,
    ReproError,
    RuntimeLimitExceeded,
    WatchdogTimeout,
)
from repro.rtl.operand import Imm, Reg

DEFAULT_LIMIT = 200_000_000

#: Instructions between wall-clock watchdog checks in the hardened loop;
#: large enough that ``time.monotonic`` stays off the per-step path.
WATCHDOG_STRIDE = 4096

#: Control-flow edges kept in the hardened loop's post-mortem ring buffer.
EDGE_RING_SIZE = 16


class BaseEmulator:
    """State and common opcode semantics shared by both machines."""

    MACHINE_NAME = "base"

    #: Distance (bytes) from the address where a control discontinuity is
    #: *observed* back to the instruction that caused it.  The baseline
    #: machine's delayed branches redirect the fetch after the delay slot,
    #: so the discontinuity shows up one instruction (4 bytes) past the
    #: branch; the branch-register machine transfers immediately.
    TRANSFER_SHADOW = 0

    def __init__(
        self,
        image,
        stdin=b"",
        limit=DEFAULT_LIMIT,
        icache=None,
        observer=None,
        profiler=None,
        deadline_s=None,
        record_edges=False,
        engine=None,
    ):
        self.image = image
        self.spec = image.spec
        self.memory = image.memory
        self.runtime = Runtime(stdin)
        self.stats = RunStats(machine=self.MACHINE_NAME)
        self.limit = limit
        self.icache = icache
        self.observer = observer
        self.profiler = profiler
        self.deadline_s = deadline_s
        self.edge_ring = deque(maxlen=EDGE_RING_SIZE) if record_edges else None
        self.engine = resolve_engine(engine)
        #: Why the fast engine was not used, when ``engine="fast"`` (or
        #: the trace engine's fastcore fallback) had to fall back to the
        #: reference loop (``None`` otherwise).
        self.fast_fallback = None
        #: Why the trace engine was not used, when ``engine="trace"`` had
        #: to fall back to the fastcore or reference loop.
        self.trace_fallback = None
        self.cache_stalls = 0
        self.r = [0] * self.spec.ints.count
        self.f = [0.0] * self.spec.flts.count
        self.r[self.spec.ints.sp] = image.stack_top
        self.pc = image.entry
        self.halted = False
        self.icount = 0
        self._dispatch = self._build_dispatch()

    # -- operand helpers ---------------------------------------------------

    def value(self, operand):
        """Integer or float value of a pre-resolved operand."""
        if type(operand) is Reg:
            if operand.kind == "r":
                return self.r[operand.index]
            if operand.kind == "f":
                return self.f[operand.index]
            raise EmulationError("branch register in data context")
        if type(operand) is Imm:
            return operand.value
        raise EmulationError("bad operand %r" % (operand,))

    def set_reg(self, reg, value):
        if reg.kind == "r":
            self.r[reg.index] = value
        elif reg.kind == "f":
            self.f[reg.index] = value
        else:
            raise EmulationError("cannot set %r here" % (reg,))

    # -- common opcode handlers ------------------------------------------------

    def op_li(self, ins):
        self.r[ins.dst.index] = ins.xsrcs[0].value

    def op_sethi(self, ins):
        lo_bits = self.spec.imm_bits - 1
        value = ins.xsrcs[0].value & 0xFFFFFFFF
        self.r[ins.dst.index] = to_signed(value & ~((1 << lo_bits) - 1))

    def op_addlo(self, ins):
        lo_bits = self.spec.imm_bits - 1
        value = ins.xsrcs[1].value & 0xFFFFFFFF
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) + (value & ((1 << lo_bits) - 1))
        )

    def op_mov(self, ins):
        self.r[ins.dst.index] = self.value(ins.xsrcs[0])

    def op_fmov(self, ins):
        self.f[ins.dst.index] = self.value(ins.xsrcs[0])

    def op_neg(self, ins):
        self.r[ins.dst.index] = wrap(-self.value(ins.xsrcs[0]))

    def op_not(self, ins):
        self.r[ins.dst.index] = wrap(~self.value(ins.xsrcs[0]))

    def op_fneg(self, ins):
        self.f[ins.dst.index] = -self.f[ins.xsrcs[0].index]

    def op_cvtif(self, ins):
        self.f[ins.dst.index] = float(self.value(ins.xsrcs[0]))

    def op_cvtfi(self, ins):
        self.r[ins.dst.index] = wrap(int(self.f[ins.xsrcs[0].index]))

    def op_add(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) + self.value(ins.xsrcs[1])
        )

    def op_sub(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) - self.value(ins.xsrcs[1])
        )

    def op_mul(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) * self.value(ins.xsrcs[1])
        )

    def op_div(self, ins):
        self.r[ins.dst.index] = cdiv(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_rem(self, ins):
        self.r[ins.dst.index] = crem(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_and(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            & (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_or(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            | (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_xor(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            ^ (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_shl(self, ins):
        self.r[ins.dst.index] = shl(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_shr(self, ins):
        self.r[ins.dst.index] = shr(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_fadd(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] + self.f[ins.xsrcs[1].index]

    def op_fsub(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] - self.f[ins.xsrcs[1].index]

    def op_fmul(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] * self.f[ins.xsrcs[1].index]

    def op_fdiv(self, ins):
        denom = self.f[ins.xsrcs[1].index]
        if denom == 0.0:
            raise EmulationError("float division by zero")
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] / denom

    # memory ------------------------------------------------------------------

    def op_lw(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.r[ins.dst.index] = self.memory.load_word(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_lb(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.r[ins.dst.index] = self.memory.load_byte(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_lf(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.f[ins.dst.index] = self.memory.load_float(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_sw(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_word(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    def op_sb(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_byte(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    def op_sf(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_float(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    # misc ----------------------------------------------------------------------

    def op_noop(self, ins):
        self.stats.noops += 1

    def op_trap(self, ins):
        arg0 = self.r[self.spec.ints.args[0]]
        result = self.runtime.trap(ins.callee, arg0)
        self.r[self.spec.ints.ret] = result
        self.stats.traps += 1
        if self.runtime.exit_code is not None:
            self.halted = True

    def op_halt(self, ins):
        self.halted = True

    # -- dispatch ---------------------------------------------------------------

    def _build_dispatch(self):
        table = {}
        for name in dir(self):
            if name.startswith("op_"):
                table[name[3:]] = getattr(self, name)
        return table

    # -- post-mortem stamping ---------------------------------------------------

    def _locate(self, addr):
        """``function:line`` attribution for an address via the image's
        debug map ("?" when the address has no attribution)."""
        fn, line = self.image.source_location(addr)
        return "%s:%d" % (fn, line) if fn != "?" else "?"

    def _stamp(self, exc):
        """Attach post-mortem machine state to an in-flight error: which
        machine/program, the faulting pc with source attribution, the
        retired-instruction count, and (when the hardened loop keeps
        one) the last-N control-flow edge ring buffer snapshot."""
        exc.machine = self.MACHINE_NAME
        exc.program = self.stats.program or "program"
        exc.pc = self.pc
        exc.icount = self.icount
        exc.function, exc.line = self.image.source_location(self.pc)
        if self.edge_ring is not None:
            exc.edges = [
                {
                    "from": src,
                    "to": dst,
                    "from_loc": self._locate(src),
                    "to_loc": self._locate(dst),
                }
                for src, dst in self.edge_ring
            ]
        return exc

    def _limit_error(self):
        """The instruction-budget error every run loop raises: identical
        wording everywhere, with post-mortem state attached."""
        return self._stamp(
            RuntimeLimitExceeded(
                "exceeded %d instructions in %s"
                % (self.limit, self.stats.program or "program")
            )
        )

    # -- main loop ----------------------------------------------------------------

    def step(self):
        raise NotImplementedError

    def run(self):
        """Run to halt (or instruction limit); returns the RunStats.

        Which loop actually executes is decided once, in
        :meth:`_select_loop` -- the single documented dispatch point for
        every run-loop variant (plain / observed / hardened / profiled /
        fast).  All variants retire the same instruction stream and
        produce identical RunStats; they differ only in what they watch
        while doing it.
        """
        self._select_loop()()
        return self._finalize()

    def _select_loop(self):
        """The one place a run-loop variant is chosen.

        Every variant is a zero-argument bound callable that runs the
        program to halt (or raises the stamped limit error):

        ========== ======================================== ============
        variant    selected by                              extra work
        ========== ======================================== ============
        profiled   ``profiler`` attached                    edge Counter
        hardened   ``deadline_s`` or ``record_edges=True``  watchdog+ring
        observed   ``observer`` attached (reference engine, sampled hook
                   or any fallback below)
        trace      ``engine="trace"`` and no hook above     hot traces
                   (an ``observer`` alone stays on trace:   compiled to
                   tracecore has a sampling loop too)       functions
        fast       ``engine="fast"`` and no hook above      predecoded
                   (an ``observer`` alone stays fast: the   closure table
                   fast core has a sampling loop)
        plain      everything else                          none
        ========== ======================================== ============

        Neither compiled engine can service per-step hooks (except the
        sampling observer, which both service natively), the icache
        model, or proxied state installed by fault injectors; any of
        those forces a fallback and records the reason.  The fallback
        chain is ``trace -> fast -> reference``: when ``engine="trace"``
        cannot compile (reason in ``trace_fallback``) it degrades to the
        fastcore predecoded loop, and only when that also refuses
        (reason in ``fast_fallback``) does the reference loop run.
        ``stats.engine`` records which core actually ran and
        ``stats.engine_fallback`` records the first fallback reason for
        the run manifest.
        """
        fallback = None
        trace_fallback = None
        hook = None
        if self.profiler is not None:
            hook = "profiler attached"
        elif self.deadline_s is not None:
            hook = "wall-clock deadline requested"
        elif self.edge_ring is not None:
            hook = "edge-ring recording requested"
        elif self.icache is not None:
            hook = "icache model attached"
        if self.engine == "trace":
            if hook is not None:
                trace_fallback = hook
            else:
                from repro.emu import tracecore

                runner = tracecore.prepare(self)
                if runner is not None:
                    self.trace_fallback = None
                    self.stats.engine = "trace"
                    return runner
                trace_fallback = self.trace_fallback
        if self.engine in ("fast", "trace"):
            if hook is not None:
                fallback = hook
            else:
                from repro.emu import fastcore

                runner = fastcore.prepare(self)
                if runner is not None:
                    self.trace_fallback = trace_fallback
                    self.stats.engine = "fast"
                    self.stats.engine_fallback = trace_fallback or ""
                    return runner
                fallback = self.fast_fallback
        self.fast_fallback = fallback
        self.trace_fallback = trace_fallback
        self.stats.engine = "reference"
        self.stats.engine_fallback = trace_fallback or fallback or ""
        if self.profiler is not None:
            return self._run_profiled
        if self.deadline_s is not None or self.edge_ring is not None:
            return self._run_hardened
        if self.observer is not None:
            return self._run_observed
        return self._run_plain

    def _run_plain(self):
        """The untouched reference hot path: no hooks, no watchdog."""
        while not self.halted:
            if self.icount >= self.limit:
                raise self._limit_error()
            self.step()

    def _run_observed(self):
        observer = self.observer
        observer.on_start(self)
        next_sample = observer.sample_every
        while not self.halted:
            if self.icount >= self.limit:
                raise self._limit_error()
            self.step()
            if self.icount >= next_sample:
                observer.on_sample(self)
                next_sample = self.icount + observer.sample_every

    def _run_hardened(self):
        """Fault-tolerant loop: everything the observed loop does, plus a
        wall-clock watchdog (checked every ``WATCHDOG_STRIDE``
        instructions so ``time.monotonic`` stays off the per-step path),
        a ring buffer of the last ``EDGE_RING_SIZE`` control-flow edges
        for post-mortem triage, and a guarantee that whatever escapes
        ``step`` -- a typed fault or a raw exception from a corrupted
        image -- propagates as a stamped :class:`ReproError`."""
        observer = self.observer
        if observer is not None:
            observer.on_start(self)
            next_sample = observer.sample_every
        else:
            next_sample = None
        deadline = None
        next_watch = 0
        if self.deadline_s is not None:
            deadline = _time.monotonic() + self.deadline_s
            next_watch = WATCHDOG_STRIDE
        edges = self.edge_ring
        pc = self.pc
        while not self.halted:
            if self.icount >= self.limit:
                raise self._limit_error()
            if deadline is not None and self.icount >= next_watch:
                next_watch = self.icount + WATCHDOG_STRIDE
                if _time.monotonic() > deadline:
                    raise self._stamp(
                        WatchdogTimeout(
                            "exceeded %.3fs wall-clock in %s"
                            % (self.deadline_s, self.stats.program or "program")
                        )
                    )
            try:
                self.step()
            except ReproError as exc:
                raise self._stamp(exc)
            except Exception as exc:
                raise self._stamp(
                    IllegalInstruction(
                        "illegal instruction or operand at 0x%x: %s"
                        % (self.pc, exc)
                    )
                ) from exc
            npc = self.pc
            if edges is not None and npc != pc + 4:
                edges.append((pc, npc))
            pc = npc
            if next_sample is not None and self.icount >= next_sample:
                observer.on_sample(self)
                next_sample = self.icount + observer.sample_every

    def _run_profiled(self):
        """Profiled loop: record only control-flow *edges*.  The pc is
        tracked in a local across steps; when a step does not advance it by
        exactly 4 bytes, control transferred, and one Counter update
        records the raw (observation pc, target) pair.  Attribution to the
        transfer instruction (``pc - TRANSFER_SHADOW``: the delay slot
        pushes the observation one word past the branch on the baseline
        machine) and exact per-PC reconstruction happen afterwards in
        :mod:`repro.obs.profile`, so the attached loop costs one
        comparison per instruction plus a single Counter update per taken
        transfer.

        Known imprecision: a transfer whose target happens to be the next
        sequential address is indistinguishable from fall-through here and
        is counted as such (its dynamic execution is still exact).
        """
        profiler = self.profiler
        profiler.on_start(self)
        raw_edges = profiler.raw_edges
        step = self.step
        limit = self.limit
        pc = self.pc
        seg_start = pc
        while not self.halted:
            if self.icount >= limit:
                raise self._limit_error()
            step()
            npc = self.pc
            if npc != pc + 4:
                # Packed int key: cheaper to build and hash than a tuple.
                # The transfer shadow is applied at decode time, not here.
                raw_edges[(pc << 32) | npc] += 1
                seg_start = npc
            pc = npc
        profiler.seg_start = seg_start

    def _finalize(self):
        self.stats.instructions = self.icount
        self.stats.exit_code = (
            self.runtime.exit_code if self.runtime.exit_code is not None else 0
        )
        self.stats.output = bytes(self.runtime.stdout)
        if self.icache is not None:
            self.stats.icache = self.icache.stats
            self.stats.cache_stalls = self.cache_stalls
        if self.observer is not None:
            self.observer.on_end(self)
        if self.profiler is not None:
            self.profiler.on_end(self)
        return self.stats
