"""Shared emulator machinery for both machines.

The two machines share every computational opcode; subclasses add the
control-transfer semantics.  Execution is instruction-object based: the
loader pre-resolves symbols, and ``step`` dispatches on the opcode through
a bound-method table.
"""

from repro.emu.intmath import cdiv, crem, shl, shr, to_signed, wrap
from repro.emu.runtime import Runtime
from repro.emu.stats import RunStats
from repro.errors import EmulationError, RuntimeLimitExceeded
from repro.rtl.operand import Imm, Reg

DEFAULT_LIMIT = 200_000_000


class BaseEmulator:
    """State and common opcode semantics shared by both machines."""

    MACHINE_NAME = "base"

    def __init__(
        self, image, stdin=b"", limit=DEFAULT_LIMIT, icache=None, observer=None
    ):
        self.image = image
        self.spec = image.spec
        self.memory = image.memory
        self.runtime = Runtime(stdin)
        self.stats = RunStats(machine=self.MACHINE_NAME)
        self.limit = limit
        self.icache = icache
        self.observer = observer
        self.cache_stalls = 0
        self.r = [0] * self.spec.ints.count
        self.f = [0.0] * self.spec.flts.count
        self.r[self.spec.ints.sp] = image.stack_top
        self.pc = image.entry
        self.halted = False
        self.icount = 0
        self._dispatch = self._build_dispatch()

    # -- operand helpers ---------------------------------------------------

    def value(self, operand):
        """Integer or float value of a pre-resolved operand."""
        if type(operand) is Reg:
            if operand.kind == "r":
                return self.r[operand.index]
            if operand.kind == "f":
                return self.f[operand.index]
            raise EmulationError("branch register in data context")
        if type(operand) is Imm:
            return operand.value
        raise EmulationError("bad operand %r" % (operand,))

    def set_reg(self, reg, value):
        if reg.kind == "r":
            self.r[reg.index] = value
        elif reg.kind == "f":
            self.f[reg.index] = value
        else:
            raise EmulationError("cannot set %r here" % (reg,))

    # -- common opcode handlers ------------------------------------------------

    def op_li(self, ins):
        self.r[ins.dst.index] = ins.xsrcs[0].value

    def op_sethi(self, ins):
        lo_bits = self.spec.imm_bits - 1
        value = ins.xsrcs[0].value & 0xFFFFFFFF
        self.r[ins.dst.index] = to_signed(value & ~((1 << lo_bits) - 1))

    def op_addlo(self, ins):
        lo_bits = self.spec.imm_bits - 1
        value = ins.xsrcs[1].value & 0xFFFFFFFF
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) + (value & ((1 << lo_bits) - 1))
        )

    def op_mov(self, ins):
        self.r[ins.dst.index] = self.value(ins.xsrcs[0])

    def op_fmov(self, ins):
        self.f[ins.dst.index] = self.value(ins.xsrcs[0])

    def op_neg(self, ins):
        self.r[ins.dst.index] = wrap(-self.value(ins.xsrcs[0]))

    def op_not(self, ins):
        self.r[ins.dst.index] = wrap(~self.value(ins.xsrcs[0]))

    def op_fneg(self, ins):
        self.f[ins.dst.index] = -self.f[ins.xsrcs[0].index]

    def op_cvtif(self, ins):
        self.f[ins.dst.index] = float(self.value(ins.xsrcs[0]))

    def op_cvtfi(self, ins):
        self.r[ins.dst.index] = wrap(int(self.f[ins.xsrcs[0].index]))

    def op_add(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) + self.value(ins.xsrcs[1])
        )

    def op_sub(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) - self.value(ins.xsrcs[1])
        )

    def op_mul(self, ins):
        self.r[ins.dst.index] = wrap(
            self.value(ins.xsrcs[0]) * self.value(ins.xsrcs[1])
        )

    def op_div(self, ins):
        self.r[ins.dst.index] = cdiv(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_rem(self, ins):
        self.r[ins.dst.index] = crem(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_and(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            & (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_or(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            | (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_xor(self, ins):
        self.r[ins.dst.index] = wrap(
            (self.value(ins.xsrcs[0]) & 0xFFFFFFFF)
            ^ (self.value(ins.xsrcs[1]) & 0xFFFFFFFF)
        )

    def op_shl(self, ins):
        self.r[ins.dst.index] = shl(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_shr(self, ins):
        self.r[ins.dst.index] = shr(self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_fadd(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] + self.f[ins.xsrcs[1].index]

    def op_fsub(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] - self.f[ins.xsrcs[1].index]

    def op_fmul(self, ins):
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] * self.f[ins.xsrcs[1].index]

    def op_fdiv(self, ins):
        denom = self.f[ins.xsrcs[1].index]
        if denom == 0.0:
            raise EmulationError("float division by zero")
        self.f[ins.dst.index] = self.f[ins.xsrcs[0].index] / denom

    # memory ------------------------------------------------------------------

    def op_lw(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.r[ins.dst.index] = self.memory.load_word(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_lb(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.r[ins.dst.index] = self.memory.load_byte(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_lf(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.f[ins.dst.index] = self.memory.load_float(addr)
        self.stats.loads += 1
        self.stats.data_refs += 1

    def op_sw(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_word(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    def op_sb(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_byte(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    def op_sf(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        self.memory.store_float(addr, self.value(ins.xsrcs[0]))
        self.stats.stores += 1
        self.stats.data_refs += 1

    # misc ----------------------------------------------------------------------

    def op_noop(self, ins):
        self.stats.noops += 1

    def op_trap(self, ins):
        arg0 = self.r[self.spec.ints.args[0]]
        result = self.runtime.trap(ins.callee, arg0)
        self.r[self.spec.ints.ret] = result
        self.stats.traps += 1
        if self.runtime.exit_code is not None:
            self.halted = True

    def op_halt(self, ins):
        self.halted = True

    # -- dispatch ---------------------------------------------------------------

    def _build_dispatch(self):
        table = {}
        for name in dir(self):
            if name.startswith("op_"):
                table[name[3:]] = getattr(self, name)
        return table

    # -- main loop ----------------------------------------------------------------

    def step(self):
        raise NotImplementedError

    def run(self):
        """Run to halt (or instruction limit); returns the RunStats.

        With no observer the loop below is the untouched hot path; with
        one attached (:class:`repro.obs.emuobs.EmulationObserver`) the
        instrumented loop adds one comparison per instruction plus a
        sampled callback every ``observer.sample_every`` instructions.
        """
        if self.observer is None:
            while not self.halted:
                if self.icount >= self.limit:
                    raise RuntimeLimitExceeded(
                        "exceeded %d instructions in %s"
                        % (self.limit, self.stats.program or "program")
                    )
                self.step()
        else:
            self._run_observed()
        return self._finalize()

    def _run_observed(self):
        observer = self.observer
        observer.on_start(self)
        next_sample = observer.sample_every
        while not self.halted:
            if self.icount >= self.limit:
                raise RuntimeLimitExceeded(
                    "exceeded %d instructions in %s"
                    % (self.limit, self.stats.program or "program")
                )
            self.step()
            if self.icount >= next_sample:
                observer.on_sample(self)
                next_sample = self.icount + observer.sample_every

    def _finalize(self):
        self.stats.instructions = self.icount
        self.stats.exit_code = (
            self.runtime.exit_code if self.runtime.exit_code is not None else 0
        )
        self.stats.output = bytes(self.runtime.stdout)
        if self.icache is not None:
            self.stats.icache = self.icache.stats
            self.stats.cache_stalls = self.cache_stalls
        if self.observer is not None:
            self.observer.on_end(self)
        return self.stats
