"""Emulator for the branch-register machine.

Architectural state: the common register files plus eight (configurable)
branch registers.  Any instruction whose ``br`` field names a non-PC
branch register transfers control to the address in that register *after*
executing its own operation, and clobbers the link register with the next
sequential address (Section 4).

For the Section 7 pipeline estimates, the emulator tracks, per branch
register, the dynamic instruction index at which its current content's
prefetch was initiated; every transfer records the distance in the
``prefetch_gap`` histogram (key ``-1`` = sequential / always-ready, keys
``0..GAP_CAP`` = instructions between calculation and use).  A second
histogram, ``compare_gap``, records the distance between each ``cmpset``
and the conditional transfer consuming it (Figures 7-8's ``N-3`` term).
"""

from repro.emu.base import BaseEmulator
from repro.emu.intmath import compare, wrap

GAP_CAP = 8
READY = -1
_SEQ = "seq"  # sentinel: conditional fell through; target is pc + 4


class BranchRegEmulator(BaseEmulator):
    MACHINE_NAME = "branchreg"
    # Transfers redirect the very next fetch; no delay-slot shadow.
    TRANSFER_SHADOW = 0

    def __init__(
        self, image, stdin=b"", limit=None, icache=None, observer=None,
        profiler=None, deadline_s=None, record_edges=False, engine=None,
    ):
        kwargs = {} if limit is None else {"limit": limit}
        super().__init__(
            image, stdin=stdin, icache=icache, observer=observer,
            profiler=profiler, deadline_s=deadline_s,
            record_edges=record_edges, engine=engine, **kwargs
        )
        n = self.spec.branch_regs
        self.link = self.spec.br_link
        self.b = [0] * n
        # Prefetch pedigree: instruction index when the register's content
        # was (conceptually) sent to the cache; READY for sequential.
        self.b_set_at = [READY] * n
        self.cmpset_at = [READY] * n

    # -- branch-register opcodes --------------------------------------------

    def op_bta(self, ins):
        self.b[ins.dst.index] = ins.t_addr
        self.b_set_at[ins.dst.index] = self.icount
        self.stats.bta_calcs += 1
        if self.icache is not None:
            self.icache.prefetch(ins.t_addr, self.icount + self.cache_stalls)

    def op_btalo(self, ins):
        lo_bits = self.spec.imm_bits - 1
        if ins.t_addr is not None:
            low = ins.t_addr & ((1 << lo_bits) - 1)
        else:
            low = ins.xsrcs[1].value & ((1 << lo_bits) - 1)
        self.b[ins.dst.index] = wrap(self.value(ins.xsrcs[0]) + low)
        self.b_set_at[ins.dst.index] = self.icount
        self.stats.bta_calcs += 1
        if self.icache is not None:
            self.icache.prefetch(
                self.b[ins.dst.index], self.icount + self.cache_stalls
            )

    def op_bmov(self, ins):
        src = ins.srcs[0].index
        self.b[ins.dst.index] = self.b[src]
        self.b_set_at[ins.dst.index] = self.b_set_at[src]

    def op_bld(self, ins):
        addr = self.value(ins.xsrcs[0]) + ins.xsrcs[1].value
        self.b[ins.dst.index] = self.memory.load_word(addr)
        self.b_set_at[ins.dst.index] = self.icount
        if self.icache is not None:
            self.icache.prefetch(
                self.b[ins.dst.index], self.icount + self.cache_stalls
            )
        self.stats.loads += 1
        self.stats.data_refs += 1
        if ins.note.startswith("restore"):
            self.stats.branch_reg_restores += 1

    def op_bst(self, ins):
        addr = self.value(ins.xsrcs[1]) + ins.xsrcs[2].value
        value = self.b[ins.srcs[0].index]
        self.memory.store_word(addr, value)
        self.stats.stores += 1
        self.stats.data_refs += 1
        if ins.note.startswith("save"):
            self.stats.branch_reg_saves += 1

    def op_cmpset(self, ins):
        dst = ins.dst.index
        taken = compare(
            ins.cond, self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1])
        )
        if taken:
            self.b[dst] = self.b[ins.btrue]
            self.b_set_at[dst] = self.b_set_at[ins.btrue]
        else:
            self.b[dst] = _SEQ
            self.b_set_at[dst] = READY
        self.cmpset_at[dst] = self.icount

    op_fcmpset = op_cmpset

    # -- main loop -------------------------------------------------------------

    def step(self):
        if self.icache is not None:
            self.cache_stalls += self.icache.demand(
                self.pc, self.icount + self.cache_stalls
            )
        ins = self.image.instruction_at(self.pc)
        self._dispatch[ins.op](ins)
        self.icount += 1
        self.stats.opcounts[ins.op] += 1
        br = ins.br
        if not br:
            self.pc = self.pc + 4
            return
        # Transfer of control: read the branch register, then clobber the
        # link register with the next sequential address.
        target = self.b[br]
        sequential = self.pc + 4
        # -- statistics -----------------------------------------------------
        stats = self.stats
        tkind = getattr(ins, "tkind", "jump")
        if tkind == "cond":
            stats.cond_transfers += 1
            gap_c = min(self.icount - 1 - self.cmpset_at[br], GAP_CAP)
            stats.compare_gap[gap_c] += 1
            set_at_cond = self.b_set_at[br]
            if target is _SEQ or set_at_cond == READY:
                gap_p = READY
            else:
                gap_p = min(self.icount - 1 - set_at_cond, GAP_CAP)
            stats.cond_joint[(gap_p, gap_c)] += 1
            if target is not _SEQ:
                stats.cond_taken += 1
        else:
            stats.uncond_transfers += 1
            if tkind == "call":
                stats.calls += 1
            elif tkind == "return":
                stats.returns += 1
        set_at = self.b_set_at[br]
        if target is _SEQ or set_at == READY:
            stats.prefetch_gap[READY] += 1
        else:
            gap = self.icount - 1 - set_at
            stats.prefetch_gap[min(gap, GAP_CAP)] += 1
        if ins.is_noop():
            stats.noop_carriers += 1
        else:
            stats.useful_carriers += 1
            if ins.is_bta_calc():
                stats.bta_carriers += 1
        # -- architectural effect ----------------------------------------------
        self.b[self.link] = sequential
        self.b_set_at[self.link] = self.icount - 1
        self.pc = sequential if target is _SEQ else target


def run_branchreg(
    image, stdin=b"", limit=None, program="", icache=None, observer=None,
    profiler=None, deadline_s=None, record_edges=False, engine=None,
):
    """Convenience wrapper: run an image and return its RunStats."""
    emulator = BranchRegEmulator(
        image, stdin=stdin, limit=limit, icache=icache, observer=observer,
        profiler=profiler, deadline_s=deadline_s, record_edges=record_edges,
        engine=engine,
    )
    emulator.stats.program = program
    return emulator.run()
