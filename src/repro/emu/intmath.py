"""32-bit two's-complement arithmetic helpers.

Both target machines are 32-bit; all integer arithmetic wraps modulo 2**32
with signed interpretation.  Division and remainder truncate toward zero
(C semantics), unlike Python's floor division.
"""

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


def to_signed(value):
    """Interpret a Python int as a signed 32-bit quantity."""
    value = value & _MASK
    if value & _SIGN:
        return value - (1 << 32)
    return value


def to_unsigned(value):
    return value & _MASK


def wrap(value):
    """Wrap an arbitrary Python int to signed 32-bit."""
    return to_signed(value & _MASK)


def cdiv(a, b):
    """C-style truncating division."""
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap(q)


def crem(a, b):
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise ZeroDivisionError("integer remainder by zero")
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return wrap(r)


def shl(a, b):
    return wrap(a << (b & 31))


def shr(a, b):
    """Arithmetic right shift (the compiler only emits signed ints)."""
    return wrap(a >> (b & 31))


def int_binop(op, a, b):
    """Evaluate one IR integer binop with 32-bit wrapping semantics."""
    if op == "add":
        return wrap(a + b)
    if op == "sub":
        return wrap(a - b)
    if op == "mul":
        return wrap(a * b)
    if op == "div":
        return cdiv(a, b)
    if op == "rem":
        return crem(a, b)
    if op == "and":
        return wrap(to_unsigned(a) & to_unsigned(b))
    if op == "or":
        return wrap(to_unsigned(a) | to_unsigned(b))
    if op == "xor":
        return wrap(to_unsigned(a) ^ to_unsigned(b))
    if op == "shl":
        return shl(a, b)
    if op == "shr":
        return shr(a, b)
    raise ValueError("unknown integer binop %r" % op)


def compare(cond, a, b):
    """Evaluate a relational condition on two signed ints (or floats)."""
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "lt":
        return a < b
    if cond == "le":
        return a <= b
    if cond == "gt":
        return a > b
    if cond == "ge":
        return a >= b
    raise ValueError("unknown condition %r" % cond)
