"""Emulator for the baseline machine (delayed branches).

Uses the SPARC-style pc/npc pair: the instruction at ``npc`` always
executes after the one at ``pc``, which gives delayed-branch semantics for
free -- a taken transfer redirects the *following* fetch, so the delay-slot
instruction always runs.  ``call`` records ``pc + 8`` in ``RT`` (the return
point past the delay slot), matching the paper's Figure 3 ``PC=RT`` return.
"""

from repro.emu.base import BaseEmulator
from repro.emu.intmath import compare


class BaselineEmulator(BaseEmulator):
    MACHINE_NAME = "baseline"
    # Delayed branches: the pc discontinuity is observed at the delay-slot
    # instruction, one word past the branch itself.
    TRANSFER_SHADOW = 4

    def __init__(
        self, image, stdin=b"", limit=None, icache=None, observer=None,
        profiler=None, deadline_s=None, record_edges=False, engine=None,
    ):
        kwargs = {} if limit is None else {"limit": limit}
        super().__init__(
            image, stdin=stdin, icache=icache, observer=observer,
            profiler=profiler, deadline_s=deadline_s,
            record_edges=record_edges, engine=engine, **kwargs
        )
        self.npc = self.pc + 4
        self.rt = 0
        self.cc = (0, 0)

    # -- control-flow handlers ---------------------------------------------

    def op_cmp(self, ins):
        self.cc = (self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_fcmp(self, ins):
        self.cc = (self.value(ins.xsrcs[0]), self.value(ins.xsrcs[1]))

    def op_bcc(self, ins):
        self.stats.cond_transfers += 1
        if compare(ins.cond, self.cc[0], self.cc[1]):
            self.stats.cond_taken += 1
            self._target = ins.t_addr

    op_fbcc = op_bcc

    def op_jmp(self, ins):
        self.stats.uncond_transfers += 1
        self._target = ins.t_addr

    def op_ijmp(self, ins):
        self.stats.uncond_transfers += 1
        self._target = self.value(ins.xsrcs[0])

    def op_call(self, ins):
        self.stats.uncond_transfers += 1
        self.stats.calls += 1
        self.rt = self.pc + 8
        self._target = ins.t_addr

    def op_retrt(self, ins):
        self.stats.uncond_transfers += 1
        self.stats.returns += 1
        self._target = self.rt

    def op_mfrt(self, ins):
        self.r[ins.dst.index] = self.rt

    def op_mtrt(self, ins):
        self.rt = self.value(ins.xsrcs[0])

    # -- main loop -------------------------------------------------------------

    def step(self):
        if self.icache is not None:
            self.cache_stalls += self.icache.demand(
                self.pc, self.icount + self.cache_stalls
            )
        ins = self.image.instruction_at(self.pc)
        self._target = None
        self._dispatch[ins.op](ins)
        self.icount += 1
        self.stats.opcounts[ins.op] += 1
        self.pc = self.npc
        self.npc = self._target if self._target is not None else self.npc + 4


def run_baseline(
    image, stdin=b"", limit=None, program="", icache=None, observer=None,
    profiler=None, deadline_s=None, record_edges=False, engine=None,
):
    """Convenience wrapper: run an image and return its RunStats."""
    emulator = BaselineEmulator(
        image, stdin=stdin, limit=limit, icache=icache, observer=observer,
        profiler=profiler, deadline_s=deadline_s, record_edges=record_edges,
        engine=engine,
    )
    emulator.stats.program = program
    return emulator.run()
