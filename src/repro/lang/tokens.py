"""Token definitions for the SmallC front end."""

from dataclasses import dataclass

# Token kinds.
ID = "id"
INTCONST = "intconst"
FLOATCONST = "floatconst"
CHARCONST = "charconst"
STRING = "string"
PUNCT = "punct"
KEYWORD = "keyword"
EOF = "eof"

KEYWORDS = frozenset(
    [
        "int",
        "char",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
    ]
)

# Multi-character punctuators, longest first so the lexer can match greedily.
PUNCTUATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    value: object = None
    line: int = 0
    col: int = 0

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)
