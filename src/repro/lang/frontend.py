"""SmallC compilation driver: source text -> machine-independent IR.

Also provides the SmallC runtime library (string helpers, formatted
output, and software floating-point math used by the whetstone and spline
workloads).  Library functions a program does not reach from ``main`` are
trimmed before code generation.
"""

from repro.errors import SemanticError
from repro.lang.irgen import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.obs import METRICS, log, span

STDLIB_SOURCE = r"""
/* SmallC runtime library.  Compiled together with every program; unused
   functions are discarded.  strlen is intentionally the paper's Figure 2. */

int strlen(char *s) {
    int n = 0;
    if (s)
        for (; *s; s++)
            n++;
    return n;
}

int strcmp(char *a, char *b) {
    while (*a && *a == *b) {
        a++;
        b++;
    }
    return *a - *b;
}

char *strcpy(char *dst, char *src) {
    char *p = dst;
    while ((*p = *src)) {
        p++;
        src++;
    }
    return dst;
}

int abs_int(int n) {
    if (n < 0)
        return -n;
    return n;
}

int atoi(char *s) {
    int n = 0;
    int sign = 1;
    while (*s == ' ' || *s == '\t')
        s++;
    if (*s == '-') {
        sign = -1;
        s++;
    } else if (*s == '+')
        s++;
    while (*s >= '0' && *s <= '9') {
        n = n * 10 + (*s - '0');
        s++;
    }
    return n * sign;
}

void print_str(char *s) {
    while (*s) {
        putchar(*s);
        s++;
    }
}

void print_int(int n) {
    char buf[12];
    int i = 0;
    if (n < 0) {
        putchar('-');
        n = -n;
    }
    do {
        buf[i] = '0' + n % 10;
        i++;
        n = n / 10;
    } while (n);
    while (i > 0) {
        i--;
        putchar(buf[i]);
    }
}

void print_float(float x) {
    int whole;
    int frac;
    if (x < 0.0) {
        putchar('-');
        x = -x;
    }
    whole = (int) x;
    frac = (int) ((x - (float) whole) * 1000.0 + 0.5);
    if (frac >= 1000) {
        whole = whole + 1;
        frac = frac - 1000;
    }
    print_int(whole);
    putchar('.');
    putchar('0' + frac / 100);
    putchar('0' + frac / 10 % 10);
    putchar('0' + frac % 10);
}

float f_abs(float x) {
    if (x < 0.0)
        return -x;
    return x;
}

float f_sqrt(float x) {
    float guess;
    int i;
    if (x <= 0.0)
        return 0.0;
    guess = x;
    if (guess > 1.0)
        guess = x / 2.0 + 0.5;
    for (i = 0; i < 20; i++)
        guess = 0.5 * (guess + x / guess);
    return guess;
}

float f_sin(float x) {
    float pi = 3.14159265358979;
    float twopi = 6.28318530717959;
    float x2;
    float term;
    float sum;
    int n;
    while (x > pi)
        x = x - twopi;
    while (x < -pi)
        x = x + twopi;
    x2 = x * x;
    term = x;
    sum = x;
    for (n = 1; n <= 9; n++) {
        term = -term * x2 / ((2.0 * (float) n) * (2.0 * (float) n + 1.0));
        sum = sum + term;
    }
    return sum;
}

float f_cos(float x) {
    return f_sin(x + 1.570796326794897);
}

float f_atan(float x) {
    /* Maclaurin series after half-angle reduction:
       atan(x) = 2*atan(x / (1 + sqrt(1 + x^2))), applied until the
       argument is small enough for fast convergence. */
    float sign = 1.0;
    float result;
    float x2;
    float term;
    int n;
    int halvings = 0;
    if (x < 0.0) {
        x = -x;
        sign = -1.0;
    }
    while (x > 0.25) {
        x = x / (1.0 + f_sqrt(1.0 + x * x));
        halvings = halvings + 1;
    }
    x2 = x * x;
    term = x;
    result = x;
    for (n = 1; n <= 10; n++) {
        term = -term * x2;
        result = result + term / (2.0 * (float) n + 1.0);
    }
    while (halvings > 0) {
        result = result * 2.0;
        halvings--;
    }
    return sign * result;
}

float f_exp(float x) {
    /* exp(x) = exp(x/2)^2 range reduction over a Maclaurin series. */
    float term = 1.0;
    float sum = 1.0;
    int n;
    if (x > 1.0 || x < -1.0) {
        float half = f_exp(x * 0.5);
        return half * half;
    }
    for (n = 1; n <= 12; n++) {
        term = term * x / (float) n;
        sum = sum + term;
    }
    return sum;
}

float f_log(float x) {
    /* ln via atanh series: ln(x) = 2*artanh((x-1)/(x+1)), range reduced
       by factoring out powers of e. */
    float e = 2.718281828459045;
    float k = 0.0;
    float y;
    float y2;
    float term;
    float sum;
    int n;
    if (x <= 0.0)
        return 0.0;
    while (x > e) {
        x = x / e;
        k = k + 1.0;
    }
    while (x < 1.0 / e) {
        x = x * e;
        k = k - 1.0;
    }
    y = (x - 1.0) / (x + 1.0);
    y2 = y * y;
    term = y;
    sum = y;
    for (n = 1; n <= 10; n++) {
        term = term * y2;
        sum = sum + term / (2.0 * (float) n + 1.0);
    }
    return 2.0 * sum + k;
}
"""


def _merge_stdlib(user_ast, stdlib_ast):
    """Append stdlib functions the user program did not redefine."""
    defined = {fn.name for fn in user_ast.functions}
    for fn in stdlib_ast.functions:
        if fn.name not in defined:
            user_ast.functions.append(fn)
    return user_ast


def _reachable_functions(program):
    """Names of functions reachable from main via call instructions."""
    reachable = set()
    stack = ["main"]
    while stack:
        name = stack.pop()
        if name in reachable or name not in program.functions:
            continue
        reachable.add(name)
        for ins in program.functions[name].instrs:
            if ins.op == "call" and ins.callee not in reachable:
                stack.append(ins.callee)
    return reachable


def _referenced_globals(program):
    """Symbol names referenced from live code or from other live globals."""
    from repro.rtl.operand import Sym

    referenced = set()
    for fn in program.functions.values():
        for ins in fn.instrs:
            for src in ins.srcs:
                if isinstance(src, Sym):
                    referenced.add(src.name)
    # Globals can reference other globals (char *p = "text").
    changed = True
    while changed:
        changed = False
        for name in list(referenced):
            gvar = program.globals.get(name)
            if gvar is None or not isinstance(gvar.init, list):
                continue
            for item in gvar.init:
                if (
                    isinstance(item, tuple)
                    and item[0] == "sym"
                    and item[1] not in referenced
                ):
                    referenced.add(item[1])
                    changed = True
    return referenced


def _trim_unreachable(program):
    keep = _reachable_functions(program)
    program.functions = {
        name: fn for name, fn in program.functions.items() if name in keep
    }
    live_syms = _referenced_globals(program)
    program.globals = {
        name: g for name, g in program.globals.items() if name in live_syms
    }
    return program


def compile_to_ir(source, include_stdlib=True, filename="<source>"):
    """Compile SmallC source into a trimmed :class:`IRProgram`."""
    with span("frontend.parse"):
        user_ast = parse(source, filename)
        if include_stdlib:
            stdlib_ast = parse(STDLIB_SOURCE, "<stdlib>")
            user_ast = _merge_stdlib(user_ast, stdlib_ast)
    with span("frontend.sema"):
        analyze(user_ast)
        for fn in user_ast.functions:
            if fn.name == "main" and fn.params:
                raise SemanticError("main must take no parameters in SmallC")
    with span("frontend.lower"):
        program = lower_program(user_ast)
    with span("frontend.trim"):
        program = _trim_unreachable(program)
    METRICS.counter("frontend.compilations").inc()
    METRICS.counter("frontend.ir_functions").inc(len(program.functions))
    METRICS.counter("frontend.ir_instructions").inc(
        sum(len(fn.instrs) for fn in program.functions.values())
    )
    log.debug(
        "compiled %s: %d live functions", filename, len(program.functions)
    )
    return program
