"""SmallC's type system.

SmallC has four base types -- ``int`` (32-bit signed), ``char`` (8-bit
unsigned in memory, widened to int in expressions), ``float`` (IEEE single
precision) and ``void`` -- plus pointers and constant-dimension arrays over
them.  There are no structs, unions or typedefs; Appendix I programs that
used structs are reproduced with parallel arrays (see DESIGN.md §3).
"""

from dataclasses import dataclass


class CType:
    """Base class for SmallC types."""

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_array(self):
        return isinstance(self, ArrayType)

    def is_float(self):
        return isinstance(self, BaseType) and self.name == "float"

    def is_void(self):
        return isinstance(self, BaseType) and self.name == "void"

    def is_char(self):
        return isinstance(self, BaseType) and self.name == "char"

    def is_int(self):
        return isinstance(self, BaseType) and self.name == "int"

    def is_integral(self):
        return self.is_int() or self.is_char()

    def is_scalar(self):
        return self.is_integral() or self.is_float() or self.is_pointer()

    def is_arithmetic(self):
        return self.is_integral() or self.is_float()


@dataclass(frozen=True)
class BaseType(CType):
    name: str  # "int" | "char" | "float" | "void"

    @property
    def size(self):
        return {"int": 4, "char": 1, "float": 4, "void": 0}[self.name]

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType

    @property
    def size(self):
        return 4

    def __str__(self):
        return "%s*" % self.pointee


@dataclass(frozen=True)
class ArrayType(CType):
    elem: CType
    length: int

    @property
    def size(self):
        return self.elem.size * self.length

    def decay(self):
        return PointerType(self.elem)

    def __str__(self):
        return "%s[%d]" % (self.elem, self.length)


INT = BaseType("int")
CHAR = BaseType("char")
FLOAT = BaseType("float")
VOID = BaseType("void")


def decay(ctype):
    """Array-to-pointer decay as applied in expression contexts."""
    if ctype.is_array():
        return ctype.decay()
    return ctype


def element_size(ctype):
    """Size of the object a pointer/array element refers to, for pointer
    arithmetic scaling."""
    if ctype.is_pointer():
        return ctype.pointee.size
    if ctype.is_array():
        return ctype.elem.size
    raise TypeError("not a pointer/array type: %s" % ctype)


def assignable(dst, src):
    """Loose C-style assignability check used by the semantic analyser."""
    dst = decay(dst)
    src = decay(src)
    if dst.is_arithmetic() and src.is_arithmetic():
        return True
    if dst.is_pointer() and src.is_pointer():
        return True  # SmallC permits pointer casts by assignment, like K&R C
    if dst.is_pointer() and src.is_integral():
        return True  # NULL and address arithmetic idioms
    if dst.is_integral() and src.is_pointer():
        return True
    return False


def common_arith(left, right):
    """Usual arithmetic conversions: float wins, otherwise int."""
    if left.is_float() or right.is_float():
        return FLOAT
    return INT
