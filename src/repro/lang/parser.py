"""Recursive-descent parser for SmallC.

Grammar (roughly)::

    program    := (funcdef | decl)*
    decl       := type declarator ("," declarator)* ";"
    declarator := "*"* ident ("[" intconst "]")* ("=" initializer)?
    funcdef    := type "*"* ident "(" params ")" block
    stmt       := block | if | while | do-while | for | switch | return
                | break ";" | continue ";" | decl | expr ";" | ";"
    expr       := assignment / ternary / binary precedence ladder

Operator precedence follows C.  Casts are written ``(type) expr``; the
parser disambiguates from parenthesised expressions by one token of
lookahead (a type keyword after ``(``).
"""

from repro.errors import ParseError
from repro.lang import astnodes as ast
from repro.lang import ctypes as ct
from repro.lang.lexer import tokenize
from repro.lang.tokens import (
    CHARCONST,
    EOF,
    FLOATCONST,
    ID,
    INTCONST,
    KEYWORD,
    PUNCT,
    STRING,
)

_TYPE_KEYWORDS = ("int", "char", "float", "void")

# Binary operators by descending precedence level.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class Parser:
    """Parses a token stream into a :class:`~repro.lang.astnodes.Program`."""

    def __init__(self, tokens):
        self.toks = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self, ahead=0):
        i = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[i]

    def _advance(self):
        tok = self.toks[self.pos]
        if tok.kind != EOF:
            self.pos = self.pos + 1
        return tok

    def _check(self, kind, text=None):
        tok = self._peek()
        if tok.kind != kind:
            return False
        return text is None or tok.text == text

    def _accept(self, kind, text=None):
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None):
        tok = self._peek()
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                "expected %r, found %r" % (wanted, tok.text or tok.kind),
                tok.line,
                tok.col,
            )
        return self._advance()

    def _at_type(self, ahead=0):
        tok = self._peek(ahead)
        return tok.kind == KEYWORD and tok.text in _TYPE_KEYWORDS

    # -- top level --------------------------------------------------------

    def parse_program(self):
        program = ast.Program()
        while not self._check(EOF):
            if not self._at_type():
                tok = self._peek()
                raise ParseError(
                    "expected declaration, found %r" % tok.text, tok.line, tok.col
                )
            # Distinguish function definition from global declaration:
            # type '*'* ident '(' ...
            ahead = 1
            while self._peek(ahead).kind == PUNCT and self._peek(ahead).text == "*":
                ahead = ahead + 1
            is_func = (
                self._peek(ahead).kind == ID
                and self._peek(ahead + 1).kind == PUNCT
                and self._peek(ahead + 1).text == "("
            )
            if is_func:
                funcdef = self._funcdef()
                if funcdef is not None:  # prototypes parse to None
                    program.functions.append(funcdef)
            else:
                program.globals.extend(self._decl())
        return program

    def _base_type(self):
        tok = self._expect(KEYWORD)
        if tok.text not in _TYPE_KEYWORDS:
            raise ParseError("expected type, found %r" % tok.text, tok.line, tok.col)
        return {"int": ct.INT, "char": ct.CHAR, "float": ct.FLOAT, "void": ct.VOID}[
            tok.text
        ]

    def _pointer_suffix(self, base):
        ctype = base
        while self._accept(PUNCT, "*"):
            ctype = ct.PointerType(ctype)
        return ctype

    def _funcdef(self):
        tok = self._peek()
        return_type = self._pointer_suffix(self._base_type())
        name = self._expect(ID).text
        self._expect(PUNCT, "(")
        params = []
        if not self._check(PUNCT, ")"):
            if self._check(KEYWORD, "void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    ptok = self._peek()
                    ptype = self._pointer_suffix(self._base_type())
                    pname = self._expect(ID).text
                    # "char *argv[]"-style array params decay to pointers.
                    while self._accept(PUNCT, "["):
                        self._accept(INTCONST)
                        self._expect(PUNCT, "]")
                        ptype = ct.PointerType(ptype)
                    params.append(
                        ast.Param(name=pname, ctype=ptype, line=ptok.line, col=ptok.col)
                    )
                    if not self._accept(PUNCT, ","):
                        break
        self._expect(PUNCT, ")")
        if self._accept(PUNCT, ";"):
            # Function prototype: harmless, since semantic analysis
            # resolves forward references in a separate pass.
            return None
        body = self._block()
        return ast.FuncDef(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            line=tok.line,
            col=tok.col,
        )

    # -- declarations -----------------------------------------------------

    def _decl(self):
        """Parse one declaration line; returns a list of VarDecl."""
        base = self._base_type()
        decls = []
        while True:
            decls.append(self._declarator(base))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return decls

    def _declarator(self, base):
        tok = self._peek()
        ctype = self._pointer_suffix(base)
        name = self._expect(ID).text
        dims = []
        while self._accept(PUNCT, "["):
            if self._check(PUNCT, "]"):
                dims.append(None)  # size from initializer
            else:
                dim = self._expect(INTCONST)
                dims.append(dim.value)
            self._expect(PUNCT, "]")
        init = None
        if self._accept(PUNCT, "="):
            init = self._initializer()
        # Apply array dimensions innermost-last.
        for dim in reversed(dims):
            length = dim
            if length is None:
                length = _init_length(init)
                if length is None:
                    raise ParseError(
                        "array %r needs a size or initializer" % name,
                        tok.line,
                        tok.col,
                    )
            ctype = ct.ArrayType(ctype, length)
        return ast.VarDecl(
            name=name, ctype=ctype, init=init, line=tok.line, col=tok.col
        )

    def _initializer(self):
        if self._accept(PUNCT, "{"):
            items = []
            if not self._check(PUNCT, "}"):
                while True:
                    items.append(self._initializer())
                    if not self._accept(PUNCT, ","):
                        break
            self._expect(PUNCT, "}")
            return items
        return self._assignment()

    # -- statements ---------------------------------------------------------

    def _block(self):
        tok = self._expect(PUNCT, "{")
        stmts = []
        while not self._check(PUNCT, "}"):
            if self._check(EOF):
                raise ParseError("unterminated block", tok.line, tok.col)
            stmts.append(self._statement())
        self._expect(PUNCT, "}")
        return ast.Block(stmts=stmts, line=tok.line, col=tok.col)

    def _statement(self):
        tok = self._peek()
        if self._check(PUNCT, "{"):
            return self._block()
        if self._check(PUNCT, ";"):
            self._advance()
            return ast.Block(stmts=[], line=tok.line, col=tok.col)
        if self._at_type():
            decls = self._decl()
            return ast.DeclStmt(decls=decls, line=tok.line, col=tok.col)
        if self._check(KEYWORD, "if"):
            return self._if()
        if self._check(KEYWORD, "while"):
            return self._while()
        if self._check(KEYWORD, "do"):
            return self._dowhile()
        if self._check(KEYWORD, "for"):
            return self._for()
        if self._check(KEYWORD, "switch"):
            return self._switch()
        if self._check(KEYWORD, "return"):
            self._advance()
            value = None
            if not self._check(PUNCT, ";"):
                value = self._expression()
            self._expect(PUNCT, ";")
            return ast.Return(value=value, line=tok.line, col=tok.col)
        if self._check(KEYWORD, "break"):
            self._advance()
            self._expect(PUNCT, ";")
            return ast.Break(line=tok.line, col=tok.col)
        if self._check(KEYWORD, "continue"):
            self._advance()
            self._expect(PUNCT, ";")
            return ast.Continue(line=tok.line, col=tok.col)
        expr = self._expression()
        self._expect(PUNCT, ";")
        return ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def _if(self):
        tok = self._expect(KEYWORD, "if")
        self._expect(PUNCT, "(")
        cond = self._expression()
        self._expect(PUNCT, ")")
        then = self._statement()
        other = None
        if self._accept(KEYWORD, "else"):
            other = self._statement()
        return ast.If(cond=cond, then=then, other=other, line=tok.line, col=tok.col)

    def _while(self):
        tok = self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._expression()
        self._expect(PUNCT, ")")
        body = self._statement()
        return ast.While(cond=cond, body=body, line=tok.line, col=tok.col)

    def _dowhile(self):
        tok = self._expect(KEYWORD, "do")
        body = self._statement()
        self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._expression()
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return ast.DoWhile(body=body, cond=cond, line=tok.line, col=tok.col)

    def _for(self):
        tok = self._expect(KEYWORD, "for")
        self._expect(PUNCT, "(")
        init = None
        if not self._check(PUNCT, ";"):
            if self._at_type():
                decls = self._decl()  # consumes the ';'
                init = ast.DeclStmt(decls=decls, line=tok.line, col=tok.col)
            else:
                init = ast.ExprStmt(expr=self._expression(), line=tok.line, col=tok.col)
                self._expect(PUNCT, ";")
        else:
            self._expect(PUNCT, ";")
        cond = None
        if not self._check(PUNCT, ";"):
            cond = self._expression()
        self._expect(PUNCT, ";")
        step = None
        if not self._check(PUNCT, ")"):
            step = self._expression()
        self._expect(PUNCT, ")")
        body = self._statement()
        return ast.For(
            init=init, cond=cond, step=step, body=body, line=tok.line, col=tok.col
        )

    def _switch(self):
        tok = self._expect(KEYWORD, "switch")
        self._expect(PUNCT, "(")
        expr = self._expression()
        self._expect(PUNCT, ")")
        self._expect(PUNCT, "{")
        cases = []
        current = None  # (value or None, stmts)
        while not self._check(PUNCT, "}"):
            if self._accept(KEYWORD, "case"):
                value = self._const_int_expr()
                self._expect(PUNCT, ":")
                current = (value, [])
                cases.append(current)
            elif self._accept(KEYWORD, "default"):
                self._expect(PUNCT, ":")
                current = (None, [])
                cases.append(current)
            else:
                if current is None:
                    bad = self._peek()
                    raise ParseError(
                        "statement before first case label", bad.line, bad.col
                    )
                current[1].append(self._statement())
        self._expect(PUNCT, "}")
        return ast.Switch(expr=expr, cases=cases, line=tok.line, col=tok.col)

    def _const_int_expr(self):
        """Constant expression in a case label: int/char literal with
        optional unary minus."""
        negative = bool(self._accept(PUNCT, "-"))
        tok = self._peek()
        if tok.kind in (INTCONST, CHARCONST):
            self._advance()
            value = tok.value
            return -value if negative else value
        raise ParseError("expected integer constant", tok.line, tok.col)

    # -- expressions -------------------------------------------------------

    def _expression(self):
        return self._assignment()

    def _assignment(self):
        left = self._ternary()
        tok = self._peek()
        if tok.kind == PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._assignment()
            return ast.Assign(
                op=tok.text, target=left, value=value, line=tok.line, col=tok.col
            )
        return left

    def _ternary(self):
        cond = self._binary(0)
        tok = self._peek()
        if self._accept(PUNCT, "?"):
            then = self._expression()
            self._expect(PUNCT, ":")
            other = self._ternary()
            return ast.Ternary(
                cond=cond, then=then, other=other, line=tok.line, col=tok.col
            )
        return cond

    def _binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        ops = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind == PUNCT and tok.text in ops:
                self._advance()
                right = self._binary(level + 1)
                left = ast.Binary(
                    op=tok.text, left=left, right=right, line=tok.line, col=tok.col
                )
            else:
                return left

    def _unary(self):
        tok = self._peek()
        if tok.kind == PUNCT and tok.text in ("-", "!", "~", "*", "&"):
            self._advance()
            operand = self._unary()
            return ast.Unary(op=tok.text, operand=operand, line=tok.line, col=tok.col)
        if tok.kind == PUNCT and tok.text == "+":
            self._advance()
            return self._unary()
        if tok.kind == PUNCT and tok.text in ("++", "--"):
            self._advance()
            operand = self._unary()
            return ast.IncDec(
                op=tok.text, prefix=True, operand=operand, line=tok.line, col=tok.col
            )
        if tok.kind == PUNCT and tok.text == "(" and self._at_type(1):
            self._advance()
            target = self._pointer_suffix(self._base_type())
            self._expect(PUNCT, ")")
            operand = self._unary()
            return ast.Cast(
                target=target, operand=operand, line=tok.line, col=tok.col
            )
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            tok = self._peek()
            if self._accept(PUNCT, "["):
                index = self._expression()
                self._expect(PUNCT, "]")
                expr = ast.Index(base=expr, index=index, line=tok.line, col=tok.col)
            elif self._check(PUNCT, "(") and isinstance(expr, ast.Ident):
                self._advance()
                args = []
                if not self._check(PUNCT, ")"):
                    while True:
                        args.append(self._assignment())
                        if not self._accept(PUNCT, ","):
                            break
                self._expect(PUNCT, ")")
                expr = ast.Call(
                    name=expr.name, args=args, line=tok.line, col=tok.col
                )
            elif tok.kind == PUNCT and tok.text in ("++", "--"):
                self._advance()
                expr = ast.IncDec(
                    op=tok.text,
                    prefix=False,
                    operand=expr,
                    line=tok.line,
                    col=tok.col,
                )
            else:
                return expr

    def _primary(self):
        tok = self._peek()
        if tok.kind == INTCONST or tok.kind == CHARCONST:
            self._advance()
            return ast.IntLit(value=tok.value, line=tok.line, col=tok.col)
        if tok.kind == FLOATCONST:
            self._advance()
            return ast.FloatLit(value=tok.value, line=tok.line, col=tok.col)
        if tok.kind == STRING:
            self._advance()
            # Adjacent string literals concatenate, as in C.
            text = tok.value
            while self._check(STRING):
                text = text + self._advance().value
            return ast.StrLit(value=text, line=tok.line, col=tok.col)
        if tok.kind == ID:
            self._advance()
            return ast.Ident(name=tok.text, line=tok.line, col=tok.col)
        if self._accept(PUNCT, "("):
            expr = self._expression()
            self._expect(PUNCT, ")")
            return expr
        raise ParseError(
            "unexpected token %r" % (tok.text or tok.kind), tok.line, tok.col
        )


def _init_length(init):
    """Length implied by an initializer for an unsized array dimension."""
    if isinstance(init, list):
        return len(init)
    if isinstance(init, ast.StrLit):
        return len(init.value) + 1
    return None


def parse(source, filename="<source>"):
    """Parse SmallC source text into an AST program."""
    return Parser(tokenize(source, filename)).parse_program()
