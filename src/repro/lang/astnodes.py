"""AST node definitions for SmallC.

Every node carries ``line``/``col`` for diagnostics.  Expression nodes gain
a ``ctype`` attribute during semantic analysis.
"""

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# --- expressions ----------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int
    ctype: object = None


@dataclass
class FloatLit(Node):
    value: float
    ctype: object = None


@dataclass
class StrLit(Node):
    value: str
    ctype: object = None


@dataclass
class Ident(Node):
    name: str
    ctype: object = None
    symbol: object = None  # filled by sema


@dataclass
class Unary(Node):
    op: str  # "-", "!", "~", "*", "&"
    operand: object = None
    ctype: object = None


@dataclass
class Cast(Node):
    target: object = None  # CType
    operand: object = None
    ctype: object = None


@dataclass
class Binary(Node):
    op: str
    left: object = None
    right: object = None
    ctype: object = None


@dataclass
class Assign(Node):
    op: str  # "=", "+=", "-=", ...
    target: object = None
    value: object = None
    ctype: object = None


@dataclass
class IncDec(Node):
    op: str  # "++" or "--"
    prefix: bool = True
    operand: object = None
    ctype: object = None


@dataclass
class Index(Node):
    base: object = None
    index: object = None
    ctype: object = None


@dataclass
class Call(Node):
    name: str = ""
    args: list = field(default_factory=list)
    ctype: object = None
    symbol: object = None


@dataclass
class Ternary(Node):
    cond: object = None
    then: object = None
    other: object = None
    ctype: object = None


# --- statements -----------------------------------------------------------


@dataclass
class Block(Node):
    stmts: list = field(default_factory=list)


@dataclass
class ExprStmt(Node):
    expr: object = None


@dataclass
class If(Node):
    cond: object = None
    then: object = None
    other: object = None


@dataclass
class While(Node):
    cond: object = None
    body: object = None


@dataclass
class DoWhile(Node):
    body: object = None
    cond: object = None


@dataclass
class For(Node):
    init: object = None  # statement or None
    cond: object = None  # expression or None
    step: object = None  # expression or None
    body: object = None


@dataclass
class Return(Node):
    value: object = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Switch(Node):
    expr: object = None
    cases: list = field(default_factory=list)  # list of (value:int|None, stmts)


@dataclass
class VarDecl(Node):
    """One declared variable (local or global)."""

    name: str = ""
    ctype: object = None
    init: object = None  # expression, list of constants, or string
    symbol: object = None


@dataclass
class DeclStmt(Node):
    decls: list = field(default_factory=list)


# --- top level -------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    ctype: object = None
    symbol: object = None


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: object = None
    params: list = field(default_factory=list)
    body: object = None


@dataclass
class Program(Node):
    globals: list = field(default_factory=list)  # VarDecl
    functions: list = field(default_factory=list)  # FuncDef
