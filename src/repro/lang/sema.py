"""Semantic analysis for SmallC.

Builds symbol tables, resolves identifiers, checks types and lvalue-ness,
annotates every expression node with its :class:`~repro.lang.ctypes.CType`,
and records which locals must live in memory (arrays, and scalars whose
address is taken).
"""

from repro.errors import SemanticError
from repro.lang import astnodes as ast
from repro.lang import ctypes as ct
from repro.lang.builtins import BUILTINS


class Symbol:
    """A declared name.

    Attributes:
        name: source name.
        ctype: declared type.
        kind: "global", "local" or "param".
        addressed: True if ``&name`` appears or the type is an array, in
            which case the object needs a memory home.
    """

    def __init__(self, name, ctype, kind):
        self.name = name
        self.ctype = ctype
        self.kind = kind
        self.addressed = ctype.is_array()

    def __repr__(self):
        return "<Symbol %s:%s %s>" % (self.name, self.ctype, self.kind)


class FuncSymbol:
    def __init__(self, name, return_type, param_types, builtin=False):
        self.name = name
        self.return_type = return_type
        self.param_types = param_types
        self.builtin = builtin

    def __repr__(self):
        return "<Func %s>" % self.name


class Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def define(self, symbol):
        if symbol.name in self.names:
            raise SemanticError("redefinition of %r" % symbol.name)
        self.names[symbol.name] = symbol
        return symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    """Performs semantic analysis over a parsed program in place."""

    def __init__(self, program, max_args=4):
        self.program = program
        self.max_args = max_args
        self.globals = Scope()
        self.functions = {}
        self.current_fn = None

    # -- entry point ------------------------------------------------------

    def run(self):
        for name, (ret, params) in BUILTINS.items():
            self.functions[name] = FuncSymbol(name, ret, tuple(params), builtin=True)
        for decl in self.program.globals:
            self._global_decl(decl)
        # Two passes over functions so forward calls resolve.
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise SemanticError("redefinition of function %r" % fn.name)
            self.functions[fn.name] = FuncSymbol(
                fn.name,
                fn.return_type,
                tuple(ct.decay(p.ctype) for p in fn.params),
            )
        for fn in self.program.functions:
            self._function(fn)
        if "main" not in self.functions:
            raise SemanticError("program has no main function")
        return self.program

    # -- declarations -----------------------------------------------------

    def _global_decl(self, decl):
        if decl.ctype.is_void():
            raise SemanticError("global %r has void type" % decl.name)
        symbol = Symbol(decl.name, decl.ctype, "global")
        symbol.addressed = True  # globals always live in memory
        self.globals.define(symbol)
        decl.symbol = symbol
        self._check_global_init(decl)

    def _check_global_init(self, decl):
        init = decl.init
        if init is None:
            return
        if isinstance(init, ast.StrLit):
            if not (
                decl.ctype.is_array() and decl.ctype.elem.is_char()
            ) and not (decl.ctype.is_pointer() and decl.ctype.pointee.is_char()):
                raise SemanticError(
                    "string initializer for non-char object %r" % decl.name
                )
            return
        if isinstance(init, list):
            if not decl.ctype.is_array():
                raise SemanticError("brace initializer for scalar %r" % decl.name)
            flat = _flatten_init(init)
            if len(flat) > decl.ctype.size // max(decl.ctype.elem.size, 1) * (
                decl.ctype.elem.size and 1 or 1
            ):
                pass  # length checked during irgen with exact element counts
            for item in flat:
                if not isinstance(item, (ast.IntLit, ast.FloatLit, ast.StrLit)) and not (
                    isinstance(item, ast.Unary)
                    and item.op == "-"
                    and isinstance(item.operand, (ast.IntLit, ast.FloatLit))
                ):
                    raise SemanticError(
                        "global initializer for %r must be constant" % decl.name
                    )
            return
        if not isinstance(init, (ast.IntLit, ast.FloatLit, ast.StrLit)) and not (
            isinstance(init, ast.Unary)
            and init.op == "-"
            and isinstance(init.operand, (ast.IntLit, ast.FloatLit))
        ):
            raise SemanticError("global initializer for %r must be constant" % decl.name)

    # -- functions ----------------------------------------------------------

    def _function(self, fn):
        if len(fn.params) > self.max_args:
            raise SemanticError(
                "function %r has %d parameters; SmallC allows at most %d"
                % (fn.name, len(fn.params), self.max_args)
            )
        self.current_fn = self.functions[fn.name]
        scope = Scope(self.globals)
        for param in fn.params:
            if param.ctype.is_void():
                raise SemanticError("parameter %r has void type" % param.name)
            symbol = Symbol(param.name, ct.decay(param.ctype), "param")
            scope.define(symbol)
            param.symbol = symbol
        self._stmt(fn.body, scope, in_loop=False)
        self.current_fn = None

    # -- statements -----------------------------------------------------------

    def _stmt(self, node, scope, in_loop):
        if isinstance(node, ast.Block):
            inner = Scope(scope)
            for stmt in node.stmts:
                self._stmt(stmt, inner, in_loop)
        elif isinstance(node, ast.DeclStmt):
            for decl in node.decls:
                self._local_decl(decl, scope)
        elif isinstance(node, ast.ExprStmt):
            self._expr(node.expr, scope)
        elif isinstance(node, ast.If):
            self._scalar_expr(node.cond, scope)
            self._stmt(node.then, scope, in_loop)
            if node.other is not None:
                self._stmt(node.other, scope, in_loop)
        elif isinstance(node, ast.While):
            self._scalar_expr(node.cond, scope)
            self._stmt(node.body, scope, True)
        elif isinstance(node, ast.DoWhile):
            self._stmt(node.body, scope, True)
            self._scalar_expr(node.cond, scope)
        elif isinstance(node, ast.For):
            inner = Scope(scope)
            if node.init is not None:
                self._stmt(node.init, inner, in_loop)
            if node.cond is not None:
                self._scalar_expr(node.cond, inner)
            if node.step is not None:
                self._expr(node.step, inner)
            self._stmt(node.body, inner, True)
        elif isinstance(node, ast.Return):
            ret = self.current_fn.return_type
            if node.value is None:
                if not ret.is_void():
                    raise SemanticError(
                        "return without value in non-void function %r"
                        % self.current_fn.name
                    )
            else:
                if ret.is_void():
                    raise SemanticError(
                        "return with value in void function %r" % self.current_fn.name
                    )
                vtype = self._expr(node.value, scope)
                if not ct.assignable(ret, vtype):
                    raise SemanticError(
                        "cannot return %s from function returning %s" % (vtype, ret)
                    )
        elif isinstance(node, ast.Break):
            if not in_loop:
                raise SemanticError("break outside loop/switch")
        elif isinstance(node, ast.Continue):
            if not in_loop:
                raise SemanticError("continue outside loop")
        elif isinstance(node, ast.Switch):
            etype = self._expr(node.expr, scope)
            if not ct.decay(etype).is_integral():
                raise SemanticError("switch expression must be integral")
            seen = set()
            defaults = 0
            for value, stmts in node.cases:
                if value is None:
                    defaults = defaults + 1
                    if defaults > 1:
                        raise SemanticError("multiple default labels in switch")
                else:
                    if value in seen:
                        raise SemanticError("duplicate case %d" % value)
                    seen.add(value)
                for stmt in stmts:
                    # break inside a switch is permitted (in_loop=True models it)
                    self._stmt(stmt, scope, True)
        else:
            raise SemanticError("unknown statement node %r" % type(node).__name__)

    def _local_decl(self, decl, scope):
        if decl.ctype.is_void():
            raise SemanticError("local %r has void type" % decl.name)
        symbol = Symbol(decl.name, decl.ctype, "local")
        scope.define(symbol)
        decl.symbol = symbol
        init = decl.init
        if init is None:
            return
        if isinstance(init, list) or (
            isinstance(init, ast.StrLit) and decl.ctype.is_array()
        ):
            raise SemanticError(
                "local %r: aggregate initializers are only allowed on globals"
                % decl.name
            )
        itype = self._expr(init, scope)
        if not ct.assignable(decl.ctype, itype):
            raise SemanticError(
                "cannot initialise %s %r with %s" % (decl.ctype, decl.name, itype)
            )

    # -- expressions -------------------------------------------------------

    def _scalar_expr(self, node, scope):
        etype = self._expr(node, scope)
        if not ct.decay(etype).is_scalar():
            raise SemanticError("condition is not scalar: %s" % etype)
        return etype

    def _expr(self, node, scope):
        etype = self._expr_inner(node, scope)
        node.ctype = etype
        return etype

    def _expr_inner(self, node, scope):
        if isinstance(node, ast.IntLit):
            return ct.INT
        if isinstance(node, ast.FloatLit):
            return ct.FLOAT
        if isinstance(node, ast.StrLit):
            return ct.PointerType(ct.CHAR)
        if isinstance(node, ast.Ident):
            symbol = scope.lookup(node.name)
            if symbol is None:
                raise SemanticError(
                    "undeclared identifier %r (line %d)" % (node.name, node.line)
                )
            node.symbol = symbol
            return symbol.ctype
        if isinstance(node, ast.Unary):
            return self._unary(node, scope)
        if isinstance(node, ast.Cast):
            otype = self._expr(node.operand, scope)
            if not ct.decay(otype).is_scalar():
                raise SemanticError("cast of non-scalar %s" % otype)
            if node.target.is_void():
                return ct.VOID
            return node.target
        if isinstance(node, ast.Binary):
            return self._binary(node, scope)
        if isinstance(node, ast.Assign):
            return self._assign(node, scope)
        if isinstance(node, ast.IncDec):
            otype = self._expr(node.operand, scope)
            self._require_lvalue(node.operand)
            if not (ct.decay(otype).is_integral() or ct.decay(otype).is_pointer()):
                raise SemanticError("++/-- needs integer or pointer, got %s" % otype)
            return ct.decay(otype)
        if isinstance(node, ast.Index):
            btype = ct.decay(self._expr(node.base, scope))
            itype = ct.decay(self._expr(node.index, scope))
            if not btype.is_pointer():
                raise SemanticError("indexing non-pointer %s" % btype)
            if not itype.is_integral():
                raise SemanticError("array index is not integral: %s" % itype)
            return btype.pointee
        if isinstance(node, ast.Call):
            return self._call(node, scope)
        if isinstance(node, ast.Ternary):
            self._scalar_expr(node.cond, scope)
            ttype = ct.decay(self._expr(node.then, scope))
            otype = ct.decay(self._expr(node.other, scope))
            if ttype.is_arithmetic() and otype.is_arithmetic():
                return ct.common_arith(ttype, otype)
            if ttype.is_pointer() and (otype.is_pointer() or otype.is_integral()):
                return ttype
            if otype.is_pointer() and ttype.is_integral():
                return otype
            raise SemanticError("incompatible ternary arms: %s vs %s" % (ttype, otype))
        raise SemanticError("unknown expression node %r" % type(node).__name__)

    def _unary(self, node, scope):
        if node.op == "&":
            otype = self._expr(node.operand, scope)
            self._require_lvalue(node.operand)
            if isinstance(node.operand, ast.Ident):
                node.operand.symbol.addressed = True
            if otype.is_array():
                return ct.PointerType(otype.elem)
            return ct.PointerType(otype)
        otype = ct.decay(self._expr(node.operand, scope))
        if node.op == "*":
            if not otype.is_pointer():
                raise SemanticError("dereference of non-pointer %s" % otype)
            if otype.pointee.is_void():
                raise SemanticError("dereference of void pointer")
            return otype.pointee
        if node.op == "-":
            if not otype.is_arithmetic():
                raise SemanticError("unary minus on %s" % otype)
            return ct.FLOAT if otype.is_float() else ct.INT
        if node.op == "!":
            if not otype.is_scalar():
                raise SemanticError("! on non-scalar %s" % otype)
            return ct.INT
        if node.op == "~":
            if not otype.is_integral():
                raise SemanticError("~ on non-integer %s" % otype)
            return ct.INT
        raise SemanticError("unknown unary operator %r" % node.op)

    def _binary(self, node, scope):
        op = node.op
        ltype = ct.decay(self._expr(node.left, scope))
        rtype = ct.decay(self._expr(node.right, scope))
        if op in ("&&", "||"):
            if not (ltype.is_scalar() and rtype.is_scalar()):
                raise SemanticError("%s on non-scalars" % op)
            return ct.INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if ltype.is_arithmetic() and rtype.is_arithmetic():
                return ct.INT
            if ltype.is_pointer() and (rtype.is_pointer() or rtype.is_integral()):
                return ct.INT
            if rtype.is_pointer() and ltype.is_integral():
                return ct.INT
            raise SemanticError("cannot compare %s with %s" % (ltype, rtype))
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (ltype.is_integral() and rtype.is_integral()):
                raise SemanticError("%s needs integers, got %s and %s" % (op, ltype, rtype))
            return ct.INT
        if op == "+":
            if ltype.is_pointer() and rtype.is_integral():
                return ltype
            if rtype.is_pointer() and ltype.is_integral():
                return rtype
            if ltype.is_arithmetic() and rtype.is_arithmetic():
                return ct.common_arith(ltype, rtype)
            raise SemanticError("cannot add %s and %s" % (ltype, rtype))
        if op == "-":
            if ltype.is_pointer() and rtype.is_pointer():
                return ct.INT
            if ltype.is_pointer() and rtype.is_integral():
                return ltype
            if ltype.is_arithmetic() and rtype.is_arithmetic():
                return ct.common_arith(ltype, rtype)
            raise SemanticError("cannot subtract %s from %s" % (rtype, ltype))
        if op in ("*", "/"):
            if not (ltype.is_arithmetic() and rtype.is_arithmetic()):
                raise SemanticError("%s needs numbers, got %s and %s" % (op, ltype, rtype))
            return ct.common_arith(ltype, rtype)
        raise SemanticError("unknown binary operator %r" % op)

    def _assign(self, node, scope):
        ttype = self._expr(node.target, scope)
        self._require_lvalue(node.target)
        if ttype.is_array():
            raise SemanticError("cannot assign to an array")
        vtype = self._expr(node.value, scope)
        if node.op == "=":
            if not ct.assignable(ttype, vtype):
                raise SemanticError("cannot assign %s to %s" % (vtype, ttype))
            return ttype
        # Compound assignment: target op= value.
        base_op = node.op[:-1]
        if base_op in ("%", "&", "|", "^", "<<", ">>"):
            if not (ttype.is_integral() and ct.decay(vtype).is_integral()):
                raise SemanticError("%s needs integers" % node.op)
        elif base_op in ("+", "-"):
            if ttype.is_pointer():
                if not ct.decay(vtype).is_integral():
                    raise SemanticError("pointer %s needs integer rhs" % node.op)
            elif not (ttype.is_arithmetic() and ct.decay(vtype).is_arithmetic()):
                raise SemanticError("%s on non-numbers" % node.op)
        else:  # *= /=
            if not (ttype.is_arithmetic() and ct.decay(vtype).is_arithmetic()):
                raise SemanticError("%s on non-numbers" % node.op)
        return ttype

    def _call(self, node, scope):
        fsym = self.functions.get(node.name)
        if fsym is None:
            raise SemanticError(
                "call to undeclared function %r (line %d)" % (node.name, node.line)
            )
        node.symbol = fsym
        if len(node.args) != len(fsym.param_types):
            raise SemanticError(
                "%s expects %d arguments, got %d"
                % (node.name, len(fsym.param_types), len(node.args))
            )
        for arg, ptype in zip(node.args, fsym.param_types):
            atype = self._expr(arg, scope)
            if not ct.assignable(ptype, atype):
                raise SemanticError(
                    "argument of type %s incompatible with parameter %s in call to %s"
                    % (atype, ptype, node.name)
                )
        return fsym.return_type

    def _require_lvalue(self, node):
        if isinstance(node, ast.Ident):
            return
        if isinstance(node, ast.Index):
            return
        if isinstance(node, ast.Unary) and node.op == "*":
            return
        raise SemanticError("expression is not an lvalue")


def _flatten_init(init):
    out = []
    for item in init:
        if isinstance(item, list):
            out.extend(_flatten_init(item))
        else:
            out.append(item)
    return out


def analyze(program, max_args=4):
    """Run semantic analysis on ``program`` in place and return it."""
    return Analyzer(program, max_args=max_args).run()
