"""Hand-written lexer for SmallC.

Supports decimal/hex/octal integer constants, float constants, character
constants with the usual escapes, string literals, ``//`` and ``/* */``
comments, identifiers and the punctuator set in
:mod:`repro.lang.tokens`.
"""

from repro.errors import LexError
from repro.lang.tokens import (
    CHARCONST,
    EOF,
    FLOATCONST,
    ID,
    INTCONST,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATORS,
    STRING,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\x00",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "a": "\a",
}


class Lexer:
    """Converts SmallC source text into a token list."""

    def __init__(self, source, filename="<source>"):
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor helpers -------------------------------------

    def _peek(self, ahead=0):
        i = self.pos + ahead
        if i < len(self.src):
            return self.src[i]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line = self.line + 1
                    self.col = 1
                else:
                    self.col = self.col + 1
                self.pos = self.pos + 1

    def _error(self, message):
        raise LexError(message, self.line, self.col)

    # -- scanning -------------------------------------------------------

    def tokens(self):
        """Scan the whole source and return the token list (ending in EOF)."""
        out = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind == EOF:
                return out

    def _skip_space_and_comments(self):
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while True:
                    if not self._peek():
                        self._error("unterminated comment")
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    def _next_token(self):
        self._skip_space_and_comments()
        line, col = self.line, self.col
        ch = self._peek()
        if not ch:
            return Token(EOF, "", line=line, col=col)
        if ch.isalpha() or ch == "_":
            return self._identifier(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, col)
        if ch == "'":
            return self._charconst(line, col)
        if ch == '"':
            return self._string(line, col)
        for punct in PUNCTUATORS:
            if self.src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, line=line, col=col)
        self._error("unexpected character %r" % ch)

    def _identifier(self, line, col):
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start : self.pos]
        kind = KEYWORD if text in KEYWORDS else ID
        return Token(kind, text, line=line, col=col)

    def _number(self, line, col):
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.src[start : self.pos]
            return Token(INTCONST, text, value=int(text, 16), line=line, col=col)
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.src[start : self.pos]
        if is_float:
            return Token(FLOATCONST, text, value=float(text), line=line, col=col)
        if text.startswith("0") and len(text) > 1:
            return Token(INTCONST, text, value=int(text, 8), line=line, col=col)
        return Token(INTCONST, text, value=int(text, 10), line=line, col=col)

    def _escape(self):
        self._advance()  # backslash
        ch = self._peek()
        if not ch:
            self._error("unterminated escape")
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF" and len(digits) < 2:
                digits = digits + self._peek()
                self._advance()
            if not digits:
                self._error("bad hex escape")
            return chr(int(digits, 16))
        self._error("unknown escape \\%s" % ch)

    def _charconst(self, line, col):
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = ord(self._escape())
        else:
            if not self._peek() or self._peek() == "'":
                self._error("empty character constant")
            value = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            self._error("unterminated character constant")
        self._advance()
        return Token(CHARCONST, "'%c'" % value, value=value, line=line, col=col)

    def _string(self, line, col):
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._escape())
            else:
                chars.append(ch)
                self._advance()
        text = "".join(chars)
        return Token(STRING, text, value=text, line=line, col=col)


def tokenize(source, filename="<source>"):
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source, filename).tokens()
