"""Builtin (trap) functions provided by the emulated runtime.

These correspond to the operating-system services the paper's test programs
used for I/O.  They are invoked through a single ``trap`` instruction on
both machines, so their cost is identical on the baseline and
branch-register machines and they never perturb the comparison (DESIGN.md
§3).  Everything else (``puts``, ``print_int``, ``strlen``...) is written
in SmallC and compiled with the program -- see :data:`repro.lang.frontend.STDLIB_SOURCE`.
"""

from repro.lang import ctypes as ct

# name -> (return type, parameter types)
BUILTINS = {
    "getchar": (ct.INT, ()),
    "putchar": (ct.INT, (ct.INT,)),
    "exit": (ct.VOID, (ct.INT,)),
}


def is_builtin(name):
    return name in BUILTINS
