"""Lowering of the SmallC AST into machine-independent IR.

Storage assignment:

* scalar parameters and scalar locals live in virtual registers;
* arrays, and scalars whose address is taken, live in the stack frame
  (accessed through ``laddr``);
* globals live in the data segment (accessed through ``la``).

Floating-point constants are interned in a constant pool in the data
segment and loaded with ``la``/``lf``, as a load/store machine requires.
"""

from repro.errors import CodegenError
from repro.lang import astnodes as ast
from repro.lang import ctypes as ct
from repro.rtl import instr as I
from repro.rtl.function import GlobalVar, IRFunction, IRProgram
from repro.rtl.operand import FLT, INT, Imm, Label, Sym, VReg


def _is_power_of_two(n):
    return n > 0 and (n & (n - 1)) == 0


class FunctionLowering:
    """Lowers one function body to IR."""

    def __init__(self, program_gen, funcdef):
        self.pg = program_gen
        self.funcdef = funcdef
        self.fn = IRFunction(
            funcdef.name,
            return_float=funcdef.return_type.is_float(),
        )
        self.storage = {}  # Symbol -> ("reg", VReg) | ("frame", Local) | ("global",)
        self.break_labels = []
        self.continue_labels = []
        # Source line of the statement currently being lowered; every
        # emitted instruction inherits it (debug-map granularity is the
        # statement, which is what the profiler's hot listing reports).
        self.cur_line = getattr(funcdef, "line", 0) or 0

    # -- helpers -----------------------------------------------------------

    def emit(self, instr):
        if not instr.line:
            instr.line = self.cur_line
        return self.fn.emit(instr)

    def _vreg_for(self, ctype):
        return self.fn.new_vreg(FLT if ctype.is_float() else INT)

    def _materialize(self, operand, cls=INT):
        """Force an operand into a virtual register."""
        if isinstance(operand, VReg):
            return operand
        dst = self.fn.new_vreg(cls)
        if isinstance(operand, Imm):
            self.emit(I.li(dst, operand.value))
            return dst
        raise CodegenError("cannot materialize %r" % (operand,))

    def _load_float_const(self, value):
        sym = self.pg.intern_float(value)
        addr = self.fn.new_vreg(INT)
        self.emit(I.la(addr, Sym(sym)))
        dst = self.fn.new_vreg(FLT)
        self.emit(I.load("lf", dst, addr, 0))
        return dst

    def _coerce(self, operand, from_type, to_type):
        """Insert int<->float conversions when needed; returns operand."""
        from_type = ct.decay(from_type)
        to_type = ct.decay(to_type)
        if from_type.is_float() and not to_type.is_float():
            src = operand
            if isinstance(src, Imm):
                raise CodegenError("float immediate in int context")
            dst = self.fn.new_vreg(INT)
            self.emit(I.unop("cvtfi", dst, src))
            return dst
        if to_type.is_float() and not from_type.is_float():
            if isinstance(operand, Imm):
                return self._load_float_const(float(operand.value))
            dst = self.fn.new_vreg(FLT)
            self.emit(I.unop("cvtif", dst, operand))
            return dst
        return operand

    # -- storage -----------------------------------------------------------

    def setup_storage(self):
        for param, psym in zip(
            self.funcdef.params, [p.symbol for p in self.funcdef.params]
        ):
            vreg = self._vreg_for(psym.ctype)
            self.fn.params.append((vreg, psym.ctype.is_float()))
            if psym.addressed:
                local = self.fn.add_local(psym.name, max(psym.ctype.size, 4))
                self.storage[psym] = ("frame", local)
                # Spill the incoming argument to its frame home.
                addr = self.fn.new_vreg(INT)
                self.emit(I.Instr("laddr", dst=addr, srcs=[local]))
                op = "sf" if psym.ctype.is_float() else "sw"
                self.emit(I.store(op, vreg, addr, 0))
            else:
                self.storage[psym] = ("reg", vreg)

    def _storage_for(self, symbol):
        if symbol in self.storage:
            return self.storage[symbol]
        if symbol.kind == "global":
            return ("global",)
        # First sight of a local: allocate now (decl statements call this).
        if symbol.addressed:
            local = self.fn.add_local(symbol.name, max(symbol.ctype.size, 4))
            slot = ("frame", local)
        else:
            slot = ("reg", self._vreg_for(symbol.ctype))
        self.storage[symbol] = slot
        return slot

    # -- statements -----------------------------------------------------------

    def lower(self):
        self.setup_storage()
        self.stmt(self.funcdef.body)
        # Implicit return at the end of the function body.
        last = self.fn.instrs[-1] if self.fn.instrs else None
        if last is None or last.op != "ret":
            if self.funcdef.return_type.is_void():
                self.emit(I.ret())
            else:
                zero = self.fn.new_vreg(
                    FLT if self.funcdef.return_type.is_float() else INT
                )
                if self.funcdef.return_type.is_float():
                    zero = self._load_float_const(0.0)
                else:
                    self.emit(I.li(zero, 0))
                self.emit(I.ret(zero))
        return self.fn

    def stmt(self, node):
        line = getattr(node, "line", 0)
        if line:
            self.cur_line = line
        if isinstance(node, ast.Block):
            for stmt in node.stmts:
                self.stmt(stmt)
        elif isinstance(node, ast.DeclStmt):
            for decl in node.decls:
                self._local_decl(decl)
        elif isinstance(node, ast.ExprStmt):
            self.expr_value(node.expr, discard=True)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.DoWhile):
            self._dowhile(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Return):
            self._return(node)
        elif isinstance(node, ast.Break):
            if not self.break_labels:
                raise CodegenError("break outside loop")
            self.emit(I.jump(Label(self.break_labels[-1])))
        elif isinstance(node, ast.Continue):
            if not self.continue_labels:
                raise CodegenError("continue outside loop")
            self.emit(I.jump(Label(self.continue_labels[-1])))
        elif isinstance(node, ast.Switch):
            self._switch(node)
        else:
            raise CodegenError("cannot lower statement %r" % type(node).__name__)

    def _local_decl(self, decl):
        slot = self._storage_for(decl.symbol)
        if decl.init is None:
            return
        value = self.expr_value(decl.init)
        value = self._coerce(value, decl.init.ctype, decl.ctype)
        if slot[0] == "reg":
            value = self._materialize(
                value, FLT if decl.ctype.is_float() else INT
            )
            op = "fmov" if decl.ctype.is_float() else "mov"
            self.emit(I.unop(op, slot[1], value))
        else:
            addr = self.fn.new_vreg(INT)
            self.emit(I.Instr("laddr", dst=addr, srcs=[slot[1]]))
            value = self._materialize(
                value, FLT if decl.ctype.is_float() else INT
            )
            self.emit(I.store(_store_op(decl.ctype), value, addr, 0))

    def _if(self, node):
        else_label = self.fn.new_label("Lelse")
        end_label = self.fn.new_label("Lend")
        target = else_label if node.other is not None else end_label
        self.cond(node.cond, None, target)
        self.stmt(node.then)
        if node.other is not None:
            self.emit(I.jump(Label(end_label)))
            self.emit(I.label(else_label))
            self.stmt(node.other)
        self.emit(I.label(end_label))

    def _while(self, node):
        # Rotate the loop: jump to the test at the bottom, as the paper's
        # Figure 3 does (jmp L17 ... L18: body; L17: test; branch L18).
        head = self.fn.new_label("Lbody")
        test = self.fn.new_label("Ltest")
        end = self.fn.new_label("Lend")
        self.emit(I.jump(Label(test)))
        self.emit(I.label(head))
        self.break_labels.append(end)
        self.continue_labels.append(test)
        self.stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(I.label(test))
        self.cur_line = getattr(node, "line", 0) or self.cur_line
        self.cond(node.cond, head, None)
        self.emit(I.label(end))

    def _dowhile(self, node):
        head = self.fn.new_label("Lbody")
        test = self.fn.new_label("Ltest")
        end = self.fn.new_label("Lend")
        self.emit(I.label(head))
        self.break_labels.append(end)
        self.continue_labels.append(test)
        self.stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(I.label(test))
        self.cur_line = getattr(node, "line", 0) or self.cur_line
        self.cond(node.cond, head, None)
        self.emit(I.label(end))

    def _for(self, node):
        head = self.fn.new_label("Lbody")
        test = self.fn.new_label("Ltest")
        step = self.fn.new_label("Lstep")
        end = self.fn.new_label("Lend")
        if node.init is not None:
            self.stmt(node.init)
        self.emit(I.jump(Label(test)))
        self.emit(I.label(head))
        self.break_labels.append(end)
        self.continue_labels.append(step)
        self.stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(I.label(step))
        self.cur_line = getattr(node, "line", 0) or self.cur_line
        if node.step is not None:
            self.expr_value(node.step, discard=True)
        self.emit(I.label(test))
        if node.cond is not None:
            self.cond(node.cond, head, None)
        else:
            self.emit(I.jump(Label(head)))
        self.emit(I.label(end))

    def _return(self, node):
        if node.value is None:
            self.emit(I.ret())
            return
        value = self.expr_value(node.value)
        value = self._coerce(value, node.value.ctype, self.funcdef.return_type)
        value = self._materialize(
            value, FLT if self.funcdef.return_type.is_float() else INT
        )
        self.emit(I.ret(value))

    # -- switch ----------------------------------------------------------------

    def _switch(self, node):
        selector = self._materialize(self.expr_value(node.expr))
        end = self.fn.new_label("Lswend")
        case_labels = []
        default_label = end
        values = []
        for value, _stmts in node.cases:
            label = self.fn.new_label("Lcase")
            case_labels.append(label)
            if value is None:
                default_label = label
            else:
                values.append(value)
        if self._use_jump_table(values):
            self._switch_table(selector, node, case_labels, default_label, values)
        else:
            self._switch_chain(selector, node, case_labels, default_label)
        # Case bodies fall through into each other, as in C.
        self.break_labels.append(end)
        for (value, stmts), label in zip(node.cases, case_labels):
            self.emit(I.label(label))
            for stmt in stmts:
                self.stmt(stmt)
        self.break_labels.pop()
        self.emit(I.label(end))

    def _use_jump_table(self, values):
        if len(values) < 4:
            return False
        span = max(values) - min(values) + 1
        return span <= 3 * len(values)

    def _switch_chain(self, selector, node, case_labels, default_label):
        for (value, _stmts), label in zip(node.cases, case_labels):
            if value is None:
                continue
            self.emit(I.branch("eq", selector, Imm(value), Label(label)))
        self.emit(I.jump(Label(default_label)))

    def _switch_table(self, selector, node, case_labels, default_label, values):
        """Indirect jump through a table of labels, as in the paper's
        Section 4 'Indirect Jumps' example."""
        low, high = min(values), max(values)
        span = high - low + 1
        table = [default_label] * span
        for (value, _stmts), label in zip(node.cases, case_labels):
            if value is not None:
                table[value - low] = label
        sym = self.pg.add_jump_table(table)
        self.emit(I.branch("lt", selector, Imm(low), Label(default_label)))
        self.emit(I.branch("gt", selector, Imm(high), Label(default_label)))
        index = self.fn.new_vreg(INT)
        if low:
            self.emit(I.binop("sub", index, selector, Imm(low)))
        else:
            self.emit(I.unop("mov", index, selector))
        scaled = self.fn.new_vreg(INT)
        self.emit(I.binop("shl", scaled, index, Imm(2)))
        base = self.fn.new_vreg(INT)
        self.emit(I.la(base, Sym(sym)))
        addr = self.fn.new_vreg(INT)
        self.emit(I.binop("add", addr, base, scaled))
        target = self.fn.new_vreg(INT)
        self.emit(I.load("lw", target, addr, 0))
        ijmp = I.ijump(target)
        # Record the possible targets so the CFG builder can add edges.
        ijmp.args = sorted(set(table))
        self.emit(ijmp)

    # -- conditions ---------------------------------------------------------

    def cond(self, node, true_label, false_label):
        """Emit control flow for a boolean context.

        Exactly one of ``true_label``/``false_label`` may be None, meaning
        "fall through".
        """
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            self._shortcircuit(node, true_label, false_label)
            return
        if isinstance(node, ast.Unary) and node.op == "!":
            self.cond(node.operand, false_label, true_label)
            return
        if isinstance(node, ast.Binary) and node.op in (
            "==", "!=", "<", ">", "<=", ">=",
        ):
            self._relational_cond(node, true_label, false_label)
            return
        # Scalar truth test: value != 0.
        value = self.expr_value(node)
        if node.ctype is not None and ct.decay(node.ctype).is_float():
            value = self._materialize(value, FLT)
            zero = self._load_float_const(0.0)
            self._emit_cond_branch("ne", value, zero, true_label, false_label, True)
        else:
            value = self._materialize(value)
            self._emit_cond_branch(
                "ne", value, Imm(0), true_label, false_label, False
            )

    def _relational_cond(self, node, true_label, false_label):
        relation = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt",
                    "<=": "le", ">=": "ge"}[node.op]
        ltype = ct.decay(node.left.ctype)
        rtype = ct.decay(node.right.ctype)
        use_float = ltype.is_float() or rtype.is_float()
        left = self.expr_value(node.left)
        right = self.expr_value(node.right)
        if use_float:
            left = self._coerce(left, ltype, ct.FLOAT)
            right = self._coerce(right, rtype, ct.FLOAT)
            left = self._materialize(left, FLT)
            right = self._materialize(right, FLT)
        else:
            left = self._materialize(left)
            if not isinstance(right, Imm):
                right = self._materialize(right)
        self._emit_cond_branch(relation, left, right, true_label, false_label, use_float)

    def _emit_cond_branch(self, relation, left, right, true_label, false_label, is_float):
        if true_label is not None and false_label is not None:
            self.emit(I.branch(relation, left, right, Label(true_label), float_=is_float))
            self.emit(I.jump(Label(false_label)))
        elif true_label is not None:
            self.emit(I.branch(relation, left, right, Label(true_label), float_=is_float))
        else:
            negated = I.NEGATED[relation]
            self.emit(
                I.branch(negated, left, right, Label(false_label), float_=is_float)
            )

    def _shortcircuit(self, node, true_label, false_label):
        if node.op == "&&":
            fall_false = false_label
            local_false = fall_false or self.fn.new_label("Lsc")
            self.cond(node.left, None, local_false)
            self.cond(node.right, true_label, false_label)
            if fall_false is None:
                self.emit(I.label(local_false))
        else:  # ||
            fall_true = true_label
            local_true = fall_true or self.fn.new_label("Lsc")
            self.cond(node.left, local_true, None)
            self.cond(node.right, true_label, false_label)
            if fall_true is None:
                self.emit(I.label(local_true))

    # -- expressions as values ---------------------------------------------

    def expr_value(self, node, discard=False):
        """Evaluate an expression; returns a VReg or Imm operand.

        With ``discard=True`` the value is not needed (expression
        statements), letting assignment/call avoid dead copies.
        """
        if isinstance(node, ast.IntLit):
            return Imm(node.value)
        if isinstance(node, ast.FloatLit):
            return self._load_float_const(node.value)
        if isinstance(node, ast.StrLit):
            sym = self.pg.program.intern_string(node.value)
            dst = self.fn.new_vreg(INT)
            self.emit(I.la(dst, Sym(sym)))
            return dst
        if isinstance(node, ast.Ident):
            return self._load_lvalue(self.lvalue(node), node.ctype)
        if isinstance(node, ast.Index) or (
            isinstance(node, ast.Unary) and node.op == "*"
        ):
            return self._load_lvalue(self.lvalue(node), node.ctype)
        if isinstance(node, ast.Unary):
            return self._unary_value(node)
        if isinstance(node, ast.Cast):
            value = self.expr_value(node.operand)
            return self._coerce(value, node.operand.ctype, node.ctype)
        if isinstance(node, ast.Binary):
            return self._binary_value(node)
        if isinstance(node, ast.Assign):
            return self._assign_value(node, discard)
        if isinstance(node, ast.IncDec):
            return self._incdec_value(node, discard)
        if isinstance(node, ast.Call):
            return self._call_value(node)
        if isinstance(node, ast.Ternary):
            return self._ternary_value(node)
        raise CodegenError("cannot lower expression %r" % type(node).__name__)

    # -- lvalues --------------------------------------------------------------

    def lvalue(self, node):
        """Lower an lvalue expression to a location descriptor:

        ``("reg", vreg, is_float)`` or ``("mem", base_vreg, offset, ctype)``.
        """
        if isinstance(node, ast.Ident):
            symbol = node.symbol
            slot = self._storage_for(symbol)
            if slot[0] == "reg":
                return ("reg", slot[1], symbol.ctype.is_float())
            if slot[0] == "frame":
                addr = self.fn.new_vreg(INT)
                self.emit(I.Instr("laddr", dst=addr, srcs=[slot[1]]))
                return ("mem", addr, 0, symbol.ctype)
            addr = self.fn.new_vreg(INT)
            self.emit(I.la(addr, Sym(symbol.name)))
            return ("mem", addr, 0, symbol.ctype)
        if isinstance(node, ast.Unary) and node.op == "*":
            base = self._materialize(self.expr_value(node.operand))
            return ("mem", base, 0, node.ctype)
        if isinstance(node, ast.Index):
            return self._index_lvalue(node)
        raise CodegenError("not an lvalue: %r" % type(node).__name__)

    def _index_lvalue(self, node):
        base_type = ct.decay(node.base.ctype)
        addr = self._address_of(node.base)
        elem = node.ctype
        size = ct.element_size(base_type)
        index = self.expr_value(node.index)
        index = self._coerce(index, node.index.ctype, ct.INT)
        if isinstance(index, Imm):
            return ("mem", addr, index.value * size, elem)
        scaled = self.fn.new_vreg(INT)
        if size == 1:
            scaled = index
        elif _is_power_of_two(size):
            self.emit(I.binop("shl", scaled, index, Imm(size.bit_length() - 1)))
        else:
            self.emit(I.binop("mul", scaled, index, Imm(size)))
        total = self.fn.new_vreg(INT)
        self.emit(I.binop("add", total, addr, scaled))
        return ("mem", total, 0, elem)

    def _address_of(self, node):
        """Address of an array/pointer expression (for indexing)."""
        etype = node.ctype
        if etype.is_array():
            # The lvalue of an array *is* its address.
            loc = self.lvalue(node)
            if loc[0] != "mem":
                raise CodegenError("array not in memory")
            _kind, base, offset, _elem = loc
            if offset == 0:
                return base
            addr = self.fn.new_vreg(INT)
            self.emit(I.binop("add", addr, base, Imm(offset)))
            return addr
        return self._materialize(self.expr_value(node))

    def _load_lvalue(self, loc, ctype):
        if loc[0] == "reg":
            return loc[1]
        _kind, base, offset, _ctype = loc
        if ctype.is_array():
            # Arrays decay: the value is the address.
            if offset == 0:
                return base
            addr = self.fn.new_vreg(INT)
            self.emit(I.binop("add", addr, base, Imm(offset)))
            return addr
        dst = self._vreg_for(ctype)
        self.emit(I.load(_load_op(ctype), dst, base, offset))
        return dst

    def _store_lvalue(self, loc, value, value_type):
        if loc[0] == "reg":
            vreg, is_float = loc[1], loc[2]
            value = self._materialize(value, FLT if is_float else INT)
            self.emit(I.unop("fmov" if is_float else "mov", vreg, value))
            return vreg
        _kind, base, offset, ctype = loc
        value = self._materialize(value, FLT if ctype.is_float() else INT)
        self.emit(I.store(_store_op(ctype), value, base, offset))
        return value

    # -- operators --------------------------------------------------------------

    def _unary_value(self, node):
        if node.op == "&":
            loc = self.lvalue(node.operand)
            if loc[0] != "mem":
                raise CodegenError("address of register variable")
            _kind, base, offset, _ctype = loc
            if offset == 0:
                return base
            dst = self.fn.new_vreg(INT)
            self.emit(I.binop("add", dst, base, Imm(offset)))
            return dst
        if node.op == "-":
            value = self.expr_value(node.operand)
            if isinstance(value, Imm):
                return Imm(-value.value)
            if ct.decay(node.operand.ctype).is_float():
                dst = self.fn.new_vreg(FLT)
                self.emit(I.unop("fneg", dst, value))
                return dst
            dst = self.fn.new_vreg(INT)
            self.emit(I.unop("neg", dst, value))
            return dst
        if node.op == "~":
            value = self.expr_value(node.operand)
            if isinstance(value, Imm):
                return Imm(~value.value)
            dst = self.fn.new_vreg(INT)
            self.emit(I.unop("not", dst, value))
            return dst
        if node.op == "!":
            return self._bool_value(node)
        raise CodegenError("unknown unary %r" % node.op)

    def _bool_value(self, node):
        """Materialize a boolean expression as 0/1."""
        dst = self.fn.new_vreg(INT)
        true_label = self.fn.new_label("Ltrue")
        end_label = self.fn.new_label("Lbool")
        self.cond(node, true_label, None)
        self.emit(I.li(dst, 0))
        self.emit(I.jump(Label(end_label)))
        self.emit(I.label(true_label))
        self.emit(I.li(dst, 1))
        self.emit(I.label(end_label))
        return dst

    def _binary_value(self, node):
        op = node.op
        if op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
            return self._bool_value(node)
        ltype = ct.decay(node.left.ctype)
        rtype = ct.decay(node.right.ctype)
        # Pointer arithmetic.
        if op in ("+", "-") and (ltype.is_pointer() or rtype.is_pointer()):
            return self._pointer_arith(node, ltype, rtype)
        if ltype.is_float() or rtype.is_float():
            left = self._coerce(self.expr_value(node.left), ltype, ct.FLOAT)
            right = self._coerce(self.expr_value(node.right), rtype, ct.FLOAT)
            left = self._materialize(left, FLT)
            right = self._materialize(right, FLT)
            dst = self.fn.new_vreg(FLT)
            fop = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
            self.emit(I.binop(fop, dst, left, right))
            return dst
        iop = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
        }[op]
        left = self.expr_value(node.left)
        right = self.expr_value(node.right)
        if isinstance(left, Imm) and isinstance(right, Imm):
            return Imm(_const_fold(iop, left.value, right.value))
        if isinstance(left, Imm):
            if iop in I.COMMUTATIVE:
                left, right = right, left
            else:
                left = self._materialize(left)
        dst = self.fn.new_vreg(INT)
        self.emit(I.binop(iop, dst, self._materialize(left), right))
        return dst

    def _pointer_arith(self, node, ltype, rtype):
        op = node.op
        if op == "-" and ltype.is_pointer() and rtype.is_pointer():
            left = self._materialize(self.expr_value(node.left))
            right = self._materialize(self.expr_value(node.right))
            diff = self.fn.new_vreg(INT)
            self.emit(I.binop("sub", diff, left, right))
            size = ct.element_size(ltype)
            if size == 1:
                return diff
            dst = self.fn.new_vreg(INT)
            if _is_power_of_two(size):
                self.emit(I.binop("shr", dst, diff, Imm(size.bit_length() - 1)))
            else:
                self.emit(I.binop("div", dst, diff, Imm(size)))
            return dst
        if ltype.is_pointer():
            pointer_node, int_node, ptype = node.left, node.right, ltype
        else:
            pointer_node, int_node, ptype = node.right, node.left, rtype
        pointer = self._materialize(self.expr_value(pointer_node))
        offset = self.expr_value(int_node)
        size = ct.element_size(ptype)
        if isinstance(offset, Imm):
            delta = offset.value * size
            if delta == 0:
                return pointer
            dst = self.fn.new_vreg(INT)
            self.emit(I.binop(op_for(op), dst, pointer, Imm(delta)))
            return dst
        offset = self._materialize(offset)
        if size != 1:
            scaled = self.fn.new_vreg(INT)
            if _is_power_of_two(size):
                self.emit(I.binop("shl", scaled, offset, Imm(size.bit_length() - 1)))
            else:
                self.emit(I.binop("mul", scaled, offset, Imm(size)))
            offset = scaled
        dst = self.fn.new_vreg(INT)
        self.emit(I.binop(op_for(op), dst, pointer, offset))
        return dst

    def _assign_value(self, node, discard):
        target_type = node.target.ctype
        if node.op == "=":
            value = self.expr_value(node.value)
            value = self._coerce(value, node.value.ctype, target_type)
            loc = self.lvalue(node.target)
            return self._store_lvalue(loc, value, target_type)
        # Compound assignment: evaluate the location once.
        loc = self.lvalue(node.target)
        current = self._load_lvalue(loc, target_type)
        base_op = node.op[:-1]
        synthetic = ast.Binary(op=base_op, left=node.target, right=node.value)
        synthetic.left = _ValueWrapper(current, target_type)
        synthetic.right = node.value
        synthetic.ctype = node.ctype
        result = self._binary_wrapped(synthetic, target_type)
        result = self._coerce(result, _result_type(base_op, target_type, node.value.ctype), target_type)
        return self._store_lvalue(loc, result, target_type)

    def _binary_wrapped(self, node, target_type):
        """Binary lowering where the left operand may be a pre-evaluated
        value (used by compound assignment and ++/--)."""
        op = node.op
        ltype = ct.decay(
            node.left.ctype if not isinstance(node.left, _ValueWrapper) else node.left.ctype
        )
        rtype = ct.decay(node.right.ctype)

        def left_value():
            if isinstance(node.left, _ValueWrapper):
                return node.left.value
            return self.expr_value(node.left)

        if op in ("+", "-") and ltype.is_pointer():
            pointer = self._materialize(left_value())
            offset = self.expr_value(node.right)
            size = ct.element_size(ltype)
            if isinstance(offset, Imm):
                dst = self.fn.new_vreg(INT)
                self.emit(I.binop(op_for(op), dst, pointer, Imm(offset.value * size)))
                return dst
            offset = self._materialize(offset)
            if size != 1:
                scaled = self.fn.new_vreg(INT)
                if _is_power_of_two(size):
                    self.emit(
                        I.binop("shl", scaled, offset, Imm(size.bit_length() - 1))
                    )
                else:
                    self.emit(I.binop("mul", scaled, offset, Imm(size)))
                offset = scaled
            dst = self.fn.new_vreg(INT)
            self.emit(I.binop(op_for(op), dst, pointer, offset))
            return dst
        if ltype.is_float() or rtype.is_float():
            left = self._coerce(left_value(), ltype, ct.FLOAT)
            right = self._coerce(self.expr_value(node.right), rtype, ct.FLOAT)
            dst = self.fn.new_vreg(FLT)
            fop = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
            self.emit(I.binop(fop, dst, self._materialize(left, FLT), self._materialize(right, FLT)))
            return dst
        iop = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
        }[op]
        left = self._materialize(self._coerce(left_value(), ltype, ct.INT))
        right = self.expr_value(node.right)
        right = self._coerce(right, rtype, ct.INT)
        if not isinstance(right, Imm):
            right = self._materialize(right)
        dst = self.fn.new_vreg(INT)
        self.emit(I.binop(iop, dst, left, right))
        return dst

    def _incdec_value(self, node, discard):
        target_type = node.operand.ctype
        loc = self.lvalue(node.operand)
        current = self._load_lvalue(loc, target_type)
        step = 1
        if ct.decay(target_type).is_pointer():
            step = ct.element_size(ct.decay(target_type))
        op = "add" if node.op == "++" else "sub"
        updated = self.fn.new_vreg(INT)
        self.emit(I.binop(op, updated, self._materialize(current), Imm(step)))
        self._store_lvalue(loc, updated, target_type)
        if discard:
            return updated
        if node.prefix:
            return updated
        # Postfix: the value before the update.  ``current`` may alias the
        # register that was just overwritten when the target lives in a
        # register, so copy it first for register targets.
        if loc[0] == "reg":
            # current == loc register only when target is register-resident;
            # in that case re-derive the old value.
            old = self.fn.new_vreg(INT)
            self.emit(I.binop("sub" if node.op == "++" else "add", old, updated, Imm(step)))
            return old
        return current

    def _call_value(self, node):
        fsym = node.symbol
        args = []
        for arg, ptype in zip(node.args, fsym.param_types):
            value = self.expr_value(arg)
            value = self._coerce(value, arg.ctype, ptype)
            value = self._materialize(
                value, FLT if ct.decay(ptype).is_float() else INT
            )
            args.append(value)
        dst = None
        if not fsym.return_type.is_void():
            dst = self._vreg_for(fsym.return_type)
        if fsym.builtin:
            self.emit(I.trap(fsym.name, args, dst=dst))
        else:
            self.emit(I.call(fsym.name, args, dst=dst))
        return dst if dst is not None else Imm(0)

    def _ternary_value(self, node):
        result_type = ct.decay(node.ctype)
        is_float = result_type.is_float()
        dst = self.fn.new_vreg(FLT if is_float else INT)
        else_label = self.fn.new_label("Lelse")
        end_label = self.fn.new_label("Lend")
        self.cond(node.cond, None, else_label)
        then_value = self.expr_value(node.then)
        then_value = self._coerce(then_value, node.then.ctype, result_type)
        self.emit(
            I.unop("fmov" if is_float else "mov", dst,
                   self._materialize(then_value, FLT if is_float else INT))
        )
        self.emit(I.jump(Label(end_label)))
        self.emit(I.label(else_label))
        other_value = self.expr_value(node.other)
        other_value = self._coerce(other_value, node.other.ctype, result_type)
        self.emit(
            I.unop("fmov" if is_float else "mov", dst,
                   self._materialize(other_value, FLT if is_float else INT))
        )
        self.emit(I.label(end_label))
        return dst


class _ValueWrapper:
    """Wraps a pre-evaluated operand so it can play the role of an AST
    operand inside compound-assignment lowering."""

    def __init__(self, value, ctype):
        self.value = value
        self.ctype = ctype


def _result_type(op, left_type, right_type):
    left_type = ct.decay(left_type)
    right_type = ct.decay(right_type)
    if left_type.is_pointer():
        return left_type
    if op in ("+", "-", "*", "/"):
        return ct.common_arith(
            left_type if left_type.is_arithmetic() else ct.INT,
            right_type if right_type.is_arithmetic() else ct.INT,
        )
    return ct.INT


def op_for(sign):
    return {"+": "add", "-": "sub"}[sign]


def _load_op(ctype):
    if ctype.is_float():
        return "lf"
    if ctype.is_char():
        return "lb"
    return "lw"


def _store_op(ctype):
    if ctype.is_float():
        return "sf"
    if ctype.is_char():
        return "sb"
    return "sw"


def _const_fold(op, a, b):
    from repro.emu.intmath import int_binop

    return int_binop(op, a, b)


class ProgramLowering:
    """Lowers a whole analysed AST program to an :class:`IRProgram`."""

    def __init__(self, astprogram):
        self.ast = astprogram
        self.program = IRProgram()
        self._float_pool = {}
        self._next_table = 0

    def intern_float(self, value):
        value = float(value)
        key = value
        if key in self._float_pool:
            return self._float_pool[key]
        name = "__flt%d" % len(self._float_pool)
        self.program.add_global(GlobalVar(name, 4, init=[value], elem="float"))
        self._float_pool[key] = name
        return name

    def add_jump_table(self, labels):
        name = "__jtab%d" % self._next_table
        self._next_table = self._next_table + 1
        self.program.add_global(
            GlobalVar(name, 4 * len(labels), init=list(labels), elem="label")
        )
        return name

    def run(self):
        for decl in self.ast.globals:
            self.program.add_global(_lower_global(decl, self.program))
        for funcdef in self.ast.functions:
            lowering = FunctionLowering(self, funcdef)
            self.program.add_function(lowering.lower())
        return self.program


def _const_value(node):
    if isinstance(node, ast.IntLit):
        return node.value
    if isinstance(node, ast.FloatLit):
        return node.value
    if isinstance(node, ast.Unary) and node.op == "-":
        return -_const_value(node.operand)
    raise CodegenError("global initializer is not constant")


def _lower_global(decl, program):
    ctype = decl.ctype
    init = decl.init
    if init is None:
        elem = "byte" if (ctype.is_char() or (ctype.is_array() and _base_elem(ctype).is_char())) else (
            "float" if (ctype.is_float() or (ctype.is_array() and _base_elem(ctype).is_float())) else "word"
        )
        return GlobalVar(decl.name, max(ctype.size, 1), init=None, elem=elem)
    if isinstance(init, ast.StrLit):
        if ctype.is_pointer():
            sym = program.intern_string(init.value)
            return GlobalVar(decl.name, 4, init=[("sym", sym)], elem="word")
        data = init.value.encode("latin-1") + b"\x00"
        data = data.ljust(ctype.size, b"\x00")
        return GlobalVar(decl.name, ctype.size, init=data, elem="byte")
    if isinstance(init, list):
        base = _base_elem(ctype)
        flat = _flatten(init)
        count = ctype.size // base.size
        if len(flat) > count:
            raise CodegenError("too many initializers for %r" % decl.name)
        if base.is_char():
            data = bytes(int(_const_value(v)) & 0xFF for v in flat)
            data = data.ljust(ctype.size, b"\x00")
            return GlobalVar(decl.name, ctype.size, init=data, elem="byte")
        if base.is_float():
            values = [float(_const_value(v)) for v in flat]
            values.extend([0.0] * (count - len(values)))
            return GlobalVar(decl.name, ctype.size, init=values, elem="float")
        values = [int(_const_value(v)) for v in flat]
        values.extend([0] * (count - len(values)))
        return GlobalVar(decl.name, ctype.size, init=values, elem="word")
    # Scalar initializer.
    value = _const_value(init)
    if ctype.is_float():
        return GlobalVar(decl.name, 4, init=[float(value)], elem="float")
    if ctype.is_char():
        return GlobalVar(decl.name, 1, init=bytes([int(value) & 0xFF]), elem="byte")
    return GlobalVar(decl.name, 4, init=[int(value)], elem="word")


def _base_elem(ctype):
    while ctype.is_array():
        ctype = ctype.elem
    return ctype


def _flatten(init):
    out = []
    for item in init:
        if isinstance(item, list):
            out.extend(_flatten(item))
        else:
            out.append(item)
    return out


def lower_program(astprogram):
    """AST (already analysed) -> IRProgram."""
    return ProgramLowering(astprogram).run()
