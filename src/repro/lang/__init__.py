"""SmallC front end: lexer, parser, semantic analysis, IR generation."""

from repro.lang.frontend import STDLIB_SOURCE, compile_to_ir
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["STDLIB_SOURCE", "compile_to_ir", "tokenize", "parse", "analyze"]
