"""Static execution-frequency estimation.

The paper's Section 5 orders branch targets "by estimating the frequency of
the execution of the branches to these targets".  We use the classic static
estimate the vpo compiler family used: a block nested ``d`` loops deep
executes ``LOOP_WEIGHT ** d`` times relative to the function entry.
"""

LOOP_WEIGHT = 10.0


def estimate_frequencies(cfg, loops):
    """Annotate every block's ``freq`` with the loop-depth estimate."""
    for block in cfg.blocks:
        block.freq = LOOP_WEIGHT ** block.loop_depth
    return {block: block.freq for block in cfg.blocks}


def branch_frequency(block):
    """Estimated execution frequency of a branch residing in ``block``."""
    return block.freq
