"""CFG construction from a flat IR instruction list."""

from repro.cfg.blocks import CFG


def build_cfg(fn):
    """Split ``fn.instrs`` into basic blocks and wire the edges.

    Leaders are: the first instruction, every labelled instruction, and
    every instruction following a transfer.  ``call`` does not end a block
    (it always returns to the next instruction); ``trap`` likewise.
    """
    cfg = CFG(fn)
    current = cfg.new_block()
    cfg.entry = current
    started = False

    def fresh_block():
        nonlocal current, started
        block = cfg.new_block()
        current = block
        started = False
        return block

    pending_labels = []
    for ins in fn.instrs:
        if ins.is_label():
            if started:
                fresh_block()
            current.labels.append(ins.name)
            cfg.label_to_block[ins.name] = current
            continue
        current.instrs.append(ins)
        started = True
        if ins.is_transfer() and ins.op != "call":
            fresh_block()
    # Wire edges.
    blocks = cfg.blocks
    for i, block in enumerate(blocks):
        term = block.terminator()
        next_block = blocks[i + 1] if i + 1 < len(blocks) else None
        if term is None or term.op == "call":
            if next_block is not None:
                cfg.add_edge(block, next_block)
            continue
        if term.op in ("br", "fbr"):
            cfg.add_edge(block, cfg.label_to_block[term.target.name])
            if next_block is not None:
                cfg.add_edge(block, next_block)
        elif term.op == "jmp":
            cfg.add_edge(block, cfg.label_to_block[term.target.name])
        elif term.op == "ijmp":
            for name in term.args:
                cfg.add_edge(block, cfg.label_to_block[name])
        elif term.op == "ret":
            pass
        else:
            raise AssertionError("unexpected terminator %r" % term.op)
    cfg.remove_unreachable()
    return cfg
