"""Dominator computation (iterative dataflow, Cooper-Harvey-Kennedy style
simplified to bitset iteration -- our CFGs are small)."""


def compute_dominators(cfg):
    """Return a dict block -> set of blocks that dominate it (including
    itself)."""
    blocks = cfg.blocks
    if not blocks:
        return {}
    all_ids = set(range(len(blocks)))
    dom = {b.index: set(all_ids) for b in blocks}
    dom[cfg.entry.index] = {cfg.entry.index}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is cfg.entry:
                continue
            preds = [p for p in block.preds]
            if preds:
                new = set(all_ids)
                for p in preds:
                    new &= dom[p.index]
            else:
                new = set()
            new.add(block.index)
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    by_block = {}
    index_map = {b.index: b for b in blocks}
    for block in blocks:
        by_block[block] = {index_map[i] for i in dom[block.index]}
    return by_block


def dominates(dom, a, b):
    """True if block ``a`` dominates block ``b``."""
    return a in dom[b]
