"""Basic blocks and the control-flow graph."""


class BasicBlock:
    """A maximal straight-line sequence of IR instructions.

    Attributes:
        index: position in the CFG's block list.
        labels: label names that start this block.
        instrs: instructions (without label markers).
        succs / preds: lists of neighbouring blocks.
        loop_depth: nesting depth filled in by loop analysis.
        freq: estimated execution frequency filled in by
            :mod:`repro.cfg.freq`.
    """

    def __init__(self, index):
        self.index = index
        self.labels = []
        self.instrs = []
        self.succs = []
        self.preds = []
        self.loop_depth = 0
        self.freq = 1.0

    def terminator(self):
        """The final transfer instruction, or None if the block falls
        through."""
        if self.instrs and self.instrs[-1].is_transfer():
            return self.instrs[-1]
        return None

    def first_label(self):
        return self.labels[0] if self.labels else None

    def __repr__(self):
        return "<B%d %s: %d instrs>" % (
            self.index,
            ",".join(self.labels) or "-",
            len(self.instrs),
        )


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, fn):
        self.fn = fn
        self.blocks = []
        self.entry = None
        self.label_to_block = {}

    def new_block(self):
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src, dst):
        if dst not in src.succs:
            src.succs.append(dst)
        if src not in dst.preds:
            dst.preds.append(src)

    def block_of_label(self, name):
        return self.label_to_block.get(name)

    def reindex(self):
        for i, block in enumerate(self.blocks):
            block.index = i

    def remove_unreachable(self):
        """Drop blocks not reachable from the entry block."""
        reachable = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if id(block) in reachable:
                continue
            reachable.add(id(block))
            stack.extend(block.succs)
        kept = [b for b in self.blocks if id(b) in reachable]
        for block in kept:
            block.preds = [p for p in block.preds if id(p) in reachable]
        self.blocks = kept
        self.label_to_block = {
            name: block
            for name, block in self.label_to_block.items()
            if id(block) in reachable
        }
        self.reindex()

    def linearize(self):
        """Flatten the CFG back into an IR instruction list, re-emitting
        label markers."""
        from repro.rtl import instr as I

        out = []
        for block in self.blocks:
            for name in block.labels:
                out.append(I.label(name))
            out.extend(block.instrs)
        return out

    def __repr__(self):
        return "<CFG %s: %d blocks>" % (self.fn.name, len(self.blocks))
