"""Control-flow analyses: blocks, dominators, loops, liveness, frequency."""

from repro.cfg.blocks import CFG, BasicBlock
from repro.cfg.build import build_cfg
from repro.cfg.dom import compute_dominators, dominates
from repro.cfg.freq import estimate_frequencies
from repro.cfg.liveness import compute_liveness, per_instruction_liveness
from repro.cfg.loops import (
    Loop,
    ensure_preheader,
    find_loops,
    innermost_loop_of,
    preheader_is_safe,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "compute_dominators",
    "dominates",
    "estimate_frequencies",
    "compute_liveness",
    "per_instruction_liveness",
    "Loop",
    "ensure_preheader",
    "find_loops",
    "innermost_loop_of",
    "preheader_is_safe",
]
