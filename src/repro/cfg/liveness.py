"""Backward liveness analysis over virtual registers."""


def compute_liveness(cfg):
    """Per-block live-in/live-out sets of register operands.

    Returns ``(live_in, live_out)`` dicts keyed by block.  Works on any
    instruction object exposing ``defs()``/``uses()`` (IR instructions and
    target MInstrs wrapped by the allocator adapter).
    """
    use = {}
    defs = {}
    for block in cfg.blocks:
        u = set()
        d = set()
        for ins in block.instrs:
            for reg in ins.uses():
                if reg not in d:
                    u.add(reg)
            for reg in ins.defs():
                d.add(reg)
        use[block] = u
        defs[block] = d
    live_in = {b: set() for b in cfg.blocks}
    live_out = {b: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out = set()
            for succ in block.succs:
                out |= live_in[succ]
            new_in = use[block] | (out - defs[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True
    return live_in, live_out


def per_instruction_liveness(block, live_out):
    """Live sets *after* each instruction in the block, front to back.

    Returns a list ``live_after`` with one set per instruction.
    """
    live = set(live_out)
    after = [None] * len(block.instrs)
    for i in range(len(block.instrs) - 1, -1, -1):
        ins = block.instrs[i]
        after[i] = set(live)
        for reg in ins.defs():
            live.discard(reg)
        for reg in ins.uses():
            live.add(reg)
    return after
