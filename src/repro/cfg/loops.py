"""Natural-loop detection and preheader creation.

The paper's Section 5 optimization hoists branch-target-address
calculations into "the preheader of the innermost loop in which the branch
occurs", so loop structure and preheaders are first-class here.
"""

from repro.cfg.dom import compute_dominators
from repro.rtl import instr as I
from repro.rtl.operand import Label


class Loop:
    """One natural loop.

    Attributes:
        header: the loop header block.
        blocks: set of member blocks (including the header).
        parent: enclosing loop or None.
        depth: nesting depth (outermost = 1).
        preheader: dedicated preheader block, once created.
    """

    def __init__(self, header):
        self.header = header
        self.blocks = {header}
        self.parent = None
        self.depth = 1
        self.preheader = None

    def contains(self, block):
        return block in self.blocks

    def contains_call(self):
        for block in self.blocks:
            for ins in block.instrs:
                if ins.op == "call" or (
                    hasattr(ins, "is_baseline_transfer") and ins.op == "call"
                ):
                    return True
        return False

    def __repr__(self):
        return "<Loop hdr=B%d depth=%d blocks=%d>" % (
            self.header.index,
            self.depth,
            len(self.blocks),
        )


def find_loops(cfg):
    """Find all natural loops, merge loops sharing a header, establish the
    nesting relation, and annotate ``block.loop_depth``."""
    dom = compute_dominators(cfg)
    loops_by_header = {}
    for block in cfg.blocks:
        for succ in block.succs:
            if succ in dom[block]:  # back edge block -> succ
                loop = loops_by_header.get(succ)
                if loop is None:
                    loop = Loop(succ)
                    loops_by_header[succ] = loop
                _collect_loop_body(loop, block)
    loops = list(loops_by_header.values())
    # Nesting: the parent is the smallest strictly-containing loop.
    for loop in loops:
        candidates = [
            other
            for other in loops
            if other is not loop
            and loop.header in other.blocks
            and loop.blocks <= other.blocks
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.blocks))
    for loop in loops:
        depth = 1
        parent = loop.parent
        while parent is not None:
            depth = depth + 1
            parent = parent.parent
        loop.depth = depth
    for block in cfg.blocks:
        block.loop_depth = 0
    for loop in sorted(loops, key=lambda l: l.depth):
        for block in loop.blocks:
            block.loop_depth = max(block.loop_depth, loop.depth)
    return loops


def _collect_loop_body(loop, tail):
    """Add to ``loop`` every block that can reach ``tail`` without passing
    through the header (the classic natural-loop body walk)."""
    stack = [tail]
    while stack:
        block = stack.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        stack.extend(block.preds)


def ensure_preheader(cfg, loop, fn):
    """Return the loop's preheader, creating one if necessary.

    A preheader is a block whose only successor is the loop header and
    whose successors-from-outside-the-loop all funnel through it.  When the
    header already has exactly one out-of-loop predecessor that falls
    through or jumps unconditionally to the header, that predecessor is
    used directly (the paper's wording: "the basic block that precedes the
    first basic block that is executed in the loop").
    """
    if loop.preheader is not None:
        return loop.preheader
    outside_preds = [p for p in loop.header.preds if p not in loop.blocks]
    if len(outside_preds) == 1:
        pred = outside_preds[0]
        term = pred.terminator()
        sole_jump = (
            term is not None
            and term.op == "jmp"
            and term.target.name in loop.header.labels
        )
        falls_through = term is None or term.op == "call"
        if (sole_jump or falls_through) and len(pred.succs) == 1:
            loop.preheader = pred
            return pred
    # Create a fresh preheader block, *inserted in layout immediately
    # before the header* so that out-of-loop fall-through still works.
    pre = _make_block_before(cfg, loop.header)
    pre_label = fn.new_label("Lpre")
    pre.labels.append(pre_label)
    cfg.label_to_block[pre_label] = pre
    header_label = loop.header.first_label()
    if header_label is None:
        header_label = fn.new_label("Lhdr")
        loop.header.labels.append(header_label)
        cfg.label_to_block[header_label] = loop.header
    # In-loop predecessors that previously fell through into the header
    # would now fall into the preheader; give them an explicit jump.
    header_pos = cfg.blocks.index(loop.header)
    fallthrough_pos = header_pos - 2  # block physically before the preheader
    if fallthrough_pos >= 0:
        prev = cfg.blocks[fallthrough_pos]
        if (
            prev in loop.blocks
            and loop.header in prev.succs
            and prev.terminator() is None
        ):
            prev.instrs.append(I.jump(Label(header_label)))
    # Redirect out-of-loop predecessors (explicit jumps and branches; the
    # physical-fall-through case is handled by the insertion position).
    for pred in list(outside_preds):
        term = pred.terminator()
        if term is not None and term.op in ("br", "fbr", "jmp"):
            if term.target.name in loop.header.labels:
                term.target = Label(pre_label)
        pred.succs = [pre if s is loop.header else s for s in pred.succs]
        if pred not in pre.preds:
            pre.preds.append(pred)
    loop.header.preds = [p for p in loop.header.preds if p in loop.blocks] + [pre]
    pre.succs = [loop.header]
    pre.loop_depth = max(loop.depth - 1, 0)
    pre.freq = max((p.freq for p in pre.preds), default=1.0)
    loop.preheader = pre
    return pre


def _make_block_before(cfg, anchor):
    """Create a new block placed immediately before ``anchor`` in layout
    order."""
    from repro.cfg.blocks import BasicBlock

    block = BasicBlock(0)
    position = cfg.blocks.index(anchor)
    cfg.blocks.insert(position, block)
    cfg.reindex()
    return block


def preheader_is_safe(loop):
    """A preheader is unusable when the header is entered by an indirect
    jump from outside the loop (cannot be redirected)."""
    for pred in loop.header.preds:
        if pred in loop.blocks:
            continue
        term = pred.terminator()
        if term is not None and term.op == "ijmp":
            return False
    return True


def innermost_loop_of(loops, block):
    """The innermost loop containing ``block``, or None."""
    best = None
    for loop in loops:
        if block in loop.blocks:
            if best is None or loop.depth > best.depth:
                best = loop
    return best
