"""N-stage pipeline cost models (Section 7, Figures 5, 7 and 9).

The paper estimates cycles exactly this way: "Assuming a pipeline of three
stages ... and assuming that each instruction can execute in one machine
cycle, and no other pipeline delays except for transfers of control".

Per-transfer delays:

=====================  ===========================  =======================
machine                unconditional                conditional
=====================  ===========================  =======================
no delayed branch      N-1                          N-1
delayed branch         N-2                          N-2
branch registers       prefetch penalty only        max(prefetch, N-3 term)
=====================  ===========================  =======================

The branch-register machine's *prefetch penalty* for one transfer is
``max(0, (N-1) - gap)`` where ``gap`` is the dynamic distance (in
instructions) between the target-address calculation and the transfer;
Figure 9 shows the N=3 case, where a gap of two or more instructions fully
hides the cache access.  Sequential targets (untaken conditionals) are
always ready.  The conditional *compare term* is ``max(0, (N-3) -
(gap_c - 1))`` where ``gap_c`` is the distance from the ``cmpset`` to its
carrier (Figures 7-8: with the carrier immediately after the compare the
delay is N-3).  Both penalties overlap in time, so a conditional transfer
is charged the maximum of the two, computed exactly from the emulator's
joint histogram.
"""

from dataclasses import dataclass

READY = -1


def prefetch_penalty(gap, stages):
    """Pipeline bubble cycles for one transfer with calculation-to-use
    distance ``gap`` (READY = sequential / already fetched)."""
    if gap == READY:
        return 0
    required = stages - 1
    return max(0, required - gap)


def compare_penalty(gap_c, stages):
    """Figure 7/8 penalty for a conditional transfer whose carrier runs
    ``gap_c`` instructions after the cmpset."""
    return max(0, (stages - 3) - (gap_c - 1))


@dataclass
class CycleEstimate:
    """Cycle estimate for one machine on one run."""

    machine: str
    stages: int
    instructions: int
    transfer_delays: int

    @property
    def cycles(self):
        return self.instructions + self.transfer_delays

    def __repr__(self):
        return "<%s N=%d: %d cycles (%d instr + %d delay)>" % (
            self.machine, self.stages, self.cycles,
            self.instructions, self.transfer_delays,
        )


def no_delay_cycles(stats, stages=3):
    """Conventional machine *without* delayed branches (Figs. 5a/7a)."""
    delays = stats.transfers * (stages - 1)
    return CycleEstimate("no-delayed-branch", stages, stats.instructions, delays)


def baseline_cycles(stats, stages=3):
    """The baseline machine: delayed branches, one delay slot
    (Figs. 5b/7b: N-2 cycles per transfer)."""
    delays = stats.transfers * (stages - 2)
    return CycleEstimate("baseline", stages, stats.instructions, delays)


def branchreg_cycles(stats, stages=3):
    """The branch-register machine, driven by the emulator's recorded
    calculation-to-use distances."""
    delays = 0
    # Unconditional transfers: prefetch penalty only.  The prefetch_gap
    # histogram covers *all* transfers; subtract the conditional portion
    # (available exactly in cond_joint) and charge conditionals max-wise.
    cond_prefetch = {}
    for (gap_p, _gap_c), count in stats.cond_joint.items():
        cond_prefetch[gap_p] = cond_prefetch.get(gap_p, 0) + count
    for gap, count in stats.prefetch_gap.items():
        uncond_count = count - cond_prefetch.get(gap, 0)
        delays += prefetch_penalty(gap, stages) * uncond_count
    for (gap_p, gap_c), count in stats.cond_joint.items():
        per = max(
            prefetch_penalty(gap_p, stages), compare_penalty(gap_c, stages)
        )
        delays += per * count
    return CycleEstimate("branchreg", stages, stats.instructions, delays)


def branchreg_fastcmp_cycles(stats, stages=3):
    """Section 9 variant: a *fast compare* resolves the branch-register
    selection during the decode stage, so the Figure 7 ``N-3`` term
    vanishes and only prefetch distance matters.  ("If a fast compare
    instruction could be used to test the condition during the decode
    stage, then the compare instruction could update the program counter
    directly.")"""
    delays = 0
    cond_prefetch = {}
    for (gap_p, _gap_c), count in stats.cond_joint.items():
        cond_prefetch[gap_p] = cond_prefetch.get(gap_p, 0) + count
    for gap, count in stats.prefetch_gap.items():
        delays += prefetch_penalty(gap, stages) * count
    return CycleEstimate("branchreg+fastcmp", stages, stats.instructions, delays)


def delayed_transfer_fraction(stats, stages=3):
    """Fraction of branch-register transfers that incur any pipeline
    delay at the given depth (the paper estimates 13.86% at N=3)."""
    delayed = 0
    total = 0
    cond_prefetch = {}
    for (gap_p, _gap_c), count in stats.cond_joint.items():
        cond_prefetch[gap_p] = cond_prefetch.get(gap_p, 0) + count
    for gap, count in stats.prefetch_gap.items():
        uncond = count - cond_prefetch.get(gap, 0)
        total += uncond
        if prefetch_penalty(gap, stages) > 0:
            delayed += uncond
    for (gap_p, gap_c), count in stats.cond_joint.items():
        total += count
        if max(prefetch_penalty(gap_p, stages), compare_penalty(gap_c, stages)) > 0:
            delayed += count
    if not total:
        return 0.0
    return delayed / total


def estimate_all(baseline_stats, branchreg_stats, stages=3):
    """The Section 7 comparison at one pipeline depth.

    Returns a dict with the three machine estimates plus the headline
    relative saving of the branch-register machine over the baseline.
    """
    base = baseline_cycles(baseline_stats, stages)
    nodelay = no_delay_cycles(baseline_stats, stages)
    brm = branchreg_cycles(branchreg_stats, stages)
    saving = 1.0 - brm.cycles / base.cycles if base.cycles else 0.0
    fast = branchreg_fastcmp_cycles(branchreg_stats, stages)
    return {
        "stages": stages,
        "no_delay": nodelay,
        "baseline": base,
        "branchreg": brm,
        "branchreg_fastcmp": fast,
        "saving_vs_baseline": saving,
        "fastcmp_saving_vs_baseline": (
            1.0 - fast.cycles / base.cycles if base.cycles else 0.0
        ),
        "delayed_fraction": delayed_transfer_fraction(branchreg_stats, stages),
    }
