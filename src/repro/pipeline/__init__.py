"""Pipeline timing models and diagrams (Figures 5-9, Section 7)."""

from repro.pipeline.model import (
    CycleEstimate,
    baseline_cycles,
    branchreg_cycles,
    compare_penalty,
    delayed_transfer_fraction,
    estimate_all,
    no_delay_cycles,
    prefetch_penalty,
)

__all__ = [
    "CycleEstimate",
    "baseline_cycles",
    "branchreg_cycles",
    "compare_penalty",
    "delayed_transfer_fraction",
    "estimate_all",
    "no_delay_cycles",
    "prefetch_penalty",
]
