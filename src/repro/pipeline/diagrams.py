"""ASCII pipeline diagrams reproducing Figures 5-9.

Each figure renders the stage occupancy of a short instruction sequence on
an N-stage fetch/decode/execute pipeline, showing where bubbles appear for
the three machine styles.
"""

STAGES3 = ("F", "D", "E")


def _render(rows, title):
    """rows: list of (label, start_cycle, stage_letters)."""
    total_cycles = max(start + len(stages) for _l, start, stages in rows)
    width = 2
    lines = [title]
    header = " " * 10 + "".join(
        ("%-2d" % (c + 1)).ljust(width + 1) for c in range(total_cycles)
    )
    lines.append(header.rstrip())
    for label, start, stages in rows:
        cells = [" " * (width + 1)] * total_cycles
        for i, letter in enumerate(stages):
            cells[start + i] = ("|%s|" % letter).ljust(width + 1)
        lines.append(("%-9s " % label) + "".join(cells).rstrip())
    return "\n".join(lines)


def _stage_letters(n):
    if n == 3:
        return STAGES3
    return ("F",) + tuple("D%d" % i for i in range(1, n - 1)) + ("E",)


def unconditional_diagram(machine, stages=3):
    """Figure 5: pipeline flow for JUMP / NEXT / TARGET.

    ``machine`` is "no-delay", "delayed" or "branchreg".  Returns the
    rendered diagram and the bubble count before TARGET's fetch.
    """
    letters = _stage_letters(stages)
    rows = [("JUMP", 0, letters)]
    if machine == "no-delay":
        # Target fetch waits for the jump's execute: N-1 bubble cycles.
        target_start = stages
        rows.append(("TARGET", target_start, letters))
        delay = stages - 1
    elif machine == "delayed":
        rows.append(("NEXT", 1, letters))
        target_start = stages
        rows.append(("TARGET", target_start, letters))
        delay = stages - 2
    elif machine == "branchreg":
        # The instruction register already holds the prefetched target:
        # it enters decode right behind the jump; no bubbles.
        rows.append(("NEXT", 1, ("F",)))
        rows.append(("TARGET", 1, ("",) + letters[1:]))
        delay = 0
    else:
        raise ValueError("unknown machine %r" % machine)
    title = "Figure 5 (%s, %d stages): unconditional transfer" % (machine, stages)
    return _render(rows, title), delay


def conditional_diagram(machine, stages=3):
    """Figure 7: COMPARE / JUMP / TARGET flow and the resulting delay."""
    letters = _stage_letters(stages)
    rows = [("COMPARE", 0, letters)]
    if machine == "no-delay":
        rows.append(("JUMP", 1, letters))
        rows.append(("TARGET", stages + 1, letters))
        delay = stages - 1
    elif machine == "delayed":
        rows.append(("JUMP", 1, letters))
        rows.append(("NEXT", 2, letters))
        rows.append(("TARGET", stages + 1, letters))
        delay = stages - 2
    elif machine == "branchreg":
        rows.append(("JUMP", 1, letters))
        # The target's decode must wait for the compare's execute
        # (selection of the instruction register): N-3 bubbles.
        delay = max(0, stages - 3)
        rows.append(("TARGET", 2 + delay, letters))
    else:
        raise ValueError("unknown machine %r" % machine)
    title = "Figure 7 (%s, %d stages): conditional transfer" % (machine, stages)
    return _render(rows, title), delay


def fig6_actions():
    """Figure 6: per-cycle pipeline actions for an unconditional transfer
    on the branch-register machine (3 stages)."""
    return [
        ("cycle 1", "fetch JUMP; PC += 4"),
        ("cycle 2", "decode JUMP (br field selects i[k]); fetch NEXT into i[0]"),
        ("cycle 3", "execute JUMP; decode TARGET from i[k]; fetch TARGET+1 via b[k]"),
    ]


def fig8_actions():
    """Figure 8: per-cycle actions for a conditional transfer (3 stages)."""
    return [
        ("cycle 1", "fetch COMPARE; PC += 4"),
        ("cycle 2", "decode COMPARE; fetch JUMP"),
        ("cycle 3", "execute COMPARE (assign b[7], i[7]); decode JUMP; fetch NEXT"),
        ("cycle 4", "execute JUMP; decode TARGET-or-NEXT from i[7]; fetch following"),
    ]


def fig9_table(stages=3, cache_delay=1, max_distance=5):
    """Figure 9: delay as a function of the calculation-to-transfer
    distance.  Returns a list of (distance, delay_cycles)."""
    out = []
    for distance in range(1, max_distance + 1):
        # The address leaves the calc's execute stage, spends
        # ``cache_delay`` cycles in the cache, and must arrive before the
        # transfer's decode consumes the instruction register.
        required = stages - 2 + cache_delay
        delay = max(0, required - distance)
        out.append((distance, delay))
    return out
