"""Reproduction of Davidson & Whalley, "Reducing the Cost of Branches by
Using Registers" (ISCA 1990).

Public API overview
-------------------

Compile and run a SmallC program on both machines::

    from repro import run_pair
    result = run_pair(source, stdin=b"...", name="demo")
    result.baseline.instructions, result.branchreg.instructions

Reproduce the paper's evaluation::

    from repro.harness.table1 import run_table1
    from repro.harness.cycles7 import run_cycle_estimate
    print(run_table1()["text"])
    print(run_cycle_estimate()["text"])

Layers (see DESIGN.md):

* :mod:`repro.lang` -- the SmallC front end;
* :mod:`repro.opt` -- machine-independent optimizations + register allocation;
* :mod:`repro.codegen` -- the two target code generators;
* :mod:`repro.machine` -- machine specs and Figure 10/11 encodings;
* :mod:`repro.emu` -- the EASE-style emulators;
* :mod:`repro.pipeline`, :mod:`repro.cache` -- timing and cache models;
* :mod:`repro.workloads` -- the 19 Appendix I test programs;
* :mod:`repro.harness` -- one driver per paper table/figure.
"""

from repro.ease.environment import (
    PairResult,
    compile_for_machine,
    run_on_machine,
    run_pair,
)
from repro.lang.frontend import compile_to_ir
from repro.machine.spec import baseline_spec, branchreg_spec
from repro.workloads import all_workloads, workload

__version__ = "1.0.0"

__all__ = [
    "PairResult",
    "compile_for_machine",
    "run_on_machine",
    "run_pair",
    "compile_to_ir",
    "baseline_spec",
    "branchreg_spec",
    "all_workloads",
    "workload",
    "__version__",
]
