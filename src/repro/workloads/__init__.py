"""The Appendix I test-program suite, rewritten in SmallC."""

from repro.workloads.registry import Workload, all_workloads, workload, workload_names

__all__ = ["Workload", "all_workloads", "workload", "workload_names"]
