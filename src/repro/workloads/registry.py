"""Registry of the Appendix I test-program suite."""

from dataclasses import dataclass

from repro.workloads.sources import (
    cal,
    cb,
    compact,
    dhrystone,
    diff,
    grep,
    matmult,
    mincost,
    nroff,
    od,
    puzzle,
    sed,
    sieve,
    sort,
    spline,
    tr,
    vpcc,
    wc,
    whetstone,
)

_MODULES = [
    cal, cb, compact, diff, grep, nroff, od, sed, sort, spline, tr, wc,
    dhrystone, matmult, puzzle, sieve, whetstone, mincost, vpcc,
]


@dataclass(frozen=True)
class Workload:
    """One Appendix I test program."""

    name: str
    cls: str  # "utility" | "benchmark" | "user"
    description: str
    source: str
    stdin: bytes

    def stdin_bytes(self):
        stdin = self.stdin
        if isinstance(stdin, str):
            return stdin.encode("latin-1")
        return stdin


def all_workloads():
    """The full 19-program suite, in Appendix I order."""
    out = []
    for module in _MODULES:
        out.append(
            Workload(
                name=module.NAME,
                cls=module.CLASS,
                description=module.DESCRIPTION,
                source=module.SOURCE,
                stdin=module.STDIN
                if isinstance(module.STDIN, bytes)
                else module.STDIN.encode("latin-1"),
            )
        )
    return out


def workload(name):
    for w in all_workloads():
        if w.name == name:
            return w
    raise KeyError("no workload named %r" % name)


def workload_names():
    return [w.name for w in all_workloads()]
