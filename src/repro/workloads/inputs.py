"""Deterministic synthetic inputs for the workload suite.

The paper ran real UNIX utilities over real files; we generate
deterministic pseudo-random text and data so every run is reproducible
without shipping corpora.  A small linear congruential generator keeps the
package dependency-free and platform-stable.
"""


class Lcg:
    """Numerical Recipes LCG; stable across platforms and Python versions."""

    def __init__(self, seed=12345):
        self.state = seed & 0xFFFFFFFF

    def next(self):
        self.state = (1664525 * self.state + 1013904223) & 0xFFFFFFFF
        return self.state

    def below(self, n):
        return self.next() % n

    def choice(self, seq):
        return seq[self.below(len(seq))]


_WORDS = (
    "the quick brown fox jumps over lazy dog register branch target "
    "address loop compiler pipeline cache delay cost machine code "
    "instruction fetch decode execute transfer control program counter"
).split()


def words(count, seed=1):
    """``count`` space-separated pseudo-words."""
    rng = Lcg(seed)
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def text_lines(lines, words_per_line=6, seed=2):
    """Multi-line pseudo text ending in a newline."""
    rng = Lcg(seed)
    out = []
    for _ in range(lines):
        n = 1 + rng.below(words_per_line)
        out.append(" ".join(rng.choice(_WORDS) for _ in range(n)))
    return "\n".join(out) + "\n"


def int_lines(count, bound=10000, seed=3):
    """Newline-separated integers."""
    rng = Lcg(seed)
    return "\n".join(str(rng.below(bound) - bound // 2) for _ in range(count)) + "\n"


def byte_blob(count, seed=4):
    """Printable-ish byte blob with some repetition (for compact/od)."""
    rng = Lcg(seed)
    out = bytearray()
    while len(out) < count:
        ch = 32 + rng.below(64)
        run = 1 + (rng.below(8) if rng.below(4) == 0 else 0)
        out.extend(bytes([ch]) * run)
    return bytes(out[:count])


def c_source_sample(lines=30, seed=5):
    """Pseudo C-like source for the cb (C beautifier) workload."""
    rng = Lcg(seed)
    out = []
    depth = 0
    for i in range(lines):
        roll = rng.below(5)
        if roll == 0:
            out.append("if (x%d > %d) {" % (i % 7, rng.below(100)))
            depth = depth + 1
        elif roll == 1 and depth > 0:
            out.append("}")
            depth = depth - 1
        else:
            out.append("y%d = y%d + %d;" % (i % 5, (i + 1) % 5, rng.below(50)))
    out.extend(["}"] * depth)
    return "\n".join(out) + "\n"
