"""wc -- word count (Appendix I, class: utility)."""

from repro.workloads.inputs import text_lines

NAME = "wc"
CLASS = "utility"
DESCRIPTION = "Word count"

SOURCE = r"""
int main() {
    int c;
    int lines = 0;
    int chars = 0;
    int word_count = 0;
    int in_word = 0;
    while ((c = getchar()) != -1) {
        chars++;
        if (c == '\n')
            lines++;
        if (c == ' ' || c == '\n' || c == '\t')
            in_word = 0;
        else if (!in_word) {
            in_word = 1;
            word_count++;
        }
    }
    print_int(lines);
    putchar(' ');
    print_int(word_count);
    putchar(' ');
    print_int(chars);
    putchar('\n');
    return 0;
}
"""

STDIN = text_lines(150, seed=11)
