"""grep -- search for pattern (Appendix I, class: utility).

Implements Kernighan's tiny regex matcher (literal characters, ``.``,
``*`` and ``^``/``$`` anchors), a heavily-branching recursive workload.
"""

from repro.workloads.inputs import text_lines

NAME = "grep"
CLASS = "utility"
DESCRIPTION = "Search for Pattern"

SOURCE = r"""
char pattern[16] = "br.nch";

int match_here(char *re, char *text);

int match_star(int c, char *re, char *text) {
    do {
        if (match_here(re, text))
            return 1;
    } while (*text != 0 && (*text++ == c || c == '.'));
    return 0;
}

int match_here(char *re, char *text) {
    if (re[0] == 0)
        return 1;
    if (re[1] == '*')
        return match_star(re[0], re + 2, text);
    if (re[0] == '$' && re[1] == 0)
        return *text == 0;
    if (*text != 0 && (re[0] == '.' || re[0] == *text))
        return match_here(re + 1, text + 1);
    return 0;
}

int match(char *re, char *text) {
    if (re[0] == '^')
        return match_here(re + 1, text);
    do {
        if (match_here(re, text))
            return 1;
    } while (*text++ != 0);
    return 0;
}

int main() {
    char line[80];
    int col = 0;
    int c;
    int lineno = 0;
    int hits = 0;
    while ((c = getchar()) != -1) {
        if (c == '\n') {
            line[col] = 0;
            lineno++;
            if (match(pattern, line)) {
                hits++;
                print_int(lineno);
                putchar(':');
                print_str(line);
                putchar('\n');
            }
            col = 0;
        } else if (col < 79) {
            line[col] = c;
            col++;
        }
    }
    print_str("matches ");
    print_int(hits);
    putchar('\n');
    return 0;
}
"""

STDIN = text_lines(120, words_per_line=5, seed=51)
