"""sed -- stream editor (Appendix I, class: utility).

Performs the classic ``s/old/new/g`` substitution with literal patterns on
every input line.
"""

from repro.workloads.inputs import text_lines

NAME = "sed"
CLASS = "utility"
DESCRIPTION = "Stream editor"

SOURCE = r"""
char old_pat[8] = "branch";
char new_pat[12] = "transfer";

int starts_with(char *text, char *prefix) {
    while (*prefix) {
        if (*text != *prefix)
            return 0;
        text++;
        prefix++;
    }
    return 1;
}

void substitute(char *line) {
    int pat_len = strlen(old_pat);
    while (*line) {
        if (starts_with(line, old_pat)) {
            print_str(new_pat);
            line = line + pat_len;
        } else {
            putchar(*line);
            line++;
        }
    }
    putchar('\n');
}

int main() {
    char line[100];
    int col = 0;
    int c;
    while ((c = getchar()) != -1) {
        if (c == '\n') {
            line[col] = 0;
            substitute(line);
            col = 0;
        } else if (col < 99) {
            line[col] = c;
            col++;
        }
    }
    return 0;
}
"""

STDIN = text_lines(100, words_per_line=6, seed=81)
