"""spline -- interpolate curve (Appendix I, class: utility).

Fits a natural cubic spline through sample points (tridiagonal solve) and
evaluates it on a fine grid -- floating-point heavy, like the original.
"""

NAME = "spline"
CLASS = "utility"
DESCRIPTION = "Interpolate Curve"

SOURCE = r"""
float xs[12];
float ys[12];
float y2[12];
float scratch[12];

void build_points() {
    int i;
    for (i = 0; i < 12; i++) {
        xs[i] = (float) i;
        ys[i] = f_sin((float) i * 0.6);
    }
}

/* Natural cubic spline second derivatives (Numerical-Recipes style). */
void spline_fit(int n) {
    int i;
    float sig;
    float p;
    y2[0] = 0.0;
    scratch[0] = 0.0;
    for (i = 1; i < n - 1; i++) {
        sig = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1]);
        p = sig * y2[i - 1] + 2.0;
        y2[i] = (sig - 1.0) / p;
        scratch[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])
                   - (ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]);
        scratch[i] = (6.0 * scratch[i] / (xs[i + 1] - xs[i - 1])
                   - sig * scratch[i - 1]) / p;
    }
    y2[n - 1] = 0.0;
    for (i = n - 2; i >= 0; i--)
        y2[i] = y2[i] * y2[i + 1] + scratch[i];
}

float spline_eval(int n, float x) {
    int lo = 0;
    int hi = n - 1;
    int mid;
    float h;
    float a;
    float b;
    while (hi - lo > 1) {
        mid = (hi + lo) / 2;
        if (xs[mid] > x)
            hi = mid;
        else
            lo = mid;
    }
    h = xs[hi] - xs[lo];
    a = (xs[hi] - x) / h;
    b = (x - xs[lo]) / h;
    return a * ys[lo] + b * ys[hi]
         + ((a * a * a - a) * y2[lo] + (b * b * b - b) * y2[hi]) * h * h / 6.0;
}

int main() {
    int i;
    float x;
    float total = 0.0;
    build_points();
    spline_fit(12);
    for (i = 0; i < 60; i++) {
        x = (float) i * 11.0 / 59.0;
        total = total + f_abs(spline_eval(12, x));
    }
    print_str("area ");
    print_float(total);
    putchar('\n');
    print_str("mid ");
    print_float(spline_eval(12, 5.5));
    putchar('\n');
    return 0;
}
"""

STDIN = b""
