"""matmult -- matrix multiplication (Appendix I, class: benchmark)."""

NAME = "matmult"
CLASS = "benchmark"
DESCRIPTION = "Matrix multiplication"

SOURCE = r"""
int mat_a[14][14];
int mat_b[14][14];
int mat_c[14][14];

void fill() {
    int i;
    int j;
    for (i = 0; i < 14; i++)
        for (j = 0; j < 14; j++) {
            mat_a[i][j] = i + j;
            mat_b[i][j] = i - j;
        }
}

void multiply() {
    int i;
    int j;
    int k;
    int sum;
    for (i = 0; i < 14; i++)
        for (j = 0; j < 14; j++) {
            sum = 0;
            for (k = 0; k < 14; k++)
                sum = sum + mat_a[i][k] * mat_b[k][j];
            mat_c[i][j] = sum;
        }
}

int main() {
    int i;
    int trace = 0;
    int total = 0;
    int j;
    fill();
    multiply();
    for (i = 0; i < 14; i++)
        trace = trace + mat_c[i][i];
    for (i = 0; i < 14; i++)
        for (j = 0; j < 14; j++)
            total = total + mat_c[i][j];
    print_str("trace ");
    print_int(trace);
    print_str(" total ");
    print_int(total);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
