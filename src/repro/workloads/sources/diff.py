"""diff -- file differences (Appendix I, class: utility).

Two "files" arrive on stdin separated by a line containing only ``%%``.
A classic LCS dynamic program computes the edit script.
"""

from repro.workloads.inputs import Lcg, text_lines

NAME = "diff"
CLASS = "utility"
DESCRIPTION = "File differences"

SOURCE = r"""
char text_a[32][40];
char text_b[32][40];
int lcs[33][33];

/* ``lines`` is the flat base of a 32x40 character matrix. */
int read_side(char *lines, int stop_on_marker) {
    int count = 0;
    int col = 0;
    int c;
    while ((c = getchar()) != -1) {
        if (c == '\n') {
            lines[count * 40 + col] = 0;
            if (stop_on_marker && lines[count * 40] == '%'
                    && lines[count * 40 + 1] == '%')
                return count;
            count++;
            col = 0;
            if (count == 32)
                return count;
        } else if (col < 39) {
            lines[count * 40 + col] = c;
            col++;
        }
    }
    if (col > 0) {
        lines[count * 40 + col] = 0;
        count++;
    }
    return count;
}

int max_int(int a, int b) {
    if (a > b)
        return a;
    return b;
}

void show(int side, char *line) {
    if (side)
        print_str("> ");
    else
        print_str("< ");
    print_str(line);
    putchar('\n');
}

void walk(int i, int j) {
    /* Recursive backtrack over the LCS table printing the edit script. */
    if (i > 0 && j > 0 && strcmp(text_a[i - 1], text_b[j - 1]) == 0) {
        walk(i - 1, j - 1);
    } else if (j > 0 && (i == 0 || lcs[i][j - 1] >= lcs[i - 1][j])) {
        walk(i, j - 1);
        show(1, text_b[j - 1]);
    } else if (i > 0) {
        walk(i - 1, j);
        show(0, text_a[i - 1]);
    }
}

int main() {
    int na = read_side(text_a[0], 1);
    int nb = read_side(text_b[0], 0);
    int i;
    int j;
    for (i = 1; i <= na; i++)
        for (j = 1; j <= nb; j++) {
            if (strcmp(text_a[i - 1], text_b[j - 1]) == 0)
                lcs[i][j] = lcs[i - 1][j - 1] + 1;
            else
                lcs[i][j] = max_int(lcs[i][j - 1], lcs[i - 1][j]);
        }
    walk(na, nb);
    print_str("lcs ");
    print_int(lcs[na][nb]);
    putchar('\n');
    return 0;
}
"""


def _make_stdin():
    rng = Lcg(41)
    base = text_lines(26, words_per_line=4, seed=42).strip("\n").split("\n")
    edited = list(base)
    # Delete, mutate and insert a few lines deterministically.
    del edited[rng.below(len(edited))]
    edited[rng.below(len(edited))] = "a changed line of text"
    edited.insert(rng.below(len(edited)), "an inserted line appears")
    return ("\n".join(base) + "\n%%\n" + "\n".join(edited) + "\n").encode("latin-1")


STDIN = _make_stdin()
