"""vpcc -- very portable C compiler (Appendix I, class: user code).

The original workload is the authors' own C compiler.  We reproduce its
profile (tokenising, recursive-descent parsing, symbol-table lookups, code
emission through a switch) with a miniature expression-language compiler:
it reads assignment statements, parses them with full operator precedence,
and emits stack-machine code while also interpreting the program.
"""

NAME = "vpcc"
CLASS = "user"
DESCRIPTION = "Very Portable C compiler"

SOURCE = r"""
char src[2048];
int src_len = 0;
int pos = 0;

/* token kinds */
int tok_kind = 0;       /* 0 eof, 1 num, 2 ident, 3 punct */
int tok_value = 0;      /* number value or punct char */
int tok_name = 0;       /* variable index 'a'..'z' */

int vars[26];
int stack[64];
int sp = 0;
int kind_count[4];

/* Dense switch -> compiled through a jump table (Section 4, Indirect
   Jumps). */
void count_token() {
    switch (tok_kind) {
    case 0:
        kind_count[0]++;
        break;
    case 1:
        kind_count[1]++;
        break;
    case 2:
        kind_count[2]++;
        break;
    case 3:
        kind_count[3]++;
        break;
    }
}

void read_source() {
    int c;
    while ((c = getchar()) != -1 && src_len < 2047) {
        src[src_len] = c;
        src_len++;
    }
    src[src_len] = 0;
}

void next_token() {
    int c;
    while (src[pos] == ' ' || src[pos] == '\n' || src[pos] == '\t')
        pos++;
    c = src[pos];
    if (c == 0) {
        tok_kind = 0;
        return;
    }
    if (c >= '0' && c <= '9') {
        tok_kind = 1;
        tok_value = 0;
        while (src[pos] >= '0' && src[pos] <= '9') {
            tok_value = tok_value * 10 + (src[pos] - '0');
            pos++;
        }
        return;
    }
    if (c >= 'a' && c <= 'z') {
        tok_kind = 2;
        tok_name = c - 'a';
        pos++;
        return;
    }
    tok_kind = 3;
    tok_value = c;
    pos++;
}

void advance() {
    next_token();
    count_token();
}

void emit_op(char *op) {
    print_str("  ");
    print_str(op);
    putchar('\n');
}

void push(int v) {
    stack[sp] = v;
    sp++;
}

int pop() {
    sp--;
    return stack[sp];
}

void expression();

void primary() {
    if (tok_kind == 1) {
        print_str("  push ");
        print_int(tok_value);
        putchar('\n');
        push(tok_value);
        advance();
    } else if (tok_kind == 2) {
        print_str("  load ");
        putchar('a' + tok_name);
        putchar('\n');
        push(vars[tok_name]);
        advance();
    } else if (tok_kind == 3 && tok_value == '(') {
        advance();
        expression();
        if (tok_kind == 3 && tok_value == ')')
            advance();
    } else if (tok_kind == 3 && tok_value == '-') {
        advance();
        primary();
        emit_op("neg");
        push(-pop());
    } else {
        advance();
    }
}

void term() {
    int op;
    int b;
    int a;
    primary();
    while (tok_kind == 3 && (tok_value == '*' || tok_value == '/'
                             || tok_value == '%')) {
        op = tok_value;
        advance();
        primary();
        b = pop();
        a = pop();
        switch (op) {
        case '*':
            emit_op("mul");
            push(a * b);
            break;
        case '/':
            emit_op("div");
            if (b)
                push(a / b);
            else
                push(0);
            break;
        case '%':
            emit_op("mod");
            if (b)
                push(a % b);
            else
                push(0);
            break;
        }
    }
}

void expression() {
    int op;
    int b;
    int a;
    term();
    while (tok_kind == 3 && (tok_value == '+' || tok_value == '-')) {
        op = tok_value;
        advance();
        term();
        b = pop();
        a = pop();
        if (op == '+') {
            emit_op("add");
            push(a + b);
        } else {
            emit_op("sub");
            push(a - b);
        }
    }
}

void statement() {
    int target;
    if (tok_kind != 2) {
        advance();
        return;
    }
    target = tok_name;
    next_token();
    if (tok_kind == 3 && tok_value == '=')
        advance();
    expression();
    print_str("  store ");
    putchar('a' + target);
    putchar('\n');
    vars[target] = pop();
    if (tok_kind == 3 && tok_value == ';')
        advance();
}

int main() {
    int i;
    int checksum = 0;
    read_source();
    advance();
    while (tok_kind != 0)
        statement();
    for (i = 0; i < 26; i++)
        checksum = checksum + vars[i] * (i + 1);
    print_str("checksum ");
    print_int(checksum);
    print_str(" kinds ");
    print_int(kind_count[0]);
    putchar(' ');
    print_int(kind_count[1]);
    putchar(' ');
    print_int(kind_count[2]);
    putchar(' ');
    print_int(kind_count[3]);
    putchar('\n');
    return 0;
}
"""


def _make_program():
    from repro.workloads.inputs import Lcg

    rng = Lcg(111)
    lines = []
    for i in range(60):
        target = chr(ord("a") + rng.below(26))
        a = chr(ord("a") + rng.below(26))
        b = rng.below(90) + 1
        op1 = rng.choice("+-*/%")
        op2 = rng.choice("+-*")
        c = rng.below(30) + 1
        lines.append(
            "%s = (%s %s %d) %s %d;" % (target, a, op1, b, op2, c)
        )
    return ("\n".join(lines) + "\n").encode("latin-1")


STDIN = _make_program()
