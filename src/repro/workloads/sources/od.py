"""od -- octal dump (Appendix I, class: utility)."""

from repro.workloads.inputs import byte_blob

NAME = "od"
CLASS = "utility"
DESCRIPTION = "Octal dump"

SOURCE = r"""
void print_octal(int value, int width) {
    char digits[12];
    int count = 0;
    do {
        digits[count] = '0' + value % 8;
        count++;
        value = value / 8;
    } while (value);
    while (count < width) {
        digits[count] = '0';
        count++;
    }
    while (count > 0) {
        count--;
        putchar(digits[count]);
    }
}

int main() {
    int offset = 0;
    int col = 0;
    int c;
    while ((c = getchar()) != -1) {
        if (col == 0) {
            print_octal(offset, 7);
            putchar(' ');
        }
        print_octal(c, 3);
        col++;
        offset++;
        if (col == 8) {
            putchar('\n');
            col = 0;
        } else
            putchar(' ');
    }
    if (col)
        putchar('\n');
    print_octal(offset, 7);
    putchar('\n');
    return 0;
}
"""

STDIN = byte_blob(500, seed=71)
