"""puzzle -- recursion and arrays (Appendix I, class: benchmark).

A scaled-down Baskett puzzle: recursively pack pieces of several sizes
into a one-dimensional board, counting placement trials and solutions --
the same deep-recursion, array-scanning profile as the classic benchmark.
"""

NAME = "puzzle"
CLASS = "benchmark"
DESCRIPTION = "Recursion, Arrays"

SOURCE = r"""
int board[24];
int piece_size[4];
int piece_count[4];
int trials = 0;
int solutions = 0;

int fits(int pos, int size) {
    int i;
    if (pos + size > 24)
        return 0;
    for (i = pos; i < pos + size; i++)
        if (board[i])
            return 0;
    return 1;
}

void place(int pos, int size, int value) {
    int i;
    for (i = pos; i < pos + size; i++)
        board[i] = value;
}

int first_empty() {
    int i;
    for (i = 0; i < 24; i++)
        if (!board[i])
            return i;
    return -1;
}

void solve() {
    int pos = first_empty();
    int kind;
    if (pos < 0) {
        solutions++;
        return;
    }
    if (solutions >= 40)
        return;
    for (kind = 0; kind < 4; kind++) {
        if (piece_count[kind] == 0)
            continue;
        trials++;
        if (fits(pos, piece_size[kind])) {
            place(pos, piece_size[kind], 1);
            piece_count[kind] = piece_count[kind] - 1;
            solve();
            piece_count[kind] = piece_count[kind] + 1;
            place(pos, piece_size[kind], 0);
        }
        if (solutions >= 40)
            return;
    }
}

int main() {
    piece_size[0] = 1;
    piece_size[1] = 2;
    piece_size[2] = 3;
    piece_size[3] = 4;
    piece_count[0] = 5;
    piece_count[1] = 4;
    piece_count[2] = 3;
    piece_count[3] = 2;
    solve();
    print_str("trials ");
    print_int(trials);
    print_str(" solutions ");
    print_int(solutions);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
