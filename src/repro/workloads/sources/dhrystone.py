"""dhrystone -- synthetic benchmark (Appendix I, class: benchmark).

A struct-free transliteration of the Dhrystone statement mix: global and
parameter assignments, nested calls, string copy/compare, array
assignments, and the characteristic branchy helper procedures.  The
record-type fields of the original become parallel global arrays
(DESIGN.md §3 documents the substitution).
"""

NAME = "dhrystone"
CLASS = "benchmark"
DESCRIPTION = "Synthetic Benchmark"

SOURCE = r"""
/* Record fields as parallel arrays: [0] and [1] are the two records. */
int rec_discr[2];
int rec_enum[2];
int rec_int[2];
char rec_string[2][32];

int int_glob = 0;
int bool_glob = 0;
char char1_glob = 0;
char char2_glob = 0;
int arr1_glob[50];
int arr2_glob[50];

int func1(int ch1, int ch2) {
    int ch_loc = ch1;
    if (ch_loc != ch2)
        return 0;
    char1_glob = ch_loc;
    return 1;
}

int func2(char *str1, char *str2) {
    int int_loc = 2;
    int ch_loc = 'A';
    while (int_loc <= 2)
        if (func1(str1[int_loc], str2[int_loc + 1]) == 0) {
            ch_loc = 'A';
            int_loc = int_loc + 1;
        }
    if (ch_loc >= 'W' && ch_loc < 'Z')
        int_loc = 7;
    if (ch_loc == 'R')
        return 1;
    if (strcmp(str1, str2) > 0) {
        int_loc = int_loc + 7;
        int_glob = int_loc;
        return 1;
    }
    return 0;
}

int func3(int enum_par) {
    int enum_loc = enum_par;
    if (enum_loc == 2)
        return 1;
    return 0;
}

void proc6(int enum_val, int *enum_ref) {
    *enum_ref = enum_val;
    if (!func3(enum_val))
        *enum_ref = 3;
    if (enum_val == 0)
        *enum_ref = 0;
    else if (enum_val == 2)
        *enum_ref = 1;
    else if (enum_val == 4)
        *enum_ref = 2;
}

void proc7(int in1, int in2, int *out) {
    int int_loc = in1 + 2;
    *out = in2 + int_loc;
}

void proc8(int *arr1, int *arr2, int int1, int int2) {
    int int_loc = int1 + 5;
    int index;
    arr1[int_loc] = int2;
    arr1[int_loc + 1] = arr1[int_loc];
    arr1[int_loc + 30] = int_loc;
    for (index = int_loc; index <= int_loc + 1; index++)
        arr2[index] = int_loc;
    arr2[int_loc + 20] = arr2[int_loc + 20] + 1;
    int_glob = 5;
}

void proc5() {
    char1_glob = 'A';
    bool_glob = 0;
}

void proc4() {
    int bool_loc = char1_glob == 'A';
    bool_glob = bool_loc | bool_glob;
    char2_glob = 'B';
}

void proc3(int *ptr_out) {
    if (rec_discr[0] == 0)
        *ptr_out = rec_int[0];
    proc7(10, int_glob, &rec_int[0]);
}

void proc2(int *int_ref) {
    int int_loc = *int_ref + 10;
    int enum_loc = 0;
    int done = 0;
    while (!done) {
        if (char1_glob == 'A') {
            int_loc = int_loc - 1;
            *int_ref = int_loc - int_glob;
            enum_loc = 1;
        }
        if (enum_loc == 1)
            done = 1;
    }
}

void proc1(int rec1, int rec2) {
    rec_discr[rec2] = rec_discr[rec1];
    rec_int[rec2] = 5;
    rec_enum[rec2] = rec_enum[rec1];
    strcpy(rec_string[rec2], rec_string[rec1]);
    proc3(&rec_int[rec2]);
    if (rec_discr[rec2] == 0) {
        rec_int[rec2] = 6;
        proc6(rec_enum[rec1], &rec_enum[rec2]);
        proc7(rec_int[rec2], 10, &rec_int[rec2]);
    } else
        rec_discr[rec2] = rec_discr[rec1];
}

int main() {
    int run;
    int int1;
    int int2;
    int int3 = 0;
    char str1[32];
    char str2[32];
    int enum_loc = 0;
    strcpy(rec_string[0], "DHRYSTONE PROGRAM, SOME STRING");
    strcpy(str1, "DHRYSTONE PROGRAM, 1'ST STRING");
    rec_discr[0] = 0;
    rec_enum[0] = 2;
    rec_int[0] = 40;
    for (run = 0; run < 40; run++) {
        proc5();
        proc4();
        int1 = 2;
        int2 = 3;
        strcpy(str2, "DHRYSTONE PROGRAM, 2'ND STRING");
        enum_loc = 1;
        bool_glob = !func2(str1, str2);
        while (int1 < int2) {
            int3 = 5 * int1 - int2;
            proc7(int1, int2, &int3);
            int1 = int1 + 1;
        }
        proc8(arr1_glob, arr2_glob, int1, int3);
        proc1(0, 1);
        if (char2_glob >= 'A')
            int2 = 7;
        int2 = int2 * enum_loc;
        int3 = int2 / int1;
        int2 = 7 * (int3 - int2) - int1;
        proc2(&int1);
    }
    print_str("int_glob ");
    print_int(int_glob);
    print_str(" bool_glob ");
    print_int(bool_glob);
    print_str(" int1 ");
    print_int(int1);
    print_str(" int3 ");
    print_int(int3);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
