"""tr -- translate characters (Appendix I, class: utility)."""

from repro.workloads.inputs import text_lines

NAME = "tr"
CLASS = "utility"
DESCRIPTION = "Translate characters"

SOURCE = r"""
char table[128];

void build_table() {
    int i;
    for (i = 0; i < 128; i++)
        table[i] = i;
    /* lowercase -> uppercase, blanks -> underscores */
    for (i = 'a'; i <= 'z'; i++)
        table[i] = i - 'a' + 'A';
    table[' '] = '_';
}

int main() {
    int c;
    build_table();
    while ((c = getchar()) != -1) {
        if (c < 128)
            putchar(table[c]);
        else
            putchar(c);
    }
    return 0;
}
"""

STDIN = text_lines(140, words_per_line=6, seed=101)
