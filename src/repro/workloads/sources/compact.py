"""compact -- file compression (Appendix I, class: utility).

The original compact(1) used adaptive Huffman coding; this reproduction
does run-length encoding plus a static Huffman cost estimate over the byte
frequency table, which exercises the same control-flow profile (tight
byte loops, table updates, bit counting).
"""

from repro.workloads.inputs import byte_blob

NAME = "compact"
CLASS = "utility"
DESCRIPTION = "File Compression"

SOURCE = r"""
int freq[128];

/* Bits needed for a value (ceil log2). */
int bit_width(int n) {
    int bits = 0;
    while (n > 0) {
        bits++;
        n = n >> 1;
    }
    return bits;
}

int main() {
    int c;
    int prev = -1;
    int run = 0;
    int in_bytes = 0;
    int out_bytes = 0;
    int i;
    int symbols = 0;
    int cost_bits = 0;
    while ((c = getchar()) != -1) {
        in_bytes++;
        if (c < 128)
            freq[c]++;
        if (c == prev && run < 255) {
            run++;
        } else {
            if (run >= 4)
                out_bytes = out_bytes + 3;   /* marker, char, count */
            else
                out_bytes = out_bytes + run;
            prev = c;
            run = 1;
        }
    }
    if (run >= 4)
        out_bytes = out_bytes + 3;
    else
        out_bytes = out_bytes + run;
    /* Static-code cost estimate: frequent symbols get short codes. */
    for (i = 0; i < 128; i++) {
        if (freq[i] > 0) {
            symbols++;
            cost_bits = cost_bits + freq[i] * (1 + bit_width(in_bytes / freq[i]));
        }
    }
    print_str("in ");
    print_int(in_bytes);
    print_str(" rle ");
    print_int(out_bytes);
    print_str(" symbols ");
    print_int(symbols);
    print_str(" estbits ");
    print_int(cost_bits);
    putchar('\n');
    return 0;
}
"""

STDIN = byte_blob(900, seed=31)
