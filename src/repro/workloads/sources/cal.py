"""cal -- calendar generator (Appendix I, class: utility)."""

NAME = "cal"
CLASS = "utility"
DESCRIPTION = "Calendar Generator"

SOURCE = r"""
int is_leap(int year) {
    if (year % 400 == 0)
        return 1;
    if (year % 100 == 0)
        return 0;
    return year % 4 == 0;
}

int days_in_month(int month, int year) {
    int days[13];
    days[1] = 31; days[2] = 28; days[3] = 31; days[4] = 30;
    days[5] = 31; days[6] = 30; days[7] = 31; days[8] = 31;
    days[9] = 30; days[10] = 31; days[11] = 30; days[12] = 31;
    if (month == 2 && is_leap(year))
        return 29;
    return days[month];
}

/* Zeller's congruence: 0 = Sunday. */
int day_of_week(int day, int month, int year) {
    int k;
    int j;
    int h;
    if (month < 3) {
        month = month + 12;
        year = year - 1;
    }
    k = year % 100;
    j = year / 100;
    h = (day + 13 * (month + 1) / 5 + k + k / 4 + j / 4 + 5 * j) % 7;
    return (h + 6) % 7;
}

void print_pad(int n) {
    if (n < 10)
        putchar(' ');
    print_int(n);
}

void print_month(int month, int year) {
    int first = day_of_week(1, month, year);
    int days = days_in_month(month, year);
    int cell = 0;
    int day;
    print_int(month);
    putchar('/');
    print_int(year);
    putchar('\n');
    print_str("Su Mo Tu We Th Fr Sa\n");
    while (cell < first) {
        print_str("   ");
        cell++;
    }
    for (day = 1; day <= days; day++) {
        print_pad(day);
        putchar(' ');
        cell++;
        if (cell == 7) {
            putchar('\n');
            cell = 0;
        }
    }
    if (cell)
        putchar('\n');
}

int main() {
    int month;
    for (month = 1; month <= 12; month++)
        print_month(month, 1990);
    return 0;
}
"""

STDIN = b""
