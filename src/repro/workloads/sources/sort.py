"""sort -- sort or merge files (Appendix I, class: utility).

Reads lines, sorts an index array with Shell sort using ``strcmp``, prints
the sorted lines -- the pointer-chasing, compare-heavy profile of the real
utility.
"""

from repro.workloads.inputs import text_lines

NAME = "sort"
CLASS = "utility"
DESCRIPTION = "Sort or merge files"

SOURCE = r"""
char lines[96][48];
int order[96];

int read_lines() {
    int count = 0;
    int col = 0;
    int c;
    while ((c = getchar()) != -1 && count < 96) {
        if (c == '\n') {
            lines[count][col] = 0;
            count++;
            col = 0;
        } else if (col < 47) {
            lines[count][col] = c;
            col++;
        }
    }
    return count;
}

void shell_sort(int n) {
    int gap;
    int i;
    int j;
    int temp;
    for (gap = n / 2; gap > 0; gap = gap / 2)
        for (i = gap; i < n; i++)
            for (j = i - gap; j >= 0; j = j - gap) {
                if (strcmp(lines[order[j]], lines[order[j + gap]]) <= 0)
                    break;
                temp = order[j];
                order[j] = order[j + gap];
                order[j + gap] = temp;
            }
}

int main() {
    int n = read_lines();
    int i;
    for (i = 0; i < n; i++)
        order[i] = i;
    shell_sort(n);
    for (i = 0; i < n; i++) {
        print_str(lines[order[i]]);
        putchar('\n');
    }
    return 0;
}
"""

STDIN = text_lines(90, words_per_line=4, seed=91)
