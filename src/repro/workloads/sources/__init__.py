"""One module per Appendix I test program."""
