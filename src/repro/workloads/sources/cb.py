"""cb -- C program beautifier (Appendix I, class: utility)."""

from repro.workloads.inputs import c_source_sample

NAME = "cb"
CLASS = "utility"
DESCRIPTION = "C Program Beautifier"

SOURCE = r"""
/* Re-indent brace-structured input: strip leading blanks, emit 4 spaces
   per nesting level, adjust depth on braces. */

int main() {
    int c;
    int depth = 0;
    int at_line_start = 1;
    int pending = 0;
    while ((c = getchar()) != -1) {
        if (at_line_start) {
            if (c == ' ' || c == '\t')
                continue;
            pending = depth;
            if (c == '}')
                pending = pending - 1;
            while (pending > 0) {
                print_str("    ");
                pending--;
            }
            at_line_start = 0;
        }
        if (c == '{')
            depth++;
        else if (c == '}' && depth > 0)
            depth--;
        putchar(c);
        if (c == '\n')
            at_line_start = 1;
    }
    return 0;
}
"""

STDIN = c_source_sample(60, seed=21)
