"""mincost -- VLSI circuit partitioning (Appendix I, class: user code).

A greedy Kernighan-Lin-style min-cut bipartition of a synthetic netlist:
compute the cut cost of an initial partition, then repeatedly swap the
node pair with the best gain until no improving swap remains.
"""

NAME = "mincost"
CLASS = "user"
DESCRIPTION = "VLSI circuit partitioning"

SOURCE = r"""
int adj[26][26];
int side[26];

/* Deterministic pseudo-random netlist. */
int rng_state = 77;

int rng_next(int bound) {
    rng_state = (rng_state * 1103 + 12343) % 65536;
    return rng_state % bound;
}

void build_netlist() {
    int i;
    int j;
    int w;
    for (i = 0; i < 26; i++)
        for (j = i + 1; j < 26; j++) {
            w = 0;
            if (rng_next(100) < 30)
                w = 1 + rng_next(9);
            adj[i][j] = w;
            adj[j][i] = w;
        }
    for (i = 0; i < 26; i++)
        side[i] = i % 2;
}

int cut_cost() {
    int cost = 0;
    int i;
    int j;
    for (i = 0; i < 26; i++)
        for (j = i + 1; j < 26; j++)
            if (side[i] != side[j])
                cost = cost + adj[i][j];
    return cost;
}

/* External cost minus internal cost of one node. */
int gain_of(int node) {
    int gain = 0;
    int j;
    for (j = 0; j < 26; j++) {
        if (j == node)
            continue;
        if (side[j] != side[node])
            gain = gain + adj[node][j];
        else
            gain = gain - adj[node][j];
    }
    return gain;
}

int main() {
    int passes = 0;
    int improved = 1;
    int best_gain;
    int best_a;
    int best_b;
    int a;
    int b;
    int g;
    build_netlist();
    print_str("initial ");
    print_int(cut_cost());
    putchar('\n');
    while (improved && passes < 30) {
        improved = 0;
        best_gain = 0;
        best_a = -1;
        best_b = -1;
        for (a = 0; a < 26; a++) {
            if (side[a] != 0)
                continue;
            for (b = 0; b < 26; b++) {
                if (side[b] != 1)
                    continue;
                g = gain_of(a) + gain_of(b) - 2 * adj[a][b];
                if (g > best_gain) {
                    best_gain = g;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        if (best_a >= 0) {
            side[best_a] = 1;
            side[best_b] = 0;
            improved = 1;
        }
        passes++;
    }
    print_str("final ");
    print_int(cut_cost());
    print_str(" passes ");
    print_int(passes);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
