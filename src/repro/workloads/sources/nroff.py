"""nroff -- text formatter (Appendix I, class: utility).

A miniature fill-and-adjust formatter: words from stdin are packed into
lines of width 44; a ``.br`` request forces a break; short lines of
right-padding exercise the inner character loops the real nroff spends its
time in.
"""

from repro.workloads.inputs import text_lines

NAME = "nroff"
CLASS = "utility"
DESCRIPTION = "Text formatter"

SOURCE = r"""
char line[64];
int line_len = 0;
int line_words = 0;

void flush_line(int justify) {
    int i;
    int gaps;
    int extra;
    if (line_len == 0)
        return;
    if (justify && line_words > 1 && line_len < 44) {
        /* Distribute the slack over the first (44 - len) gaps. */
        gaps = line_words - 1;
        extra = 44 - line_len;
        for (i = 0; i < line_len; i++) {
            putchar(line[i]);
            if (line[i] == ' ' && extra > 0 && gaps > 0) {
                putchar(' ');
                extra--;
                gaps--;
            }
        }
    } else {
        for (i = 0; i < line_len; i++)
            putchar(line[i]);
    }
    putchar('\n');
    line_len = 0;
    line_words = 0;
}

void add_word(char *word, int len) {
    int i;
    if (line_len + len + 1 > 44)
        flush_line(1);
    if (line_len > 0) {
        line[line_len] = ' ';
        line_len++;
    }
    for (i = 0; i < len; i++) {
        line[line_len] = word[i];
        line_len++;
    }
    line_words++;
}

int main() {
    char word[32];
    int wlen = 0;
    int c;
    while ((c = getchar()) != -1) {
        if (c == ' ' || c == '\n' || c == '\t') {
            if (wlen > 0) {
                word[wlen] = 0;
                if (strcmp(word, ".br") == 0)
                    flush_line(0);
                else
                    add_word(word, wlen);
                wlen = 0;
            }
        } else if (wlen < 31) {
            word[wlen] = c;
            wlen++;
        }
    }
    if (wlen > 0) {
        word[wlen] = 0;
        add_word(word, wlen);
    }
    flush_line(0);
    return 0;
}
"""

STDIN = (
    text_lines(40, words_per_line=7, seed=61).replace("\n", " .br\n", 5)
).encode("latin-1")
