"""sieve -- iteration (Appendix I, class: benchmark)."""

NAME = "sieve"
CLASS = "benchmark"
DESCRIPTION = "Iteration"

SOURCE = r"""
char flags[4000];

int main() {
    int i;
    int k;
    int count = 0;
    int last = 0;
    for (i = 2; i < 4000; i++)
        flags[i] = 1;
    for (i = 2; i < 4000; i++) {
        if (flags[i]) {
            count++;
            last = i;
            for (k = i + i; k < 4000; k = k + i)
                flags[k] = 0;
        }
    }
    print_str("primes ");
    print_int(count);
    print_str(" last ");
    print_int(last);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
