"""whetstone -- floating-point arithmetic (Appendix I, class: benchmark).

The classic Whetstone module structure (array elements, conditional
jumps, trig, exp/log/sqrt) scaled down, with the transcendental functions
implemented in SmallC (see the runtime library).
"""

NAME = "whetstone"
CLASS = "benchmark"
DESCRIPTION = "Floating-Point arithmetic"

SOURCE = r"""
float e1[4];
float t = 0.499975;
float t1 = 0.50025;
float t2 = 2.0;

void pa(float *e) {
    int j = 0;
    do {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
        j++;
    } while (j < 6);
}

void p0(int *j_ref, int *k_ref, int *l_ref) {
    e1[*j_ref] = e1[*k_ref];
    e1[*k_ref] = e1[*l_ref];
    e1[*l_ref] = e1[*j_ref];
}

void p3(float x, float y, float *z) {
    float x1 = x;
    float y1 = y;
    x1 = t * (x1 + y1);
    y1 = t * (x1 + y1);
    *z = (x1 + y1) / t2;
}

int main() {
    float x1; float x2; float x3; float x4;
    float x; float y; float z;
    int i; int j; int k; int l;
    int n1 = 0; int n2 = 12; int n3 = 14; int n4 = 34;
    int n6 = 29; int n7 = 4; int n8 = 61; int n9 = 5; int n10 = 0; int n11 = 9;

    /* Module 1: simple identifiers */
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 1; i <= n2; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }

    /* Module 2: array elements */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 1; i <= n3; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }

    /* Module 3: array as parameter */
    for (i = 1; i <= n4; i++)
        pa(e1);

    /* Module 4: conditional jumps */
    j = 1;
    for (i = 1; i <= n6; i++) {
        if (j == 1)
            j = 2;
        else
            j = 3;
        if (j > 2)
            j = 0;
        else
            j = 1;
        if (j < 1)
            j = 1;
        else
            j = 0;
    }

    /* Module 6: integer arithmetic */
    j = 1; k = 2; l = 3;
    for (i = 1; i <= n8; i++) {
        j = j * (k - j) * (l - k);
        k = l * k - (l - j) * k;
        l = (l - k) * (k + j);
        e1[l - 2] = (float) (j + k + l);
        e1[k - 2] = (float) (j * k * l);
    }

    /* Module 7: trig */
    x = 0.5; y = 0.5;
    for (i = 1; i <= n7; i++) {
        x = t * f_atan(t2 * f_sin(x) * f_cos(x)
              / (f_cos(x + y) + f_cos(x - y) - 1.0));
        y = t * f_atan(t2 * f_sin(y) * f_cos(y)
              / (f_cos(x + y) + f_cos(x - y) - 1.0));
    }

    /* Module 8: procedure calls */
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 1; i <= n9; i++)
        p3(x, y, &z);

    /* Module 9: array references via pointers */
    j = 1; k = 2; l = 3;
    e1[0] = 1.0; e1[1] = 2.0; e1[2] = 3.0;
    for (i = 1; i <= n10 + 6; i++)
        p0(&j, &k, &l);

    /* Module 11: standard functions */
    x = 0.75;
    for (i = 1; i <= n11; i++)
        x = f_sqrt(f_exp(f_log(x) / t1));

    print_str("x1 "); print_float(x1);
    print_str(" e1[3] "); print_float(e1[3]);
    print_str(" z "); print_float(z);
    print_str(" x "); print_float(x);
    putchar('\n');
    print_str("j "); print_int(j);
    print_str(" k "); print_int(k);
    print_str(" l "); print_int(l);
    putchar('\n');
    return 0;
}
"""

STDIN = b""
