"""The differential machine oracle.

The reproduction's strongest correctness argument is that two machines
with *different* instruction sets, code generators, and emulators must
agree on every observable behaviour of every program.  This module makes
that argument executable three ways:

* :func:`run_differential` -- one program, both machines: identical
  stdout, exit status, and observable memory effects (the data segment
  holding globals; stacks are private machine state and legitimately
  differ).  Any mismatch raises a typed
  :class:`~repro.errors.MachineDivergence` whose detail names the first
  differing global.
* :func:`check_workloads` -- the oracle over the Appendix I suite.
* :func:`fuzz_differential` -- seeded random SmallC programs checked
  five ways (baseline vs branch-register vs the Python model, plus
  fast-engine and trace-engine vs reference-engine equivalence on each
  machine), with automatic delta-debugging of any failing case down to
  a small reproducer source file.
"""

import os
import random
from dataclasses import dataclass

from repro.ease.environment import compile_for_machine
from repro.emu.baseline_emu import run_baseline
from repro.emu.branchreg_emu import run_branchreg
from repro.emu.memory import DATA_BASE
from repro.errors import MachineDivergence, ReproError
from repro.fault.minimize import minimize
from repro.fault.progen import expected_output, program_source, random_program
from repro.harness.runner import DEFAULT_LIMIT, resolve_workloads
from repro.obs import log

FUZZ_LIMIT = 500_000  # generated programs are tiny; hangs fail fast


@dataclass
class DifferentialResult:
    """One program verified equivalent on both machines."""

    name: str
    baseline: object  # RunStats
    branchreg: object  # RunStats
    data_bytes: int  # size of the compared data segment

    @property
    def output(self):
        return self.baseline.output


def _attribute(image, address):
    """Name of the global owning ``address`` (best effort)."""
    best_name, best_addr = None, -1
    for name, addr in image.symbols.items():
        if best_addr < addr <= address:
            best_name, best_addr = name, addr
    return best_name or "?"


def _code_address_ranges(*images):
    """Data-segment byte ranges holding *code* addresses (switch jump
    tables, ``elem="label"`` globals).  Text layouts legitimately differ
    between the two machines, so these bytes are machine-specific and
    excluded from the equivalence check."""
    ranges = []
    for image in images:
        for name, gvar in image.mprog.globals.items():
            if gvar.elem == "label":
                addr = image.symbols[name]
                ranges.append((addr, addr + gvar.size))
    return ranges


def run_differential(
    source, stdin=b"", limit=None, name="", branchreg_options=None,
    deadline_s=None,
):
    """Run one program on both machines and verify equivalence.

    Checks stdout, exit status, and the final data segment
    (``DATA_BASE .. data_end``, i.e. every global the program could
    have written).  Globals holding code addresses -- switch jump
    tables -- are excluded: the two machines' text layouts legitimately
    differ, so their contents are machine-specific by construction.
    Raises :class:`MachineDivergence` on the first mismatch; its
    ``mismatches`` list names the failing channels and ``detail``
    pinpoints the first differing byte with its symbol.
    """
    base_image = compile_for_machine(source, "baseline").verify()
    br_image = compile_for_machine(
        source, "branchreg", **(branchreg_options or {})
    ).verify()
    base = run_baseline(
        base_image, stdin=stdin, limit=limit, program=name,
        deadline_s=deadline_s,
    )
    br = run_branchreg(
        br_image, stdin=stdin, limit=limit, program=name,
        deadline_s=deadline_s,
    )
    mismatches = []
    detail = {}
    if base.output != br.output:
        mismatches.append("output")
        detail["baseline_output"] = base.output[:200].decode("latin-1")
        detail["branchreg_output"] = br.output[:200].decode("latin-1")
    if base.exit_code != br.exit_code:
        mismatches.append("exit_code")
        detail["baseline_exit"] = base.exit_code
        detail["branchreg_exit"] = br.exit_code
    size = min(base_image.data_end, br_image.data_end) - DATA_BASE
    base_data = bytearray(base_image.memory.read_bytes(DATA_BASE, size))
    br_data = bytearray(br_image.memory.read_bytes(DATA_BASE, size))
    masked = 0
    for lo, hi in _code_address_ranges(base_image, br_image):
        lo, hi = max(lo - DATA_BASE, 0), min(hi - DATA_BASE, size)
        if lo < hi:
            base_data[lo:hi] = br_data[lo:hi] = b"\0" * (hi - lo)
            masked += hi - lo
    if base_data != br_data:
        mismatches.append("memory")
        offset = next(
            i for i in range(size) if base_data[i] != br_data[i]
        )
        address = DATA_BASE + offset
        detail["address"] = address
        detail["symbol"] = _attribute(base_image, address)
        detail["baseline_byte"] = base_data[offset]
        detail["branchreg_byte"] = br_data[offset]
    if mismatches:
        raise MachineDivergence(
            "machines diverge on %s: %s differ"
            % (name or "program", ", ".join(mismatches)),
            mismatches=mismatches,
            detail=detail,
        )
    return DifferentialResult(
        name=name, baseline=base, branchreg=br, data_bytes=size - masked
    )


def _oracle_task(task):
    """Worker-process body for one :func:`check_workloads` program.
    Module-level so it pickles; raises the typed error on divergence
    (typed errors pickle back to the parent intact)."""
    name, source, stdin, limit, options = task
    return run_differential(
        source, stdin=stdin, limit=limit, name=name,
        branchreg_options=dict(options) if options else None,
    )


def check_workloads(
    names=None, limit=DEFAULT_LIMIT, branchreg_options=None, jobs=None
):
    """Run the differential oracle over the workload suite.

    Returns the list of :class:`DifferentialResult`; raises on the
    first divergence.  Unlike :func:`repro.harness.runner.run_suite`
    this also compares final data segments, which the per-pair check in
    the experiment environment does not.

    ``jobs`` fans the per-program checks out across worker processes
    (default ``REPRO_JOBS``, else serial).  Results keep Appendix I
    registry order, and a divergence still surfaces as the
    registry-earliest failing program's typed error."""
    from repro.harness.parallel import default_jobs, map_tasks

    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    selected = resolve_workloads(tuple(names) if names is not None else None)
    if jobs > 1 and len(selected) > 1:
        log.info(
            "differential oracle: %d workloads across %d jobs",
            len(selected), jobs,
        )
        tasks = [
            (
                w.name,
                w.source,
                w.stdin_bytes(),
                limit,
                tuple(sorted((branchreg_options or {}).items())),
            )
            for w in selected
        ]
        return list(map_tasks(_oracle_task, tasks, jobs))
    results = []
    for w in selected:
        log.info("differential oracle: %s", w.name)
        results.append(
            run_differential(
                w.source, stdin=w.stdin_bytes(), limit=limit, name=w.name,
                branchreg_options=branchreg_options,
            )
        )
    return results


# -- fuzzing -----------------------------------------------------------------


def _check_generated(stmts, limit):
    """Oracle for one generated program: machines must agree with each
    other, with the Python model, *and* each machine's compiled engines
    (fast and trace) must be bit-identical to its reference engine.
    Raises ReproError on failure; an engine divergence minimises to a
    reproducer exactly like a machine divergence does.

    The trace engine's warm-up is lowered for the check (unless the
    caller already pinned ``REPRO_TRACE_WARMUP``) so generated loops
    actually reach compiled traces instead of retiring entirely inside
    the profiled warm-up.
    """
    from repro.harness.conformance import crosscheck_engines

    source = program_source(stmts)
    result = run_differential(source, limit=limit, name="generated")
    expected = expected_output(stmts)
    actual = result.output.decode("latin-1")
    if actual != expected:
        raise MachineDivergence(
            "machines agree with each other but not with the Python model: "
            "expected %r, got %r" % (expected, actual),
            mismatches=["model"],
            detail={"expected": expected, "actual": actual},
        )
    pinned = os.environ.get("REPRO_TRACE_WARMUP")
    if pinned is None:
        os.environ["REPRO_TRACE_WARMUP"] = "256"
    try:
        for machine in ("baseline", "branchreg"):
            crosscheck_engines(source, machine, limit=limit,
                               name="generated")
    finally:
        if pinned is None:
            os.environ.pop("REPRO_TRACE_WARMUP", None)
    return result


def _still_fails(stmts, limit):
    try:
        _check_generated(stmts, limit)
    except ReproError:
        return True
    return False


def _fuzz_task(task):
    """Worker-process body for one fuzz case: check the generated
    program and, on failure, delta-debug it to a minimal reproducer.
    Returns None on success, else a partial failure record (the parent
    stamps the seed and writes artifacts)."""
    index, stmts, limit = task
    try:
        _check_generated(stmts, limit)
    except ReproError as exc:
        minimized = minimize(stmts, lambda s: _still_fails(s, limit))
        return {
            "index": index,
            "error": type(exc).__name__,
            "message": str(exc),
            "source": program_source(minimized),
        }
    return None


def _write_fuzz_artifact(record, artifacts_dir, seed):
    os.makedirs(artifacts_dir, exist_ok=True)
    path = os.path.join(
        artifacts_dir, "repro_seed%d_case%d.c" % (seed, record["index"])
    )
    with open(path, "w") as handle:
        handle.write(
            "/* differential fuzz failure\n"
            " * seed=%d case=%d\n"
            " * %s: %s\n"
            " */\n%s"
            % (seed, record["index"], record["error"],
               record["message"], record["source"])
        )
    return path


def fuzz_differential(
    count=200, seed=0, limit=FUZZ_LIMIT, depth=2, artifacts_dir=None,
    max_failures=5, jobs=None,
):
    """Differential fuzzing: ``count`` seeded random programs, each an
    equivalence witness across baseline, branch-register, and Python.

    Deterministic for a given (count, seed, depth) at any job count:
    the programs are always drawn from one sequential RNG stream in the
    parent, so ``jobs`` (default ``REPRO_JOBS``, else serial) only
    decides how many worker processes check and minimise cases
    concurrently.  Failing cases are delta-debugged to a minimal
    reproducer; when ``artifacts_dir`` is set each reproducer is
    written there as a ``.c`` file with the failure recorded in a
    comment header.  Stops early after ``max_failures`` distinct
    failures (a parallel run may check later cases speculatively, but
    the report is truncated at the same case a serial run stops at).

    Returns a report dict: ``{"count", "seed", "checked", "failures"}``.
    """
    from repro.harness.parallel import default_jobs, map_tasks

    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    rng = random.Random(seed)
    failures = []
    checked = 0
    if jobs > 1:
        tasks = [
            (index, random_program(rng, depth=depth), limit)
            for index in range(count)
        ]
        for outcome in map_tasks(_fuzz_task, tasks, jobs):
            checked += 1
            if outcome is None:
                continue
            log.warning(
                "fuzz case %d failed: %s", outcome["index"], outcome["message"]
            )
            record = {
                "index": outcome["index"],
                "seed": seed,
                "error": outcome["error"],
                "message": outcome["message"],
                "source": outcome["source"],
            }
            if artifacts_dir:
                record["artifact"] = _write_fuzz_artifact(
                    record, artifacts_dir, seed
                )
            failures.append(record)
            if len(failures) >= max_failures:
                break
        return {
            "count": count,
            "seed": seed,
            "checked": checked,
            "failures": failures,
        }
    for index in range(count):
        stmts = random_program(rng, depth=depth)
        checked += 1
        try:
            _check_generated(stmts, limit)
        except ReproError as exc:
            log.warning("fuzz case %d failed: %s", index, exc)
            minimized = minimize(stmts, lambda s: _still_fails(s, limit))
            record = {
                "index": index,
                "seed": seed,
                "error": type(exc).__name__,
                "message": str(exc),
                "source": program_source(minimized),
            }
            if artifacts_dir:
                record["artifact"] = _write_fuzz_artifact(
                    record, artifacts_dir, seed
                )
            failures.append(record)
            if len(failures) >= max_failures:
                break
    return {
        "count": count,
        "seed": seed,
        "checked": checked,
        "failures": failures,
    }
