"""Harness-level chaos testing for the supervised suite runner.

The fault injectors in :mod:`repro.fault.inject` corrupt *emulated*
state -- images, registers, memory -- and assert the pipeline detects
the corruption.  This module injects faults one level up, into the
**harness itself**: workers are SIGKILLed mid-task, artifact-cache
entries are scribbled over, tasks are delayed, hung, or made to raise
transient exceptions.  A chaos *campaign* runs the suite under
:func:`repro.harness.supervise.run_suite_supervised` with a seeded fault
plan and asserts the supervision layer converges: the perturbed parallel
run must reassemble **byte-identical** to an unperturbed serial run.

Fault actions (one per task *attempt*, injected in the worker before the
real task body runs):

``("kill",)``
    ``SIGKILL`` the worker's own process -- the coordinator sees
    ``BrokenProcessPool``, respawns the pool, and reschedules.
``("raise", message)``
    Raise :class:`HarnessChaosError` -- a deliberately *untyped*
    (non-``ReproError``) exception, i.e. the transient-failure class the
    supervisor retries with backoff.
``("delay", seconds)``
    Sleep before running -- reorders completion without failing.
``("hang", seconds)``
    Sleep *as if stuck* -- long enough that only the parent-side
    ``task_timeout_s`` watchdog can recover (SIGKILL + reschedule).

Everything is driven by seeds (campaign seeds derive from the top-level
seed) so a failing campaign reproduces exactly from its number alone.
See ``docs/ROBUSTNESS.md`` ("Harness chaos") and ``repro chaos``.
"""

import os
import random
import signal
import tempfile
import time

from repro.obs import METRICS, log

#: Injected failing-action kinds (consume a task attempt when they fire).
_FAILING = ("kill", "raise", "hang")


class HarnessChaosError(Exception):
    """The chaos harness's injected transient failure.

    Deliberately **not** a :class:`~repro.errors.ReproError`: typed
    errors are deterministic and never retried, while this class exists
    precisely to exercise the supervisor's transient-retry path.
    """


def apply_chaos(action):
    """Execute one fault action inside a worker process.

    Called by :func:`repro.harness.supervise._supervised_task` right
    after the start marker is written and before the real task body.
    """
    kind = action[0]
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "raise":
        raise HarnessChaosError(action[1])
    elif kind == "delay":
        time.sleep(action[1])
    elif kind == "hang":
        # A "hang" is just a long sleep from the worker's point of view;
        # what makes it a hang is that only the parent-side watchdog can
        # end it early.  Sleep in small slices so a test's fallback
        # timeout still terminates if the watchdog is broken.
        deadline = time.monotonic() + action[1]
        while time.monotonic() < deadline:
            time.sleep(0.05)
    else:
        raise ValueError("unknown chaos action %r" % (kind,))


def chaos_plan(
    names,
    rng,
    kills=0,
    raises=0,
    delays=0,
    hangs=0,
    delay_s=0.05,
    hang_s=30.0,
    max_attempts=3,
):
    """A seeded fault plan: {workload: [action per attempt, ...]}.

    Failing actions (kill/raise/hang) are capped at ``max_attempts - 1``
    per workload so every task retains at least one clean attempt and
    the campaign can converge; a fault that cannot be placed within that
    budget is dropped (and reported).  Returns ``(plan, placed)`` where
    ``placed`` counts the faults actually scheduled per kind.
    """
    names = list(names)
    plan = {name: [] for name in names}

    def place(action):
        failing = action[0] in _FAILING
        candidates = names[:]
        rng.shuffle(candidates)
        for name in candidates:
            budget = sum(1 for a in plan[name] if a[0] in _FAILING)
            if failing and budget >= max_attempts - 1:
                continue
            plan[name].append(action)
            return True
        return False

    placed = {"kill": 0, "raise": 0, "delay": 0, "hang": 0}
    for index in range(kills):
        placed["kill"] += place(("kill",))
    for index in range(raises):
        placed["raise"] += place(
            ("raise", "injected transient failure #%d" % index)
        )
    for _ in range(hangs):
        placed["hang"] += place(("hang", hang_s))
    for _ in range(delays):
        placed["delay"] += place(("delay", delay_s * (0.5 + rng.random())))
    dropped = kills + raises + hangs + delays - sum(placed.values())
    if dropped:
        log.warning("chaos plan dropped %d unplaceable fault(s)", dropped)
    return {k: v for k, v in plan.items() if v}, placed


def corrupt_cache_entries(cache_root, count, rng):
    """Scribble over ``count`` artifact-cache entries (seeded choice).

    Each victim's payload is truncated and tailed with garbage, so the
    cache's checksum line no longer matches -- the torn/corrupt shape a
    crashed writer or bad disk produces.  Returns the corrupted paths.
    The supervised run must *detect* each one (counted
    ``harness.artifact_cache{result=corrupt}``), drop it, and rebuild.
    """
    try:
        entries = sorted(
            name for name in os.listdir(cache_root) if name.endswith(".mpc")
        )
    except OSError:
        entries = []
    victims = rng.sample(entries, min(count, len(entries)))
    corrupted = []
    for name in victims:
        path = os.path.join(cache_root, name)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
                handle.seek(0, os.SEEK_END)
                handle.write(b"\x00chaos\x00")
            corrupted.append(path)
        except OSError:
            pass
    if len(corrupted) < count:
        log.warning(
            "chaos: corrupted %d/%d cache entries (cache too small?)",
            len(corrupted), count,
        )
    return corrupted


def _counter_value(snapshot, name):
    """Sum of a counter across all label sets in a metrics snapshot."""
    return sum(
        row["value"] for row in snapshot.get("counters", ())
        if row["name"] == name
    )


def run_chaos(
    seed=0,
    campaigns=5,
    jobs=2,
    subset=None,
    limit=200_000,
    kills=3,
    raises=2,
    delays=2,
    corrupt=2,
    hangs=0,
    hang_s=30.0,
    task_timeout_s=None,
    max_attempts=3,
    keep_going=False,
):
    """Run seeded chaos campaigns; returns a summary dict.

    Each campaign perturbs one supervised parallel suite run -- worker
    SIGKILLs, injected transient exceptions, delays, optional hangs, and
    ``corrupt`` freshly-scribbled artifact-cache entries -- and asserts
    the result is byte-identical (PairResult equality, which includes
    program output, exit status, and every instruction/branch counter)
    to the unperturbed serial reference computed once up front.

    The summary has ``converged`` / ``divergent`` campaign counts, the
    per-campaign records, fault totals, and the supervision telemetry
    delta across the whole run.  ``keep_going=False`` stops at the first
    divergent campaign (its seed reproduces it exactly).
    """
    from repro.harness.checkpoint import CheckpointJournal, checkpoint_run_key
    from repro.harness.runner import FAST_SUBSET, resolve_workloads, run_suite
    from repro.harness.supervise import SupervisePolicy, run_suite_supervised
    from repro.emu.fastcore import resolve_engine

    names = tuple(subset) if subset is not None else FAST_SUBSET
    workloads = resolve_workloads(names)
    engine = resolve_engine(None)
    if hangs and task_timeout_s is None:
        task_timeout_s = max(0.5, hang_s / 10.0)
    before = METRICS.snapshot()
    log.info(
        "chaos: %d campaign(s), seed %d, %d workload(s), jobs=%d "
        "(%d kill / %d raise / %d delay / %d hang / %d corrupt per campaign)",
        campaigns, seed, len(workloads), jobs,
        kills, raises, delays, hangs, corrupt,
    )
    reference = run_suite(
        subset=names, limit=limit, jobs=1, use_cache=False, cache_dir=False
    )
    records = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        cache_root = os.path.join(root, "cache")
        # Warm the artifact cache once so every campaign has real
        # entries to corrupt; the supervised runs self-heal it.
        run_suite(
            subset=names, limit=limit, jobs=1, use_cache=False,
            cache_dir=cache_root,
        )
        for campaign in range(campaigns):
            rng = random.Random("%d:%d" % (seed, campaign))
            plan, placed = chaos_plan(
                [w.name for w in workloads], rng,
                kills=kills, raises=raises, delays=delays, hangs=hangs,
                hang_s=hang_s, max_attempts=max_attempts,
            )
            corrupted = corrupt_cache_entries(cache_root, corrupt, rng)
            checkpoint = os.path.join(root, "campaign-%d.jsonl" % campaign)
            policy = SupervisePolicy(
                max_attempts=max_attempts,
                backoff_base_s=0.01,
                backoff_cap_s=0.1,
                seed=rng.randrange(2**31),
                task_timeout_s=task_timeout_s,
            )
            journal = CheckpointJournal.open(
                checkpoint,
                checkpoint_run_key(
                    names=[w.name for w in workloads], limit=limit,
                    engine=engine,
                ),
            )
            try:
                result = run_suite_supervised(
                    workloads, limit,
                    jobs=jobs,
                    cache_dir=cache_root,
                    engine=engine,
                    policy=policy,
                    journal=journal,
                    fault_plan=plan,
                )
            finally:
                journal.close()
            converged = (
                list(result) == list(reference) and not result.failures
            )
            record = {
                "campaign": campaign,
                "seed": seed,
                "converged": converged,
                "injected": placed,
                "corrupted": len(corrupted),
                "quarantined": len(result.quarantined),
            }
            records.append(record)
            log.info(
                "chaos campaign %d/%d: %s (%s)",
                campaign + 1, campaigns,
                "converged" if converged else "DIVERGED",
                ", ".join("%s=%d" % kv for kv in sorted(placed.items())),
            )
            if not converged and not keep_going:
                break
    after = METRICS.snapshot()
    telemetry = {
        name: _counter_value(after, name) - _counter_value(before, name)
        for name in (
            "harness.retries", "harness.worker_crashes",
            "harness.hang_kills", "harness.quarantined",
        )
    }
    converged = sum(1 for r in records if r["converged"])
    return {
        "campaigns": len(records),
        "requested": campaigns,
        "converged": converged,
        "divergent": len(records) - converged,
        "records": records,
        "injected": {
            kind: sum(r["injected"][kind] for r in records)
            for kind in ("kill", "raise", "delay", "hang")
        },
        "corrupted": sum(r["corrupted"] for r in records),
        "telemetry": telemetry,
    }


def render_chaos(summary):
    """Human-readable campaign table + verdict for ``repro chaos``."""
    lines = []
    lines.append(
        "chaos: %d/%d campaign(s) converged (%d divergent)"
        % (summary["converged"], summary["campaigns"], summary["divergent"])
    )
    injected = summary["injected"]
    lines.append(
        "injected: %d worker kill(s), %d transient raise(s), %d delay(s), "
        "%d hang(s); %d cache entr%s corrupted"
        % (
            injected["kill"], injected["raise"], injected["delay"],
            injected["hang"], summary["corrupted"],
            "y" if summary["corrupted"] == 1 else "ies",
        )
    )
    telemetry = summary["telemetry"]
    lines.append(
        "supervision: %d retr%s, %d pool rebuild(s), %d hang kill(s), "
        "%d quarantine(s)"
        % (
            telemetry["harness.retries"],
            "y" if telemetry["harness.retries"] == 1 else "ies",
            telemetry["harness.worker_crashes"],
            telemetry["harness.hang_kills"],
            telemetry["harness.quarantined"],
        )
    )
    for record in summary["records"]:
        if not record["converged"]:
            lines.append(
                "DIVERGED: campaign %d (reproduce with --seed %d "
                "--campaigns %d)"
                % (record["campaign"], record["seed"],
                   record["campaign"] + 1)
            )
    return "\n".join(lines)
