"""Fault injection, differential oracle, and failure triage.

This package is the robustness layer promised by the reproduction's
methodology: because the whole pipeline (compiler, two code generators,
two emulated machines) is deterministic, *any* corruption of an image or
of runtime machine state must surface as a typed
:class:`~repro.errors.ReproError` -- never as a silent wrong answer, a
hang, or a raw Python traceback.

* :mod:`repro.fault.inject`   -- the seeded injector catalogue and the
  campaign runner that classifies each fault as detected or masked.
* :mod:`repro.fault.oracle`   -- the differential machine oracle: run a
  program on both machines and cross-check stdout, exit status, and the
  observable data segment; plus the fuzzing entry point.
* :mod:`repro.fault.progen`   -- seeded structured SmallC program
  generation shared by the oracle fuzzer and the hypothesis tests.
* :mod:`repro.fault.minimize` -- delta-debugging of failing generated
  programs down to a small reproducer.
* :mod:`repro.fault.triage`   -- structured failure records for run
  manifests and the ``repro triage`` post-mortem view.
* :mod:`repro.fault.harness_chaos` -- chaos testing one level up: kill
  workers, corrupt cache entries, delay/hang tasks, and assert the
  supervised harness (``repro.harness.supervise``) converges to results
  byte-identical to an unperturbed serial run.

See ``docs/ROBUSTNESS.md`` for the fault model and guarantees.
"""

from repro.fault.inject import (
    IMAGE_INJECTORS,
    INJECTORS,
    RUNTIME_INJECTORS,
    InjectionOutcome,
    run_campaign,
    run_trial,
)
from repro.fault.harness_chaos import (
    HarnessChaosError,
    apply_chaos,
    chaos_plan,
    corrupt_cache_entries,
    render_chaos,
    run_chaos,
)
from repro.fault.minimize import minimize
from repro.fault.oracle import (
    DifferentialResult,
    check_workloads,
    fuzz_differential,
    run_differential,
)
from repro.fault.progen import (
    program_source,
    random_program,
    render_c,
    interpret,
    expected_output,
)
from repro.fault.triage import failure_record, render_triage

__all__ = [
    "IMAGE_INJECTORS",
    "INJECTORS",
    "RUNTIME_INJECTORS",
    "InjectionOutcome",
    "run_campaign",
    "run_trial",
    "HarnessChaosError",
    "apply_chaos",
    "chaos_plan",
    "corrupt_cache_entries",
    "render_chaos",
    "run_chaos",
    "minimize",
    "DifferentialResult",
    "check_workloads",
    "fuzz_differential",
    "run_differential",
    "program_source",
    "random_program",
    "render_c",
    "interpret",
    "expected_output",
    "failure_record",
    "render_triage",
]
