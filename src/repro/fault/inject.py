"""Deterministic seeded fault injection.

Two injector families, both driven by a :class:`random.Random` seed so
every fault is exactly reproducible:

* **Image injectors** corrupt a loaded :class:`~repro.emu.loader.Image`
  before execution -- a bit flip in one encoded instruction word
  (decoded back through the Figure 10/11 formats, so the flip lands in
  a real field: opcode, displacement, or immediate), a truncated text
  segment, or a clobbered control-flow relocation.
* **Runtime injectors** corrupt live machine state -- a branch register
  stuck at a poison value, a branch register whose writes commit one
  write late, dropped instruction-cache prefetches, or a misaligned
  data access.

The campaign runner executes the faulted program under the emulators'
hardened run loop and classifies each trial:

* ``detected`` -- a typed :class:`~repro.errors.ReproError` surfaced, at
  load time (``image.verify``), at runtime (emulator), or through the
  output oracle (the faulted run's observable behaviour differs from a
  clean run: a :class:`~repro.errors.MachineDivergence` is recorded).
* ``masked``   -- the fault had no observable effect (e.g. a flipped
  instruction that is never executed, or dropped prefetches, which only
  cost stall cycles).
* ``escaped``  -- anything else (a raw exception or silent hang).  The
  test suite asserts this never happens; the category exists so a
  regression shows up as data rather than as a crash.
"""

import copy
import random
from dataclasses import dataclass, field

from repro.ease.environment import compile_for_machine
from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.emu.memory import DATA_BASE
from repro.errors import MachineDivergence, ReproError
from repro.fault.triage import failure_record
from repro.machine.encoding import (
    MNEMONICS,
    OPCODES,
    BaselineEncoder,
    BranchRegEncoder,
)
from repro.rtl.operand import Imm

DEFAULT_LIMIT = 2_000_000
DEFAULT_DEADLINE_S = 10.0
_POISON = 0x2  # misaligned and outside the text segment: doubly invalid


# -- image injectors ---------------------------------------------------------


def _encoder_for(image):
    if image.spec.name == "baseline":
        return BaselineEncoder(image.spec)
    return BranchRegEncoder(image.spec)


def inject_bitflip(image, rng):
    """Flip one bit of one encoded instruction word.

    The word is produced by the machine's real encoder, so the bit
    position selects a genuine format field; the flip is then decoded
    back onto the instruction object (the emulators execute objects,
    not words).  Flips in the opcode field can produce an undecodable
    opcode (caught by ``image.verify``) or a different valid opcode
    (wrong execution, caught at runtime or by the output oracle).
    """
    index = rng.randrange(len(image.instrs))
    ins = image.instrs[index]
    encoder = _encoder_for(image)
    encoder.encode(ins)  # prove the pre-image encodes; fields are real
    bit = rng.randrange(32)
    mutant = copy.copy(ins)
    if bit >= 26 or (ins.t_addr is None and not _first_imm(ins)):
        number = OPCODES[ins.op] ^ (1 << (bit % 6))
        mutant.op = MNEMONICS.get(number, "undecodable(op=%d)" % number)
        what = "op %s -> %s" % (ins.op, mutant.op)
    elif ins.t_addr is not None:
        mutant.t_addr = ins.t_addr ^ (4 << (bit % 16))
        what = "target 0x%x -> 0x%x" % (ins.t_addr, mutant.t_addr)
    else:
        pos, imm = _first_imm(ins)
        flipped = _wrap32(imm.value ^ (1 << (bit % 13)))
        mutant.xsrcs = list(ins.xsrcs)
        mutant.xsrcs[pos] = Imm(flipped)
        what = "imm %d -> %d" % (imm.value, flipped)
    image.instrs[index] = mutant
    return "bit %d of word at 0x%x (%s)" % (bit, ins.addr, what)


def inject_truncate(image, rng):
    """Drop the tail of the text segment, as a short read would."""
    count = rng.randint(1, min(8, len(image.instrs) - 1))
    cut = image.text_end() - 4 * count
    del image.instrs[-count:]
    return "text truncated by %d words at 0x%x" % (count, cut)


def inject_clobber_reloc(image, rng):
    """Corrupt one resolved control-flow relocation (``t_addr``)."""
    sites = [i for i, ins in enumerate(image.instrs) if ins.t_addr is not None]
    index = rng.choice(sites)
    ins = image.instrs[index]
    mode = rng.choice(("misalign", "past_end", "data"))
    mutant = copy.copy(ins)
    if mode == "misalign":
        mutant.t_addr = ins.t_addr + 2
    elif mode == "past_end":
        mutant.t_addr = image.text_end() + 64
    else:
        mutant.t_addr = DATA_BASE + 8
    image.instrs[index] = mutant
    return "relocation at 0x%x: 0x%x -> 0x%x (%s)" % (
        ins.addr, ins.t_addr, mutant.t_addr, mode,
    )


def _first_imm(ins):
    for pos, src in enumerate(getattr(ins, "xsrcs", []) or []):
        if isinstance(src, Imm):
            return pos, src
    return None


def _wrap32(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


# -- runtime injectors -------------------------------------------------------


class _StuckRegs(list):
    """Branch-register file with one register stuck at a poison value."""

    def __init__(self, values, index, poison):
        super().__init__(values)
        self._stuck = index
        list.__setitem__(self, index, poison)

    def __setitem__(self, index, value):
        if index == self._stuck:
            return
        list.__setitem__(self, index, value)


class _StaleRegs(list):
    """Branch-register file where one register commits writes a write
    late: readers see the previous value until the *next* write lands."""

    def __init__(self, values, index):
        super().__init__(values)
        self._stale = index
        self._pending = None

    def __setitem__(self, index, value):
        if index == self._stale:
            pending, self._pending = self._pending, value
            if pending is not None:
                list.__setitem__(self, index, pending)
            return
        list.__setitem__(self, index, value)


class _MisalignedMemory:
    """Memory proxy that knocks the Nth word load off alignment."""

    def __init__(self, memory, trigger):
        self._memory = memory
        self._trigger = trigger
        self._count = 0

    def __getattr__(self, name):
        return getattr(self._memory, name)

    def load_word(self, address):
        self._count += 1
        if self._count == self._trigger:
            address += 2
        return self._memory.load_word(address)


def inject_stuck_branch_reg(emulator, rng):
    """One branch register ignores all writes and reads back a poison
    address; the first transfer through it is a wild jump."""
    index = rng.randrange(len(emulator.b))
    emulator.b = _StuckRegs(emulator.b, index, _POISON)
    return "b%d stuck at 0x%x" % (index, _POISON)


def inject_stale_branch_reg(emulator, rng):
    """One branch register commits each write one write late, the
    register-file analogue of a dropped forwarding path."""
    index = rng.randrange(len(emulator.b))
    emulator.b = _StaleRegs(emulator.b, index)
    return "b%d commits writes one write late" % index


def inject_dropped_prefetch(emulator, rng):
    """The cache ignores every prefetch request (Section 8's mechanism
    silently disabled).  Purely a performance fault: demand misses rise
    but output must not change, so the expected outcome is ``masked``."""
    cache = emulator.icache
    if cache is None:
        raise ValueError("dropped_prefetch requires an instruction cache")

    def prefetch(addr, now):
        cache.stats.prefetch_drops += 1

    cache.prefetch = prefetch
    return "all prefetches dropped"


def inject_misaligned_access(emulator, rng):
    """The Nth word load issues at address+2, as a corrupted pointer
    or a broken load/store unit would."""
    trigger = rng.randint(1, 4)
    emulator.memory = _MisalignedMemory(emulator.memory, trigger)
    return "word load #%d misaligned by +2" % trigger


IMAGE_INJECTORS = {
    "bitflip": inject_bitflip,
    "truncate": inject_truncate,
    "clobber_reloc": inject_clobber_reloc,
}

RUNTIME_INJECTORS = {
    "stuck_branch_reg": inject_stuck_branch_reg,
    "stale_branch_reg": inject_stale_branch_reg,
    "dropped_prefetch": inject_dropped_prefetch,
    "misaligned_access": inject_misaligned_access,
}

INJECTORS = dict(IMAGE_INJECTORS, **RUNTIME_INJECTORS)

# Injectors that only exist on the branch-register machine.
_BRANCHREG_ONLY = ("stuck_branch_reg", "stale_branch_reg")


# -- campaign runner ---------------------------------------------------------


@dataclass
class InjectionOutcome:
    """Classification of one injection trial."""

    injector: str
    machine: str
    seed: int
    site: str = ""
    outcome: str = "masked"  # "detected" | "masked" | "escaped"
    detected_by: str = None  # "load" | "runtime" | "oracle"
    error: str = None
    message: str = None
    post_mortem: dict = field(default=None)

    def to_dict(self):
        return {
            "injector": self.injector,
            "machine": self.machine,
            "seed": self.seed,
            "site": self.site,
            "outcome": self.outcome,
            "detected_by": self.detected_by,
            "error": self.error,
            "message": self.message,
            "post_mortem": self.post_mortem,
        }


def _make_emulator(machine, image, stdin, limit, icache, deadline_s):
    cls = BaselineEmulator if machine == "baseline" else BranchRegEmulator
    emulator = cls(
        image, stdin=stdin, limit=limit, icache=icache,
        deadline_s=deadline_s, record_edges=True,
    )
    emulator.stats.program = "faulted"
    return emulator


def run_trial(
    source,
    injector,
    machine="branchreg",
    seed=0,
    stdin=b"",
    limit=DEFAULT_LIMIT,
    deadline_s=DEFAULT_DEADLINE_S,
    icache_factory=None,
    branchreg_options=None,
):
    """Inject one fault into one program and classify the outcome.

    The clean reference run and the faulted run use freshly compiled
    images, so trials never contaminate each other.  ``icache_factory``
    (a zero-argument callable) is required by ``dropped_prefetch`` and
    optional elsewhere.
    """
    if injector not in INJECTORS:
        raise ValueError(
            "unknown injector %r (have: %s)"
            % (injector, ", ".join(sorted(INJECTORS)))
        )
    if machine != "branchreg" and injector in _BRANCHREG_ONLY:
        raise ValueError("%s only exists on the branch-register machine"
                         % injector)
    if injector == "dropped_prefetch" and icache_factory is None:
        raise ValueError("dropped_prefetch requires an instruction cache "
                         "(pass icache_factory)")
    options = branchreg_options if machine == "branchreg" else None
    rng = random.Random(seed)
    result = InjectionOutcome(injector=injector, machine=machine, seed=seed)

    clean_image = compile_for_machine(source, machine, **(options or {}))
    clean = _make_emulator(
        machine, clean_image, stdin, limit, None, deadline_s
    ).run()

    image = compile_for_machine(source, machine, **(options or {}))
    try:
        if injector in IMAGE_INJECTORS:
            result.site = IMAGE_INJECTORS[injector](image, rng)
            image.verify()
        emulator = _make_emulator(
            machine, image, stdin, limit,
            icache_factory() if icache_factory is not None else None,
            deadline_s,
        )
        if injector in RUNTIME_INJECTORS:
            result.site = RUNTIME_INJECTORS[injector](emulator, rng)
        stats = emulator.run()
    except ReproError as exc:
        result.outcome = "detected"
        result.detected_by = (
            "load" if type(exc).__name__ == "ImageCorruption" else "runtime"
        )
        result.error = type(exc).__name__
        result.message = str(exc)
        result.post_mortem = failure_record("faulted", exc)
        return result
    except Exception as exc:  # pragma: no cover - would be a robustness bug
        result.outcome = "escaped"
        result.error = type(exc).__name__
        result.message = str(exc)
        return result

    if stats.output != clean.output or stats.exit_code != clean.exit_code:
        divergence = MachineDivergence(
            "fault changed observable behaviour on %s: output %r... vs %r..."
            % (machine, clean.output[:60], stats.output[:60]),
            mismatches=[
                name
                for name, differs in (
                    ("output", stats.output != clean.output),
                    ("exit_code", stats.exit_code != clean.exit_code),
                )
                if differs
            ],
        )
        result.outcome = "detected"
        result.detected_by = "oracle"
        result.error = type(divergence).__name__
        result.message = str(divergence)
        result.post_mortem = failure_record("faulted", divergence)
    return result


def run_campaign(
    source,
    machine="branchreg",
    injectors=None,
    trials_per_injector=3,
    seed=0,
    stdin=b"",
    limit=DEFAULT_LIMIT,
    deadline_s=DEFAULT_DEADLINE_S,
    icache_factory=None,
    branchreg_options=None,
):
    """Run a seeded injection campaign; returns a list of
    :class:`InjectionOutcome`, one per (injector, trial)."""
    chosen = list(injectors) if injectors is not None else sorted(INJECTORS)
    if machine != "branchreg":
        chosen = [name for name in chosen if name not in _BRANCHREG_ONLY]
    if icache_factory is None:
        chosen = [name for name in chosen if name != "dropped_prefetch"]
    outcomes = []
    for name in chosen:
        for trial in range(trials_per_injector):
            outcomes.append(
                run_trial(
                    source, name, machine=machine,
                    seed=seed * 10_000 + trial * 100 + _stable_offset(name),
                    stdin=stdin, limit=limit, deadline_s=deadline_s,
                    icache_factory=icache_factory,
                    branchreg_options=branchreg_options,
                )
            )
    return outcomes


def _stable_offset(name):
    """A small per-injector seed offset that does not depend on hash
    randomisation (so campaigns replay bit-for-bit across processes)."""
    return sum(ord(ch) for ch in name) % 97
