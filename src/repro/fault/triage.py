"""Structured failure records and the ``repro triage`` post-mortem view.

A failure record is the JSON-safe distillation of one caught
:class:`~repro.errors.ReproError`: the typed error name, the message,
and -- when the emulators' hardened run loop stamped it -- the
post-mortem machine state (pc, instruction count, debug-map source
attribution, and the last control-flow edges from the ring buffer).
The fault-tolerant suite runner embeds these records in the run
manifest's ``failures`` section; ``render_triage`` turns a manifest
back into a human-readable post-mortem.
"""

from repro.errors import format_address


def failure_record(name, exc):
    """A JSON-safe record of one caught error.

    Post-mortem fields are ``None`` when the error carries no machine
    state (compile-time errors, load-time :class:`ImageCorruption`).
    """
    return {
        "workload": name,
        "error": type(exc).__name__,
        "message": str(exc),
        "machine": getattr(exc, "machine", None),
        "pc": getattr(exc, "pc", None),
        "icount": getattr(exc, "icount", None),
        "function": getattr(exc, "function", None),
        "line": getattr(exc, "line", None),
        "edges": getattr(exc, "edges", None),
    }


def _render_failure(record):
    lines = []
    lines.append("%s: %s" % (record.get("workload", "?"),
                             record.get("error", "?")))
    lines.append("  %s" % record.get("message", ""))
    machine = record.get("machine")
    if machine:
        where = "  on %s" % machine
        if record.get("pc") is not None:
            where += " at pc=%s" % format_address(record["pc"])
        if record.get("icount") is not None:
            where += " after %d instructions" % record["icount"]
        lines.append(where)
    function = record.get("function")
    if function and function != "?":
        lines.append("  in %s (source line %d)" % (function,
                                                   record.get("line") or 0))
    edges = record.get("edges")
    if edges:
        lines.append("  last %d control-flow edges (oldest first):"
                     % len(edges))
        for edge in edges:
            lines.append(
                "    %s -> %s  [%s -> %s]"
                % (
                    format_address(edge["from"]),
                    format_address(edge["to"]),
                    edge.get("from_loc", "?"),
                    edge.get("to_loc", "?"),
                )
            )
    return lines


def render_triage(manifest):
    """Human-readable post-mortem for a run manifest's failures."""
    failures = manifest.get("failures") or []
    completed = manifest.get("programs") or []
    lines = []
    lines.append(
        "triage: %d workload(s) completed, %d failure(s)"
        % (len(completed), len(failures))
    )
    if not failures:
        lines.append("no recorded failures -- nothing to triage")
        return "\n".join(lines)
    for record in failures:
        lines.append("")
        lines.extend(_render_failure(record))
    return "\n".join(lines)
