"""Greedy delta-debugging of generated statement trees.

When the differential fuzzer finds a program the two machines (or the
Python model) disagree on, the raw witness is usually dozens of nested
statements.  ``minimize`` shrinks the statement tree while a caller-
supplied predicate keeps reporting "still fails": statements are
dropped, ``if`` statements are replaced by one of their arms, loops are
unrolled to a single iteration or replaced by their body, and leaf
expressions collapse to ``0``.  The result is the small reproducer the
fuzz job writes as an artifact.

The tree forms are those produced by :mod:`repro.fault.progen`.
"""


def _variants(stmts):
    """Yield candidate trees, each one local simplification away."""
    for i, stmt in enumerate(stmts):
        before, after = stmts[:i], stmts[i + 1:]
        if len(stmts) > 1:
            yield before + after
        if stmt[0] == "if":
            yield before + list(stmt[2]) + after
            if stmt[3] is not None:
                yield before + list(stmt[3]) + after
                yield before + [("if", stmt[1], stmt[2], None)] + after
            for sub in _variants(stmt[2]):
                yield before + [("if", stmt[1], sub, stmt[3])] + after
            if stmt[3] is not None:
                for sub in _variants(stmt[3]):
                    yield before + [("if", stmt[1], stmt[2], sub)] + after
        elif stmt[0] == "loop":
            yield before + list(stmt[2]) + after
            if stmt[1] > 1:
                yield before + [("loop", 1, stmt[2])] + after
            for sub in _variants(stmt[2]):
                yield before + [("loop", stmt[1], sub)] + after
        elif stmt[0] in ("assign", "augment") and stmt[2] != "0":
            yield before + [(stmt[0], stmt[1], "0")] + after


def minimize(stmts, failing, max_checks=400):
    """Shrink ``stmts`` while ``failing(candidate)`` stays true.

    ``failing`` must be total: it decides for *any* candidate tree
    whether the failure of interest still reproduces.  ``max_checks``
    bounds predicate evaluations so minimisation of an expensive
    failure terminates promptly; the tree returned is always one for
    which ``failing`` returned True (or the input tree itself).
    """
    current = list(stmts)
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _variants(current):
            checks += 1
            if failing(candidate):
                current = list(candidate)
                improved = True
                break
            if checks >= max_checks:
                break
    return current
