"""Command-line interface.

Usage (``python -m repro [-v|-q] <command> ...``):

* ``run FILE [--stdin FILE] [--machine both|baseline|branchreg] [--json]``
  -- compile a SmallC file, emulate it, print its output and measurements;
* ``asm FILE [--machine baseline|branchreg] [--function NAME]`` -- print
  the generated code in the paper's RTL notation;
* ``steptrace FILE [--machine baseline|branchreg] [--function NAME]
  [--max-entries N]`` -- annotated per-instruction execution trace;
* ``trace [--subset a,b] [--jobs N] [--out FILE] [--from-events FILE]``
  -- run the suite (or convert a saved event stream) into a
  schema-validated Chrome-trace JSON timeline viewable in Perfetto or
  ``chrome://tracing``, with spans stitched across worker processes;
* ``flame [--subset a,b] [--machine M] [--out FILE]`` -- profile the
  suite and emit collapsed-stack flamegraph input (``flamegraph.pl`` /
  speedscope format) reconstructed from the profiler's call edges;
* ``table1 [--subset a,b,c] [--json]`` -- regenerate Table I;
* ``cycles [--stages 3,4,5] [--json]`` -- regenerate the Section 7 cycle
  estimates;
* ``figures`` -- print the Figure 2-9 reproductions;
* ``cache [--subset a,b] [--json]`` -- run the Section 8/9
  instruction-cache study;
* ``ablation`` -- run the Section 9 sweeps;
* ``workloads`` -- list the Appendix I suite;
* ``report [--subset a,b] [--out FILE] [--events FILE] [--replay FILE]``
  -- run the suite under full instrumentation and emit a schema-validated
  run manifest (see ``docs/OBSERVABILITY.md``) plus a profile table;
* ``profile WORKLOAD [--machine baseline|branchreg] [--top N] [--json]
  [--out FILE]`` -- dynamic execution profile with an annotated
  per-source-line hot listing and a schema-validated JSON document;
* ``diff MANIFEST_A [MANIFEST_B] [--paper] [--threshold F]`` -- compare
  two run manifests (or one against the pinned Table I reproduction with
  ``--paper``); exits non-zero when any gated metric drifts beyond the
  threshold, which is how CI uses it as a drift gate;
* ``oracle [--subset a,b] [--json]`` -- run the differential machine
  oracle over the workload suite (stdout, exit status, and data-segment
  equivalence between the two machines); exits non-zero on divergence;
* ``golden [--check|--update] [--subset a,b] [--dir DIR]`` -- verify
  fresh reference-engine digests (and reference/fast/trace engine
  equivalence) against the recorded ``tests/golden/`` corpus, or
  re-record it; exits non-zero on any mismatch (see
  ``docs/PERFORMANCE.md``);
* ``fuzz [--count N] [--seed N] [--artifacts DIR] [--json]`` -- seeded
  differential fuzzing with automatic minimisation of failing programs
  to reproducer ``.c`` files; exits non-zero when any case fails;
* ``triage MANIFEST`` -- render the post-mortem view of a manifest's
  ``failures`` section (error types, pc/icount, source attribution, and
  the last control-flow edges); see ``docs/ROBUSTNESS.md``;
* ``chaos [--seed N] [--campaigns N] [--jobs N]`` -- seeded
  harness-level chaos campaigns (worker SIGKILLs, cache corruption,
  delays/hangs) against the supervised runner, asserting every campaign
  converges byte-identical to the serial reference; exits non-zero on
  divergence.

``table1`` and ``report`` additionally accept ``--supervise``
(worker-crash recovery, seeded retry/backoff, quarantine),
``--max-attempts N``, ``--checkpoint PATH``, and ``--resume`` (skip
workloads the checkpoint journal already records); ``report`` also takes
``--limit-override NAME=N`` per-workload instruction limits.  See
``docs/ROBUSTNESS.md``.

``-v``/``-vv`` raise and ``-q`` lowers the diagnostic log level on the
shared ``repro`` logger (stderr); report/table output stays on stdout.

Suite-running commands (``run``, ``table1``, ``cycles``, ``report``,
``trace``, ``oracle``, ``fuzz``) accept ``--jobs N`` to fan the emulations out
across worker processes backed by the persistent artifact cache; the
``REPRO_JOBS`` environment variable sets the default and results are
identical at any job count (see ``docs/PERFORMANCE.md``).

Emulating commands (``run``, ``table1``, ``cycles``, ``report``) accept
``--engine fast|reference|trace`` to pick the run loop (default
``$REPRO_ENGINE``, else the predecoded fast core); the engines are
bit-identical by construction and the ``golden`` command proves it for
all three.
"""

import argparse
import json
import sys

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.ease.environment import run_on_machine, run_pair
from repro.lang.frontend import compile_to_ir
from repro.obs.log import configure as configure_logging
from repro.obs.log import log
from repro.rtl.printer import listing


def _read(path):
    with open(path, "r") as handle:
        return handle.read()


def _read_bytes(path):
    if path is None:
        return b""
    with open(path, "rb") as handle:
        return handle.read()


def _print_json(payload):
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _add_jobs_arg(parser):
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the emulations (default: $REPRO_JOBS, "
        "else 1; results are identical at any job count)",
    )


def _add_engine_arg(parser):
    parser.add_argument(
        "--engine", choices=("fast", "reference", "trace"), default=None,
        help="run loop: 'fast' (predecoded closures, default), "
        "'reference' (the plain interpreter), or 'trace' (hot traces "
        "compiled to specialized functions); default $REPRO_ENGINE, "
        "else fast; results are bit-identical in every case",
    )


def _add_supervise_args(parser):
    from repro.harness.checkpoint import DEFAULT_CHECKPOINT

    parser.add_argument(
        "--supervise", action="store_true",
        help="run the suite under the supervision layer: worker-crash "
        "recovery, seeded retry/backoff, quarantine of repeated failers, "
        "and the parent-side hang watchdog (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="supervised per-task attempt budget before quarantine "
        "(default 3)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed workloads to PATH (JSON lines, schema "
        "repro.checkpoint/1) so --resume skips them after a crash or "
        "Ctrl-C",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip workloads already recorded in the checkpoint journal "
        "(default journal: %s)" % DEFAULT_CHECKPOINT,
    )


def _resolve_checkpoint(args):
    """The checkpoint path implied by --checkpoint/--resume (None = no
    journal): --resume alone uses the default journal path."""
    from repro.harness.checkpoint import DEFAULT_CHECKPOINT

    if args.checkpoint:
        return args.checkpoint
    return DEFAULT_CHECKPOINT if args.resume else None


def _parse_limit_overrides(values):
    """{name: limit} from repeated NAME=LIMIT arguments (None if empty)."""
    overrides = {}
    for item in values or ():
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ValueError(
                "--limit-override wants NAME=LIMIT, got %r" % item
            )
        try:
            overrides[name] = int(value)
        except ValueError:
            raise ValueError(
                "--limit-override %s: %r is not an integer" % (name, value)
            ) from None
    return overrides or None


def cmd_run(args):
    from repro.obs.manifest import stats_to_dict

    source = _read(args.file)
    stdin = _read_bytes(args.stdin)
    if args.machine == "both":
        if args.jobs is not None and args.jobs > 1:
            from repro.harness.parallel import run_pair_parallel

            pair = run_pair_parallel(
                source, stdin=stdin, name=args.file, jobs=args.jobs,
                engine=args.engine,
            )
        else:
            pair = run_pair(
                source, stdin=stdin, name=args.file, engine=args.engine
            )
        if args.json:
            _print_json(
                {
                    "program": args.file,
                    "output": pair.output.decode("latin-1"),
                    "baseline": stats_to_dict(pair.baseline),
                    "branchreg": stats_to_dict(pair.branchreg),
                    "derived": {
                        "instr_change": -pair.instruction_reduction(),
                        "refs_change": pair.data_ref_increase(),
                    },
                }
            )
            return 0
        sys.stdout.write(pair.output.decode("latin-1"))
        print("--- measurements " + "-" * 40)
        print(
            "%-16s %12s %12s" % ("", "baseline", "branch-reg")
        )
        for label, attr in [
            ("instructions", "instructions"),
            ("data refs", "data_refs"),
            ("transfers", "transfers"),
            ("noops", "noops"),
        ]:
            print(
                "%-16s %12d %12d"
                % (label, getattr(pair.baseline, attr), getattr(pair.branchreg, attr))
            )
        print(
            "%-16s %24.1f%%"
            % ("instr change", -100.0 * pair.instruction_reduction())
        )
        return 0
    stats = run_on_machine(
        source, args.machine, stdin=stdin, name=args.file, engine=args.engine
    )
    if args.json:
        payload = stats_to_dict(stats)
        payload["output"] = stats.output.decode("latin-1")
        _print_json(payload)
        return stats.exit_code
    sys.stdout.write(stats.output.decode("latin-1"))
    print("--- %s: %d instructions, %d data refs, %d transfers"
          % (args.machine, stats.instructions, stats.data_refs, stats.transfers))
    return stats.exit_code


def cmd_asm(args):
    source = _read(args.file)
    program = compile_to_ir(source)
    if args.machine == "baseline":
        mprog = generate_baseline(program)
    else:
        mprog = generate_branchreg(program)
    for fn in mprog.functions:
        if args.function and fn.name != args.function:
            continue
        print(listing(fn.instrs))
        print()
    return 0


def cmd_steptrace(args):
    from repro.codegen.baseline_gen import generate_baseline as gen_base
    from repro.codegen.branchreg_gen import generate_branchreg as gen_br
    from repro.emu.loader import Image
    from repro.emu.trace import trace_run

    source = _read(args.file)
    program = compile_to_ir(source)
    if args.machine == "baseline":
        image = Image(gen_base(program))
    else:
        image = Image(gen_br(program))
    trace, stats = trace_run(
        image,
        args.machine,
        stdin=_read_bytes(args.stdin),
        max_entries=args.max_entries,
        function=args.function,
    )
    print(trace)
    print(
        "--- %d instructions executed, output: %r"
        % (stats.instructions, stats.output.decode("latin-1"))
    )
    return 0


def cmd_trace(args):
    from repro.obs import trace as obstrace

    if args.sample_every <= 0:
        print("error: --sample-every must be positive", file=sys.stderr)
        return 2
    if args.from_events:
        try:
            event_list = obstrace.load_events(args.from_events)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                "error: cannot load %s: %s" % (args.from_events, exc),
                file=sys.stderr,
            )
            return 2
        doc = obstrace.export_chrome_trace(
            event_list, label=args.label or args.from_events
        )
    else:
        subset = tuple(args.subset.split(",")) if args.subset else None
        try:
            doc = obstrace.run_trace(
                subset=subset,
                jobs=args.jobs,
                limit=args.limit,
                sample_every=args.sample_every,
                engine=args.engine,
                label=args.label,
            )
        except ValueError as exc:  # e.g. unknown workload names
            print("error: %s" % exc, file=sys.stderr)
            return 2
    path = obstrace.write_trace(doc, out=args.out)
    print(
        "trace: %d event(s) -> %s (open in Perfetto / chrome://tracing)"
        % (len(doc["traceEvents"]), path)
    )
    return 0


def cmd_flame(args):
    from repro.obs.flame import render_flame_suite, run_flame, write_flame

    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        results = run_flame(
            subset=subset, machine=args.machine, limit=args.limit
        )
    except ValueError as exc:  # unknown workload names
        print("error: %s" % exc, file=sys.stderr)
        return 2
    text = render_flame_suite(results)
    path = write_flame(text, out=args.out)
    print(
        "flame: %d workload(s), %d stack(s) -> %s"
        % (len(results), len(text.splitlines()) if text else 0, path)
    )
    return 0


def cmd_table1(args):
    from repro.errors import SuiteInterrupted
    from repro.harness.table1 import run_table1
    from repro.obs.manifest import stats_to_dict

    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        result = run_table1(
            subset=subset, jobs=args.jobs, engine=args.engine,
            supervise=True if args.supervise else None,
            max_attempts=args.max_attempts,
            checkpoint=_resolve_checkpoint(args),
            resume=args.resume,
        )
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except SuiteInterrupted as exc:
        print(
            "interrupted: %d workload(s) unfinished (%s); the checkpoint "
            "journal has the completed prefix -- re-run with --resume"
            % (len(exc.remaining), ", ".join(exc.remaining)),
            file=sys.stderr,
        )
        return 130
    if args.json:
        _print_json(
            {
                "programs": [
                    {
                        "name": pair.name,
                        "baseline": stats_to_dict(pair.baseline),
                        "branchreg": stats_to_dict(pair.branchreg),
                        "derived": {
                            "instr_change": -pair.instruction_reduction(),
                            "refs_change": pair.data_ref_increase(),
                        },
                    }
                    for pair in result["pairs"]
                ],
                "totals": {
                    "baseline": stats_to_dict(result["baseline"]),
                    "branchreg": stats_to_dict(result["branchreg"]),
                    "instr_change": result["instr_change"],
                    "refs_change": result["refs_change"],
                },
                "claims": {
                    "transfer_fraction": result["transfer_fraction"],
                    "saved_to_added_ratio": result["saved_to_added_ratio"],
                    "transfers_per_calc": result["transfers_per_calc"],
                    "noop_reduction": result["noop_reduction"],
                    "bta_carriers": result["bta_carriers"],
                },
            }
        )
        return 0
    print(result["text"])
    return 0


def cmd_cycles(args):
    from repro.harness.cycles7 import run_cycle_estimate

    stages = tuple(int(s) for s in args.stages.split(","))
    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        result = run_cycle_estimate(
            stages_list=stages, subset=subset, jobs=args.jobs,
            engine=args.engine,
        )
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        rows = []
        for est in result["estimates"]:
            row = {
                "stages": est["stages"],
                "saving_vs_baseline": est["saving_vs_baseline"],
                "fastcmp_saving_vs_baseline": est["fastcmp_saving_vs_baseline"],
                "delayed_fraction": est["delayed_fraction"],
            }
            for machine in ("no_delay", "baseline", "branchreg", "branchreg_fastcmp"):
                cyc = est[machine]
                row[machine] = {
                    "cycles": cyc.cycles,
                    "instructions": cyc.instructions,
                    "transfer_delays": cyc.transfer_delays,
                }
            rows.append(row)
        _print_json({"estimates": rows})
        return 0
    print(result["text"])
    return 0


def cmd_figures(_args):
    from repro.harness import figures

    figures.main()
    return 0


def cmd_cache(args):
    from repro.harness.cache9 import run_cache_study

    kwargs = {}
    if args.subset:
        kwargs["subset"] = tuple(args.subset.split(","))
    try:
        result = run_cache_study(**kwargs)
    except (ValueError, KeyError) as exc:
        # cache9 resolves workload names itself, so typos surface as KeyError
        message = exc.args[0] if exc.args else str(exc)
        print("error: %s" % message, file=sys.stderr)
        return 2
    if args.json:
        rows = [
            {
                "config": run.config,
                "machine": run.machine,
                "instructions": run.instructions,
                "stalls": run.stalls,
                "cycles": run.cycles,
                "miss_rate": run.stats.miss_rate,
                "covered": run.stats.fully_covered + run.stats.partial_covered,
                "pollution": run.stats.unused_prefetches,
            }
            for run in result["runs"]
        ]
        _print_json({"runs": rows})
        return 0
    print(result["text"])
    return 0


def cmd_ablation(_args):
    from repro.harness.ablation import main as ablation_main

    ablation_main()
    return 0


def cmd_workloads(_args):
    from repro.workloads import all_workloads

    print("%-11s %-10s %s" % ("name", "class", "description"))
    for w in all_workloads():
        print("%-11s %-10s %s" % (w.name, w.cls, w.description))
    return 0


def cmd_report(args):
    from repro.obs.manifest import ManifestError
    from repro.obs.report import replay_report, run_report, save_report

    if args.replay:
        try:
            result = replay_report(args.replay)
        except (OSError, json.JSONDecodeError, ManifestError) as exc:
            print("error: cannot replay %s: %s" % (args.replay, exc), file=sys.stderr)
            return 1
        print(result["text"])
        return 0
    if args.sample_every <= 0:
        print("error: --sample-every must be positive", file=sys.stderr)
        return 2
    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        limit_overrides = _parse_limit_overrides(args.limit_override)
        result = run_report(
            subset=subset,
            limit=args.limit,
            sample_every=args.sample_every,
            events_path=args.events,
            fault_tolerant=args.fault_tolerant,
            deadline_s=args.deadline,
            jobs=args.jobs,
            cache_dir=args.cache_dir if args.cache_dir else False,
            engine=args.engine,
            limit_overrides=limit_overrides,
            supervise=True if args.supervise else None,
            max_attempts=args.max_attempts,
            checkpoint=_resolve_checkpoint(args),
            resume=args.resume,
        )
    except ValueError as exc:  # e.g. unknown workload names
        print("error: %s" % exc, file=sys.stderr)
        return 2
    path = save_report(result, out=args.out)
    print(result["text"])
    log.info("wrote run manifest to %s", path)
    print("\nmanifest: %s" % path)
    if result.get("interrupted"):
        # The partial manifest above is valid and --resume picks up the
        # journal; exit with the conventional SIGINT status.
        return 130
    if result["manifest"].get("failures"):
        return 1
    return 0


def cmd_oracle(args):
    from repro.errors import ReproError
    from repro.fault.oracle import check_workloads

    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        results = check_workloads(names=subset, limit=args.limit, jobs=args.jobs)
    except ValueError as exc:  # unknown workload names
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except ReproError as exc:
        print("DIVERGENCE: %s" % exc, file=sys.stderr)
        detail = getattr(exc, "detail", None)
        if detail:
            for key, value in sorted(detail.items()):
                print("  %s: %r" % (key, value), file=sys.stderr)
        return 1
    if args.json:
        _print_json(
            {
                "workloads": [
                    {
                        "name": r.name,
                        "baseline_instructions": r.baseline.instructions,
                        "branchreg_instructions": r.branchreg.instructions,
                        "data_bytes": r.data_bytes,
                    }
                    for r in results
                ],
                "equivalent": True,
            }
        )
        return 0
    for r in results:
        print(
            "%-11s equivalent (%d output bytes, %d data bytes compared)"
            % (r.name, len(r.output), r.data_bytes)
        )
    print("oracle: %d workload(s), machines equivalent" % len(results))
    return 0


def cmd_golden(args):
    from repro.errors import ReproError
    from repro.harness.conformance import check_goldens, crosscheck_workloads

    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        report = check_goldens(
            golden_dir=args.dir, names=subset, update=args.update,
        )
    except ValueError as exc:  # unknown workload names
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.update:
        for name in report["updated"]:
            print("recorded %s" % name)
        print("golden: %d digest(s) recorded" % len(report["updated"]))
        return 0
    crosscheck = None
    if args.crosscheck and not report["failures"]:
        try:
            crosscheck = crosscheck_workloads(names=subset)
        except ReproError as exc:
            print("ENGINE DIVERGENCE: %s" % exc, file=sys.stderr)
            detail = getattr(exc, "detail", None)
            if detail:
                for key, value in sorted(detail.items()):
                    print("  %s: %s" % (key, value), file=sys.stderr)
            return 1
    if args.json:
        payload = dict(report)
        if crosscheck is not None:
            payload["crosscheck"] = crosscheck
        _print_json(payload)
        return 1 if report["failures"] else 0
    for name in report["checked"]:
        print("%-11s matches its golden digest" % name)
    for failure in report["failures"]:
        if failure["reason"] == "missing":
            print(
                "%-11s MISSING (record with: repro golden --update "
                "--subset %s)" % (failure["workload"], failure["workload"]),
                file=sys.stderr,
            )
        else:
            what = ("MISMATCH" if failure["reason"] == "mismatch"
                    else failure["reason"].upper())
            print(
                "%-11s %s: %s"
                % (failure["workload"], what,
                   ", ".join(failure["diffs"][:8])),
                file=sys.stderr,
            )
    if crosscheck is not None:
        fast = sum(1 for r in crosscheck if r.get("engine") == "fast")
        traced = sum(
            1 for r in crosscheck
            if r.get("engines", {}).get("trace", {}).get("engine") == "trace"
        )
        print(
            "crosscheck: %d run(s) bit-identical across engines "
            "(%d on the fast core, %d on the trace core)"
            % (len(crosscheck), fast, traced)
        )
    print(
        "golden: %d checked across %d engine(s), %d failure(s)"
        % (len(report["checked"]), len(report.get("engines", ()) or ()),
           len(report["failures"]))
    )
    return 1 if report["failures"] else 0


def cmd_fuzz(args):
    from repro.fault.oracle import fuzz_differential

    if args.count <= 0:
        print("error: --count must be positive", file=sys.stderr)
        return 2
    report = fuzz_differential(
        count=args.count,
        seed=args.seed,
        depth=args.depth,
        artifacts_dir=args.artifacts,
        limit=args.limit,
        jobs=args.jobs,
    )
    if args.json:
        _print_json(report)
    else:
        print(
            "fuzz: %d/%d case(s) checked, %d failure(s) (seed %d)"
            % (report["checked"], report["count"], len(report["failures"]),
               report["seed"])
        )
        for record in report["failures"]:
            print("  case %d: %s: %s" % (record["index"], record["error"],
                                         record["message"]))
            if "artifact" in record:
                print("    reproducer: %s" % record["artifact"])
    return 1 if report["failures"] else 0


def cmd_chaos(args):
    from repro.fault.harness_chaos import render_chaos, run_chaos

    subset = tuple(args.subset.split(",")) if args.subset else None
    try:
        summary = run_chaos(
            seed=args.seed,
            campaigns=args.campaigns,
            jobs=args.jobs if args.jobs else 2,
            subset=subset,
            limit=args.limit,
            kills=args.kills,
            raises=args.raises,
            delays=args.delays,
            corrupt=args.corrupt,
            hangs=args.hangs,
            keep_going=args.keep_going,
        )
    except ValueError as exc:  # unknown workload names
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        _print_json(summary)
    else:
        print(render_chaos(summary))
    return 0 if summary["divergent"] == 0 else 1


def cmd_triage(args):
    from repro.fault.triage import render_triage

    manifest = _load_manifest_or_none(args.manifest)
    if manifest is None:
        return 2
    print(render_triage(manifest))
    return 1 if manifest.get("failures") else 0


def cmd_profile(args):
    from repro.obs.profile import render_listing, run_profile, write_profile

    if args.top <= 0:
        print("error: --top must be positive", file=sys.stderr)
        return 2
    try:
        run = run_profile(args.workload, args.machine, limit=args.limit)
    except ValueError as exc:  # unknown workload name
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        _print_json(run.profile)
    else:
        print(render_listing(run, top=args.top))
    if args.out:
        write_profile(run.profile, args.out)
        log.info("wrote profile to %s", args.out)
        if not args.json:
            print("\nprofile: %s" % args.out)
    return 0


def _load_manifest_or_none(path):
    from repro.obs.manifest import ManifestError, load_manifest

    try:
        return load_manifest(path)
    except (OSError, json.JSONDecodeError, ManifestError) as exc:
        print("error: cannot load %s: %s" % (path, exc), file=sys.stderr)
        return None


def cmd_diff(args):
    from repro.obs.diff import diff_against_paper, diff_manifests, render_diff

    if args.threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2
    manifest_a = _load_manifest_or_none(args.manifest_a)
    if manifest_a is None:
        return 2
    if args.paper:
        if args.manifest_b:
            print(
                "error: --paper compares a single manifest against the "
                "pinned Table I", file=sys.stderr,
            )
            return 2
        result = diff_against_paper(manifest_a, threshold=args.threshold)
    else:
        if not args.manifest_b:
            print(
                "error: need two manifests, or --paper with one",
                file=sys.stderr,
            )
            return 2
        manifest_b = _load_manifest_or_none(args.manifest_b)
        if manifest_b is None:
            return 2
        result = diff_manifests(
            manifest_a,
            manifest_b,
            threshold=args.threshold,
            label_a=args.manifest_a,
            label_b=args.manifest_b,
        )
    print(render_diff(result, max_rows=args.max_rows))
    return result.exit_code


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Reducing the Cost of Branches by "
        "Using Registers' (ISCA 1990)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise diagnostic verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower diagnostic verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and emulate a SmallC file")
    p_run.add_argument("file")
    p_run.add_argument("--stdin", default=None, help="file fed to getchar()")
    p_run.add_argument(
        "--machine", choices=("both", "baseline", "branchreg"), default="both"
    )
    p_run.add_argument(
        "--json", action="store_true", help="emit stats as JSON instead of tables"
    )
    _add_jobs_arg(p_run)
    _add_engine_arg(p_run)
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="print generated RTLs")
    p_asm.add_argument("file")
    p_asm.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="branchreg"
    )
    p_asm.add_argument("--function", default=None)
    p_asm.set_defaults(func=cmd_asm)

    p_st = sub.add_parser("steptrace", help="annotated execution trace")
    p_st.add_argument("file")
    p_st.add_argument("--stdin", default=None)
    p_st.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="branchreg"
    )
    p_st.add_argument("--function", default=None)
    p_st.add_argument("--max-entries", type=int, default=60)
    p_st.set_defaults(func=cmd_steptrace)

    p_tr = sub.add_parser(
        "trace",
        help="run the suite and export a Chrome-trace JSON timeline",
    )
    p_tr.add_argument("--subset", default=None, help="comma-separated names")
    p_tr.add_argument("--limit", type=int, default=None)
    p_tr.add_argument(
        "--sample-every", type=int, default=65536,
        help="emulator telemetry sampling interval in instructions",
    )
    p_tr.add_argument(
        "--out", default=None,
        help="trace path (default trace.json)",
    )
    p_tr.add_argument(
        "--from-events", default=None, metavar="FILE",
        help="convert a saved JSON-lines event stream (e.g. from "
        "'repro report --events') instead of running the suite",
    )
    p_tr.add_argument(
        "--label", default=None,
        help="trace label recorded in the document's otherData section",
    )
    _add_jobs_arg(p_tr)
    _add_engine_arg(p_tr)
    p_tr.set_defaults(func=cmd_trace)

    p_fl = sub.add_parser(
        "flame",
        help="export collapsed-stack flamegraph input from the profiler",
    )
    p_fl.add_argument("--subset", default=None, help="comma-separated names")
    p_fl.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="branchreg"
    )
    p_fl.add_argument("--limit", type=int, default=None)
    p_fl.add_argument(
        "--out", default=None, help="collapsed-stack path (default flame.txt)"
    )
    p_fl.set_defaults(func=cmd_flame)

    p_t1 = sub.add_parser("table1", help="regenerate Table I")
    p_t1.add_argument("--subset", default=None, help="comma-separated names")
    p_t1.add_argument(
        "--json", action="store_true", help="emit the table data as JSON"
    )
    _add_jobs_arg(p_t1)
    _add_engine_arg(p_t1)
    _add_supervise_args(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_cy = sub.add_parser("cycles", help="Section 7 cycle estimates")
    p_cy.add_argument("--stages", default="3,4,5")
    p_cy.add_argument("--subset", default=None)
    p_cy.add_argument(
        "--json", action="store_true", help="emit the estimates as JSON"
    )
    _add_jobs_arg(p_cy)
    _add_engine_arg(p_cy)
    p_cy.set_defaults(func=cmd_cycles)

    sub.add_parser("figures", help="Figures 2-9").set_defaults(func=cmd_figures)
    p_ca = sub.add_parser("cache", help="Sections 8-9 cache study")
    p_ca.add_argument("--subset", default=None, help="comma-separated names")
    p_ca.add_argument(
        "--json", action="store_true", help="emit the cache rows as JSON"
    )
    p_ca.set_defaults(func=cmd_cache)
    sub.add_parser("ablation", help="Section 9 sweeps").set_defaults(
        func=cmd_ablation
    )
    sub.add_parser("workloads", help="list the Appendix I suite").set_defaults(
        func=cmd_workloads
    )

    p_rep = sub.add_parser(
        "report",
        help="instrumented suite run emitting a machine-readable manifest",
    )
    p_rep.add_argument("--subset", default=None, help="comma-separated names")
    p_rep.add_argument(
        "--out", default=None,
        help="manifest path (default BENCH_<timestamp>.json)",
    )
    p_rep.add_argument(
        "--events", default=None,
        help="also write the raw JSON-lines event stream to this path",
    )
    p_rep.add_argument("--limit", type=int, default=None)
    p_rep.add_argument(
        "--sample-every", type=int, default=65536,
        help="emulator telemetry sampling interval in instructions",
    )
    p_rep.add_argument(
        "--replay", default=None,
        help="re-render a saved manifest instead of running the suite",
    )
    p_rep.add_argument(
        "--fault-tolerant", action="store_true",
        help="keep running past per-workload typed errors; record them in "
        "the manifest's failures section (exit 1 when any occurred)",
    )
    p_rep.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-emulation wall-clock watchdog (WatchdogTimeout on breach)",
    )
    p_rep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="serve compiles from this artifact cache (off by default so "
        "the phase profile reflects real compiles)",
    )
    p_rep.add_argument(
        "--limit-override", action="append", default=None, metavar="NAME=N",
        help="per-workload instruction-limit override (repeatable)",
    )
    _add_jobs_arg(p_rep)
    _add_engine_arg(p_rep)
    _add_supervise_args(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_or = sub.add_parser(
        "oracle",
        help="differential machine oracle over the workload suite",
    )
    p_or.add_argument("--subset", default=None, help="comma-separated names")
    p_or.add_argument("--limit", type=int, default=20_000_000)
    p_or.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )
    _add_jobs_arg(p_or)
    p_or.set_defaults(func=cmd_oracle)

    p_go = sub.add_parser(
        "golden",
        help="check or re-record the golden-trace conformance corpus",
    )
    p_go.add_argument("--subset", default=None, help="comma-separated names")
    p_go.add_argument(
        "--dir", default=None, metavar="DIR",
        help="golden corpus directory (default tests/golden)",
    )
    group = p_go.add_mutually_exclusive_group()
    group.add_argument(
        "--check", action="store_true", default=True,
        help="verify fresh reference digests against the corpus (default)",
    )
    group.add_argument(
        "--update", action="store_true",
        help="re-record the corpus from fresh reference runs",
    )
    p_go.add_argument(
        "--no-crosscheck", dest="crosscheck", action="store_false",
        default=True,
        help="skip the three-engine (reference/fast/trace) equivalence "
        "pass",
    )
    p_go.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_go.set_defaults(func=cmd_golden)

    p_fz = sub.add_parser(
        "fuzz",
        help="seeded differential fuzzing with failure minimisation",
    )
    p_fz.add_argument("--count", type=int, default=200)
    p_fz.add_argument("--seed", type=int, default=0)
    p_fz.add_argument(
        "--depth", type=int, default=2, help="statement nesting depth"
    )
    p_fz.add_argument("--limit", type=int, default=500_000)
    p_fz.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write minimised reproducer .c files here on failure",
    )
    p_fz.add_argument(
        "--json", action="store_true", help="emit the fuzz report as JSON"
    )
    _add_jobs_arg(p_fz)
    p_fz.set_defaults(func=cmd_fuzz)

    p_ch = sub.add_parser(
        "chaos",
        help="seeded harness-level chaos campaigns against the "
        "supervised runner (worker kills, cache corruption, delays); "
        "exits non-zero if any campaign diverges from the serial "
        "reference",
    )
    p_ch.add_argument("--seed", type=int, default=0)
    p_ch.add_argument(
        "--campaigns", type=int, default=5, metavar="N",
        help="number of perturbed suite runs (default 5)",
    )
    p_ch.add_argument("--subset", default=None, help="comma-separated names")
    p_ch.add_argument(
        "--limit", type=int, default=200_000,
        help="per-workload instruction limit (small by default: chaos "
        "exercises the harness, not the emulators)",
    )
    p_ch.add_argument(
        "--kills", type=int, default=3, metavar="N",
        help="worker SIGKILLs injected per campaign (default 3)",
    )
    p_ch.add_argument(
        "--raises", type=int, default=2, metavar="N",
        help="transient task exceptions injected per campaign (default 2)",
    )
    p_ch.add_argument(
        "--delays", type=int, default=2, metavar="N",
        help="random task delays injected per campaign (default 2)",
    )
    p_ch.add_argument(
        "--corrupt", type=int, default=2, metavar="N",
        help="artifact-cache entries corrupted per campaign (default 2)",
    )
    p_ch.add_argument(
        "--hangs", type=int, default=0, metavar="N",
        help="task hangs injected per campaign, recovered by the "
        "parent-side watchdog (default 0)",
    )
    p_ch.add_argument(
        "--keep-going", action="store_true",
        help="run every campaign even after a divergence (default: stop "
        "at the first, whose seed reproduces it)",
    )
    p_ch.add_argument("--json", action="store_true")
    _add_jobs_arg(p_ch)
    p_ch.set_defaults(func=cmd_chaos)

    p_tg = sub.add_parser(
        "triage",
        help="post-mortem view of a manifest's failures section",
    )
    p_tg.add_argument("manifest", help="BENCH_*.json manifest")
    p_tg.set_defaults(func=cmd_triage)

    p_prof = sub.add_parser(
        "profile",
        help="dynamic execution profile with source attribution",
    )
    p_prof.add_argument("workload", help="Appendix I workload name")
    p_prof.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="baseline"
    )
    p_prof.add_argument(
        "--top", type=int, default=10,
        help="rows per hot-listing section (default 10)",
    )
    p_prof.add_argument("--limit", type=int, default=None)
    p_prof.add_argument(
        "--json", action="store_true",
        help="emit the schema-validated JSON profile instead of the listing",
    )
    p_prof.add_argument(
        "--out", default=None, help="also write the JSON profile to this path"
    )
    p_prof.set_defaults(func=cmd_profile)

    p_diff = sub.add_parser(
        "diff",
        help="compare run manifests and gate on drift",
    )
    p_diff.add_argument("manifest_a", help="BENCH_*.json manifest")
    p_diff.add_argument(
        "manifest_b", nargs="?", default=None,
        help="second manifest (omit with --paper)",
    )
    p_diff.add_argument(
        "--paper", action="store_true",
        help="check MANIFEST_A against the pinned Table I reproduction",
    )
    p_diff.add_argument(
        "--threshold", type=float, default=0.0,
        help="max tolerated relative change per metric (0.01 = 1%%; "
        "default 0: exact)",
    )
    p_diff.add_argument(
        "--max-rows", type=int, default=20,
        help="max changed rows to print (breaches always shown)",
    )
    p_diff.set_defaults(func=cmd_diff)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Suite coordinators reap their workers and checkpoint before
        # this propagates (see repro.harness.supervise); exit with the
        # conventional SIGINT status rather than a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Reader went away (e.g. ``repro report | head``); exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
