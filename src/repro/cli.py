"""Command-line interface.

Usage (``python -m repro <command> ...``):

* ``run FILE [--stdin FILE] [--machine both|baseline|branchreg]`` --
  compile a SmallC file, emulate it, print its output and measurements;
* ``asm FILE [--machine baseline|branchreg] [--function NAME]`` -- print
  the generated code in the paper's RTL notation;
* ``table1 [--subset a,b,c]`` -- regenerate Table I;
* ``cycles [--stages 3,4,5]`` -- regenerate the Section 7 cycle estimates;
* ``figures`` -- print the Figure 2-9 reproductions;
* ``cache`` -- run the Section 8/9 instruction-cache study;
* ``ablation`` -- run the Section 9 sweeps;
* ``workloads`` -- list the Appendix I suite.
"""

import argparse
import sys

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.ease.environment import run_on_machine, run_pair
from repro.lang.frontend import compile_to_ir
from repro.rtl.printer import listing


def _read(path):
    with open(path, "r") as handle:
        return handle.read()


def _read_bytes(path):
    if path is None:
        return b""
    with open(path, "rb") as handle:
        return handle.read()


def cmd_run(args):
    source = _read(args.file)
    stdin = _read_bytes(args.stdin)
    if args.machine == "both":
        pair = run_pair(source, stdin=stdin, name=args.file)
        sys.stdout.write(pair.output.decode("latin-1"))
        print("--- measurements " + "-" * 40)
        print(
            "%-16s %12s %12s" % ("", "baseline", "branch-reg")
        )
        for label, attr in [
            ("instructions", "instructions"),
            ("data refs", "data_refs"),
            ("transfers", "transfers"),
            ("noops", "noops"),
        ]:
            print(
                "%-16s %12d %12d"
                % (label, getattr(pair.baseline, attr), getattr(pair.branchreg, attr))
            )
        print(
            "%-16s %24.1f%%"
            % ("instr change", -100.0 * pair.instruction_reduction())
        )
        return 0
    stats = run_on_machine(source, args.machine, stdin=stdin, name=args.file)
    sys.stdout.write(stats.output.decode("latin-1"))
    print("--- %s: %d instructions, %d data refs, %d transfers"
          % (args.machine, stats.instructions, stats.data_refs, stats.transfers))
    return stats.exit_code


def cmd_asm(args):
    source = _read(args.file)
    program = compile_to_ir(source)
    if args.machine == "baseline":
        mprog = generate_baseline(program)
    else:
        mprog = generate_branchreg(program)
    for fn in mprog.functions:
        if args.function and fn.name != args.function:
            continue
        print(listing(fn.instrs))
        print()
    return 0


def cmd_trace(args):
    from repro.codegen.baseline_gen import generate_baseline as gen_base
    from repro.codegen.branchreg_gen import generate_branchreg as gen_br
    from repro.emu.loader import Image
    from repro.emu.trace import trace_run

    source = _read(args.file)
    program = compile_to_ir(source)
    if args.machine == "baseline":
        image = Image(gen_base(program))
    else:
        image = Image(gen_br(program))
    trace, stats = trace_run(
        image,
        args.machine,
        stdin=_read_bytes(args.stdin),
        max_entries=args.max_entries,
        function=args.function,
    )
    print(trace)
    print(
        "--- %d instructions executed, output: %r"
        % (stats.instructions, stats.output.decode("latin-1"))
    )
    return 0


def cmd_table1(args):
    from repro.harness.table1 import run_table1

    subset = tuple(args.subset.split(",")) if args.subset else None
    print(run_table1(subset=subset)["text"])
    return 0


def cmd_cycles(args):
    from repro.harness.cycles7 import run_cycle_estimate

    stages = tuple(int(s) for s in args.stages.split(","))
    subset = tuple(args.subset.split(",")) if args.subset else None
    print(run_cycle_estimate(stages_list=stages, subset=subset)["text"])
    return 0


def cmd_figures(_args):
    from repro.harness import figures

    figures.main()
    return 0


def cmd_cache(_args):
    from repro.harness.cache9 import run_cache_study

    print(run_cache_study()["text"])
    return 0


def cmd_ablation(_args):
    from repro.harness.ablation import main as ablation_main

    ablation_main()
    return 0


def cmd_workloads(_args):
    from repro.workloads import all_workloads

    print("%-11s %-10s %s" % ("name", "class", "description"))
    for w in all_workloads():
        print("%-11s %-10s %s" % (w.name, w.cls, w.description))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Reducing the Cost of Branches by "
        "Using Registers' (ISCA 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and emulate a SmallC file")
    p_run.add_argument("file")
    p_run.add_argument("--stdin", default=None, help="file fed to getchar()")
    p_run.add_argument(
        "--machine", choices=("both", "baseline", "branchreg"), default="both"
    )
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="print generated RTLs")
    p_asm.add_argument("file")
    p_asm.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="branchreg"
    )
    p_asm.add_argument("--function", default=None)
    p_asm.set_defaults(func=cmd_asm)

    p_tr = sub.add_parser("trace", help="annotated execution trace")
    p_tr.add_argument("file")
    p_tr.add_argument("--stdin", default=None)
    p_tr.add_argument(
        "--machine", choices=("baseline", "branchreg"), default="branchreg"
    )
    p_tr.add_argument("--function", default=None)
    p_tr.add_argument("--max-entries", type=int, default=60)
    p_tr.set_defaults(func=cmd_trace)

    p_t1 = sub.add_parser("table1", help="regenerate Table I")
    p_t1.add_argument("--subset", default=None, help="comma-separated names")
    p_t1.set_defaults(func=cmd_table1)

    p_cy = sub.add_parser("cycles", help="Section 7 cycle estimates")
    p_cy.add_argument("--stages", default="3,4,5")
    p_cy.add_argument("--subset", default=None)
    p_cy.set_defaults(func=cmd_cycles)

    sub.add_parser("figures", help="Figures 2-9").set_defaults(func=cmd_figures)
    sub.add_parser("cache", help="Sections 8-9 cache study").set_defaults(
        func=cmd_cache
    )
    sub.add_parser("ablation", help="Section 9 sweeps").set_defaults(
        func=cmd_ablation
    )
    sub.add_parser("workloads", help="list the Appendix I suite").set_defaults(
        func=cmd_workloads
    )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
