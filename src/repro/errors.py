"""Exception hierarchy shared by every subsystem of the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """Raised by the SmallC lexer on malformed input."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        where = "" if line is None else " at line %d, col %d" % (line, col)
        super().__init__(message + where)


class ParseError(ReproError):
    """Raised by the SmallC parser on a syntax error."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        where = "" if line is None else " at line %d, col %d" % (line, col)
        super().__init__(message + where)


class SemanticError(ReproError):
    """Raised by the SmallC semantic analyser (type errors, bad lvalues...)."""


class CodegenError(ReproError):
    """Raised when lowering IR to a target machine fails."""


class EncodingError(ReproError):
    """Raised when an instruction does not fit its machine format."""


class EmulationError(ReproError):
    """Raised by an emulator on an illegal runtime condition."""


class MemoryFault(EmulationError):
    """Raised on an out-of-range or misaligned memory access."""

    def __init__(self, message, address=None):
        self.address = address
        if address is not None:
            message = "%s (address=0x%x)" % (message, address)
        super().__init__(message)


class RuntimeLimitExceeded(EmulationError):
    """Raised when an emulated program exceeds its instruction budget."""
