"""Exception hierarchy shared by every subsystem of the reproduction.

The robustness contract (see ``docs/ROBUSTNESS.md``) is that every
abnormal condition -- compile-time, load-time, or runtime, including
deliberately injected faults -- surfaces as a typed :class:`ReproError`
subclass, never as a silent wrong answer, a hang, or a raw Python
traceback from deep inside an emulator loop.
"""


def format_address(address):
    """Render a memory address for error messages.

    Corrupted pointers are frequently negative (sign-wrapped arithmetic)
    or enormous; ``0x%x`` alone renders ``-4`` as the confusing
    ``0x-4``, so negatives get an explicit sign instead.
    """
    if address < 0:
        return "-0x%x" % -address
    return "0x%x" % address


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """Raised by the SmallC lexer on malformed input."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        where = "" if line is None else " at line %d, col %d" % (line, col)
        super().__init__(message + where)


class ParseError(ReproError):
    """Raised by the SmallC parser on a syntax error."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        where = "" if line is None else " at line %d, col %d" % (line, col)
        super().__init__(message + where)


class SemanticError(ReproError):
    """Raised by the SmallC semantic analyser (type errors, bad lvalues...)."""


class CodegenError(ReproError):
    """Raised when lowering IR to a target machine fails."""


class EncodingError(ReproError):
    """Raised when an instruction does not fit its machine format."""


class ImageCorruption(ReproError):
    """A loaded image failed integrity checks: an undecodable
    instruction, a truncated text segment, or a relocation resolving
    outside (or misaligned within) the text segment."""


class EmulationError(ReproError):
    """Raised by an emulator on an illegal runtime condition.

    Emulator run loops stamp post-mortem machine state onto any
    instance they propagate (see ``BaseEmulator._stamp``); the class
    attributes below are the defaults for errors raised outside a run
    loop.  ``edges`` is the last-N control-flow edge ring buffer
    snapshot, oldest first, each entry ``{"from", "to", "from_loc",
    "to_loc"}``.
    """

    machine = None
    program = None
    pc = None
    icount = None
    function = None
    line = None
    edges = None


class MemoryFault(EmulationError):
    """Raised on an out-of-range or misaligned memory access."""

    def __init__(self, message, address=None):
        self.address = address
        if address is not None:
            message = "%s (address=%s)" % (message, format_address(address))
        super().__init__(message)


class ControlFlowViolation(EmulationError):
    """Control transferred outside the text segment or to a misaligned
    address (wild jump, truncated image, corrupted branch register)."""

    def __init__(self, message, address=None):
        self.address = address
        if address is not None:
            message = "%s (address=%s)" % (message, format_address(address))
        super().__init__(message)


class IllegalInstruction(EmulationError):
    """The emulator fetched an instruction it cannot execute -- an
    unknown opcode or operands of the wrong shape, as produced by a
    corrupted image."""


class RuntimeLimitExceeded(EmulationError):
    """Raised when an emulated program exceeds its instruction budget."""


class WatchdogTimeout(EmulationError):
    """Raised when an emulated program exceeds its wall-clock budget
    (the watchdog that turns hangs into typed, triagable failures)."""


class MachineDivergence(EmulationError):
    """The two machines disagreed on observable behaviour (stdout, exit
    status, or final data-segment state) for the same program -- the
    differential oracle's failure type.

    ``mismatches`` lists what disagreed (e.g. ``["output",
    "exit_code"]``); ``detail`` carries a short human-readable
    elaboration per mismatch.
    """

    def __init__(self, message, mismatches=None, detail=None):
        self.mismatches = list(mismatches or [])
        self.detail = dict(detail or {})
        super().__init__(message)


class SuiteInterrupted(ReproError):
    """A supervised suite run was interrupted (Ctrl-C / SIGINT) after the
    coordinator reaped its workers and checkpointed completed work.

    ``partial`` is the :class:`~repro.harness.runner.SuiteResult` of
    everything that finished before the interrupt; ``remaining`` lists
    the workload names that did not.  ``repro report`` turns this into a
    valid *partial* manifest which ``--resume`` later picks up.
    """

    def __init__(self, message, partial=None, remaining=None):
        self.partial = partial
        self.remaining = list(remaining or [])
        super().__init__(message)


class EngineDivergence(MachineDivergence):
    """A compiled run loop (``fast`` or ``trace``) disagreed with the
    reference interpreter on *any* observable for the same image on the
    same machine: RunStats, final architectural state, or the data
    segment.  The engines must be bit-identical by construction; this
    firing means the named engine (or its fallback matrix) has a bug --
    see ``docs/PERFORMANCE.md``.  ``engine`` names the run loop that
    diverged from the reference."""

    def __init__(self, message, mismatches=None, detail=None, engine=""):
        self.engine = engine
        super().__init__(message, mismatches=mismatches, detail=detail)
