"""Local constant propagation, folding and algebraic simplification.

Operates block-locally (no cross-block dataflow); enough to clean up the
front end's output the way the paper's vpo-derived compiler would before
measuring either machine.  Both targets share this pass, so it never
perturbs the baseline-vs-branch-register comparison.
"""

from repro.emu.intmath import compare, int_binop
from repro.rtl import instr as I
from repro.rtl.operand import Imm, VReg


def _is_power_of_two(n):
    return n > 0 and (n & (n - 1)) == 0


def fold_block(block):
    """Fold constants within one basic block.  Returns True if changed."""
    known = {}  # VReg -> int constant
    changed = False
    new_instrs = []
    for ins in block.instrs:
        line = ins.line
        ins = _substitute(ins, known)
        folded = _try_fold(ins, known)
        if folded is not ins:
            changed = True
            ins = folded
        if ins is None:
            changed = True
            continue
        if not ins.line:
            ins.line = line
        # Update the known-constants map.
        if ins.op == "li" and isinstance(ins.dst, VReg):
            known[ins.dst] = ins.srcs[0].value
        else:
            for reg in ins.defs():
                known.pop(reg, None)
            if ins.op in ("call", "trap"):
                pass  # only the dst is clobbered; handled above
        new_instrs.append(ins)
    block.instrs = new_instrs
    return changed


def _substitute(ins, known):
    """Replace register sources holding known constants with immediates
    where the IR shape allows an immediate."""
    if ins.op in I.INT_BINOPS and len(ins.srcs) == 2:
        a, b = ins.srcs
        if isinstance(b, VReg) and b in known:
            ins = I.Instr(ins.op, dst=ins.dst, srcs=[a, Imm(known[b])])
        a, b = ins.srcs
        if isinstance(a, VReg) and a in known and ins.op in I.COMMUTATIVE:
            if isinstance(b, VReg):
                ins = I.Instr(ins.op, dst=ins.dst, srcs=[b, Imm(known[a])])
    elif ins.op == "br":
        a, b = ins.srcs
        if isinstance(b, VReg) and b in known:
            ins = I.Instr(
                "br", srcs=[a, Imm(known[b])], cond=ins.cond, target=ins.target
            )
    elif ins.op == "mov":
        src = ins.srcs[0]
        if isinstance(src, VReg) and src in known:
            ins = I.li(ins.dst, known[src])
    return ins


def _try_fold(ins, known):
    """Fold an instruction to a simpler one (or None to delete).  Returns
    the original object when no change applies."""
    if ins.op in I.INT_BINOPS and len(ins.srcs) == 2:
        a, b = ins.srcs
        a_const = known.get(a) if isinstance(a, VReg) else (
            a.value if isinstance(a, Imm) else None
        )
        b_const = b.value if isinstance(b, Imm) else (
            known.get(b) if isinstance(b, VReg) else None
        )
        if a_const is not None and b_const is not None:
            try:
                return I.li(ins.dst, int_binop(ins.op, a_const, b_const))
            except ZeroDivisionError:
                return ins
        if b_const is not None:
            return _algebraic(ins, b_const)
        return ins
    if ins.op == "br":
        a, b = ins.srcs
        a_const = known.get(a) if isinstance(a, VReg) else None
        b_const = b.value if isinstance(b, Imm) else known.get(b)
        if a_const is not None and b_const is not None:
            if compare(ins.cond, a_const, b_const):
                return I.jump(ins.target)
            return None  # never taken
        return ins
    return ins


def _algebraic(ins, b_const):
    """Strength reduction and identity elimination with a constant rhs."""
    op, a = ins.op, ins.srcs[0]
    if b_const == 0:
        if op in ("add", "sub", "or", "xor", "shl", "shr"):
            return I.unop("mov", ins.dst, a)
        if op in ("mul", "and"):
            return I.li(ins.dst, 0)
    if b_const == 1:
        if op in ("mul", "div"):
            return I.unop("mov", ins.dst, a)
        if op == "rem":
            return I.li(ins.dst, 0)
    if op == "mul" and _is_power_of_two(b_const):
        return I.binop("shl", ins.dst, a, Imm(b_const.bit_length() - 1))
    return ins


def run(cfg):
    """Run constant folding over every block; returns True if anything
    changed."""
    changed = False
    for block in cfg.blocks:
        if fold_block(block):
            changed = True
    return changed
