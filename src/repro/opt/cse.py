"""Common-subexpression elimination for constant materialisations.

The paper (Section 10) names "conventional optimizations of code motion
and common subexpression elimination" as the enablers of good code on both
machines.  The front end emits one address/constant materialisation per
*use site* (``heap[i] = heap[j]`` computes ``la heap`` twice); this pass
pools duplicated ``li``/``la`` values into one virtual register defined at
function entry, which

* removes the duplicate ALU work on both machines, and
* leaves a single definition, which the loop-invariant-code-motion and
  rematerialisation machinery handle optimally.

Runs after immediate legalisation so target-created constants pool too.
"""

from collections import Counter

from repro.rtl import instr as I
from repro.rtl.operand import VReg


def _key(ins):
    if ins.op == "li":
        return ("li", ins.srcs[0].value)
    if ins.op == "la":
        return ("la", ins.srcs[0])
    return None


def pool_constants(fn, min_uses=2):
    """Pool duplicated li/la materialisations.  Returns pooled count."""
    # Count definitions per register and per constant key.
    def_count = Counter()
    key_sites = {}
    for ins in fn.instrs:
        for reg in ins.defs():
            def_count[reg] += 1
        key = _key(ins)
        if key is not None and isinstance(ins.dst, VReg):
            key_sites.setdefault(key, []).append(ins)
    # Eligible: the key appears at >= min_uses sites and every site's
    # destination has no other definition (so use-rewriting is sound).
    replacements = {}  # old VReg -> canonical VReg
    entry_defs = []
    pooled = 0
    for key, sites in key_sites.items():
        if len(sites) < min_uses:
            continue
        if any(def_count[ins.dst] != 1 for ins in sites):
            continue
        dsts = {ins.dst for ins in sites}
        if len(dsts) != len(sites):
            continue  # duplicate dst across sites -- be conservative
        canonical = fn.new_vreg()
        prototype = sites[0]
        entry_defs.append(
            I.Instr(
                prototype.op, dst=canonical, srcs=list(prototype.srcs),
                line=prototype.line,
            )
        )
        for ins in sites:
            replacements[ins.dst] = canonical
        pooled += len(sites)
    if not replacements:
        return 0

    def rewrite(reg):
        return replacements.get(reg, reg)

    out = list(entry_defs)
    dead = {id(ins) for sites in key_sites.values() for ins in sites
            if ins.dst in replacements}
    for ins in fn.instrs:
        if id(ins) in dead:
            continue
        replaced = ins.replace_regs(rewrite)
        replaced.dst = ins.dst  # never rewrite definitions
        out.append(replaced)
    fn.instrs = out
    return pooled
