"""Loop-invariant code motion for constant materialisations.

Hoists ``li`` (constant) and ``la`` (global address) instructions out of
loops into the loop preheader.  These are always invariant; the only
safety requirement is that the destination register has no other
definition anywhere in the function (so adding an earlier definition
cannot change any path's value).

This models the "conventional optimizations of code motion" the paper's
compiler applied (Section 10), and is essential for a fair comparison:
without it, the branch-register machine's narrower immediates would be
re-materialised on every loop iteration.
"""

from repro.cfg.build import build_cfg
from repro.cfg.loops import ensure_preheader, find_loops, preheader_is_safe

_HOISTABLE = ("li", "la")


def _definition_counts(cfg):
    counts = {}
    for block in cfg.blocks:
        for ins in block.instrs:
            for reg in ins.defs():
                counts[reg] = counts.get(reg, 0) + 1
    return counts


def hoist_loop_invariants(fn):
    """Hoist single-definition li/la instructions to loop preheaders.

    Works innermost-outwards: a constant hoisted from an inner loop lands
    in the inner preheader, which may itself be inside an outer loop and
    get hoisted again on the outer pass.  Returns the number of moves.
    """
    moves = 0
    for _round in range(4):  # enough for realistic nesting depth
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        if not loops:
            break
        def_counts = _definition_counts(cfg)
        moved_this_round = 0
        # Innermost first so constants bubble outward one level per round.
        for loop in sorted(loops, key=lambda l: -l.depth):
            if not preheader_is_safe(loop):
                continue
            hoistable = []
            # Iterate blocks in layout order -- loop.blocks is a set and
            # must not dictate code order (determinism).
            for block in cfg.blocks:
                if block not in loop.blocks:
                    continue
                for ins in block.instrs:
                    if ins.op in _HOISTABLE and def_counts.get(ins.dst, 0) == 1:
                        hoistable.append((block, ins))
            if not hoistable:
                continue
            preheader = ensure_preheader(cfg, loop, fn)
            if preheader in loop.blocks:
                continue
            for block, ins in hoistable:
                if ins not in block.instrs:
                    continue  # already moved by an inner loop this round
                block.instrs.remove(ins)
                term = preheader.terminator()
                if term is not None:
                    index = preheader.instrs.index(term)
                    preheader.instrs.insert(index, ins)
                else:
                    preheader.instrs.append(ins)
                moved_this_round = moved_this_round + 1
        fn.instrs = cfg.linearize()
        moves = moves + moved_this_round
        if not moved_this_round:
            break
    return moves
