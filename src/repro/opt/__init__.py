"""Machine-independent optimizations and register allocation."""

from repro.opt.pipeline import normalize_returns, optimize_function, optimize_program
from repro.opt.regalloc import AllocationInfo, allocate, reserved_temps

__all__ = [
    "normalize_returns",
    "optimize_function",
    "optimize_program",
    "AllocationInfo",
    "allocate",
    "reserved_temps",
]
