"""Global dead-code elimination over virtual registers.

Removes pure instructions whose results are never used.  Impure
instructions (memory writes, calls, traps, transfers) are always kept;
calls keep their side effects even when the returned value is dead (the
dead destination is simply retained -- the value lands in the return
register either way).
"""

from repro.cfg.liveness import compute_liveness, per_instruction_liveness

_IMPURE = frozenset(
    ["sw", "sb", "sf", "call", "trap", "ret", "br", "fbr", "jmp", "ijmp", "nop"]
)


def run(cfg):
    """One liveness-and-sweep round.  Returns True if anything died."""
    _live_in, live_out = compute_liveness(cfg)
    changed = False
    for block in cfg.blocks:
        after = per_instruction_liveness(block, live_out[block])
        kept = []
        for ins, live in zip(block.instrs, after):
            if ins.op in _IMPURE or ins.is_label():
                kept.append(ins)
                continue
            defs = ins.defs()
            if defs and all(d not in live for d in defs):
                changed = True
                continue
            kept.append(ins)
        block.instrs = kept
    return changed


def run_to_fixpoint(cfg, limit=20):
    """Iterate DCE until nothing changes (chains of dead copies)."""
    rounds = 0
    while run(cfg) and rounds < limit:
        rounds = rounds + 1
    return rounds
