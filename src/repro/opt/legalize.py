"""Target-parameterised immediate legalisation (IR level).

The branch-register machine's instruction formats leave fewer bits for
immediates (Figure 11; Section 7 lists "smaller range of available
constants in some instructions" as one of its costs).  Legalising
immediates *before* register allocation -- by materialising out-of-range
constants into virtual registers -- lets the loop-invariant code motion
pass hoist them, exactly as the authors' vpo compiler would ("Enhancing
the effectiveness of the code can be accomplished with conventional
optimizations of code motion and common subexpression elimination",
Section 10).

Only operation immediates are legalised here; memory-offset immediates
(frame offsets, small field offsets) are left to the code generator's
backstop legaliser, since they are almost always in range.
"""

from repro.rtl import instr as I
from repro.rtl.operand import Imm


def legalize_immediates(fn, spec):
    """Materialise out-of-range immediates into virtual registers."""
    out = []
    for ins in fn.instrs:
        if ins.op in I.INT_BINOPS and len(ins.srcs) == 2:
            b = ins.srcs[1]
            if isinstance(b, Imm) and not spec.imm_fits(b.value):
                temp = fn.new_vreg()
                out.append(I.li(temp, b.value))
                out[-1].line = ins.line
                ins = I.Instr(
                    ins.op, dst=ins.dst, srcs=[ins.srcs[0], temp], line=ins.line
                )
        elif ins.op == "br":
            b = ins.srcs[1]
            if isinstance(b, Imm) and not spec.imm_fits(b.value):
                temp = fn.new_vreg()
                out.append(I.li(temp, b.value))
                out[-1].line = ins.line
                ins = I.Instr(
                    "br", srcs=[ins.srcs[0], temp], cond=ins.cond,
                    target=ins.target, line=ins.line,
                )
        out.append(ins)
    fn.instrs = out
    return fn
