"""Machine-independent optimization pipeline.

Order per round: copy propagation -> constant folding -> dead-code
elimination, repeated to a fixpoint.  Both target machines receive exactly
the same optimised IR, so any difference in the measurements comes from the
target lowering alone -- the property the paper's experiment relies on.
"""

from repro.cfg.build import build_cfg
from repro.obs import METRICS, span
from repro.opt import constfold, copyprop, dce
from repro.rtl import instr as I
from repro.rtl.operand import FLT, INT, Label

MAX_ROUNDS = 10


def _cfg_size(cfg):
    return sum(len(block.instrs) for block in cfg.blocks)


def _record_pass(stage, before, after):
    """Per-pass IR size delta (positive = instructions removed)."""
    if after < before:
        METRICS.counter("opt.ir_removed", stage=stage).inc(before - after)
    elif after > before:
        METRICS.counter("opt.ir_added", stage=stage).inc(after - before)


def normalize_returns(fn):
    """Rewrite the function to have a single exit: every ``ret value`` site
    becomes a move into a shared virtual register followed by a jump to a
    shared epilogue block.  Both target code generators rely on this to
    emit one prologue/epilogue pair."""
    rets = [ins for ins in fn.instrs if ins.op == "ret"]
    if len(rets) <= 1 and (not rets or fn.instrs[-1] is rets[0]):
        return fn
    exit_label = fn.new_label("Lret")
    has_value = any(ins.srcs for ins in rets)
    shared = fn.new_vreg(FLT if fn.return_float else INT) if has_value else None
    out = []
    for ins in fn.instrs:
        if ins.op != "ret":
            out.append(ins)
            continue
        if ins.srcs:
            op = "fmov" if fn.return_float else "mov"
            out.append(I.unop(op, shared, ins.srcs[0]))
        out.append(I.jump(Label(exit_label)))
    out.append(I.label(exit_label))
    out.append(I.ret(shared) if has_value else I.ret())
    fn.instrs = out
    return fn


def optimize_function(fn):
    """Run the pass pipeline over one function, in place."""
    size_in = len(fn.instrs)
    with span("opt.normalize_returns"):
        normalize_returns(fn)
    for _round in range(MAX_ROUNDS):
        with span("opt.build_cfg"):
            cfg = build_cfg(fn)
        size = _cfg_size(cfg)
        with span("opt.copyprop"):
            changed = copyprop.run(cfg)
        after_copyprop = _cfg_size(cfg)
        _record_pass("copyprop", size, after_copyprop)
        with span("opt.constfold"):
            changed |= constfold.run(cfg)
        after_constfold = _cfg_size(cfg)
        _record_pass("constfold", after_copyprop, after_constfold)
        with span("opt.dce"):
            dce.run_to_fixpoint(cfg)
        _record_pass("dce", after_constfold, _cfg_size(cfg))
        fn.instrs = cfg.linearize()
        if not changed:
            break
    METRICS.counter("opt.functions").inc()
    METRICS.counter("opt.ir_instrs_in").inc(size_in)
    METRICS.counter("opt.ir_instrs_out").inc(len(fn.instrs))
    return fn


def optimize_program(program):
    """Optimise every function of an IR program, in place."""
    for fn in program.functions.values():
        optimize_function(fn)
    return program
