"""Local copy propagation.

The front end produces chains like ``v2 = li 0; v1 = mov v2``; this pass
forwards copy sources into later uses within a block so dead-code
elimination can drop the copies.
"""

from repro.rtl.operand import VReg


def propagate_block(block):
    """Forward copies within one block.  Returns True if changed."""
    copies = {}  # dst VReg -> src VReg while both are unmodified
    changed = False
    new_instrs = []
    for ins in block.instrs:
        def lookup(reg):
            seen = set()
            while isinstance(reg, VReg) and reg in copies and reg not in seen:
                seen.add(reg)
                reg = copies[reg]
            return reg

        replaced = ins.replace_regs(lookup)
        # Only *uses* may be forwarded; the definition keeps its register.
        replaced.dst = ins.dst
        if repr(replaced) != repr(ins):
            changed = True
        ins = replaced
        # Kill copies invalidated by this definition.
        for reg in ins.defs():
            copies.pop(reg, None)
            stale = [d for d, s in copies.items() if s == reg]
            for d in stale:
                del copies[d]
        if ins.op in ("mov", "fmov"):
            src = ins.srcs[0]
            if isinstance(src, VReg) and isinstance(ins.dst, VReg) and src != ins.dst:
                copies[ins.dst] = src
        new_instrs.append(ins)
    block.instrs = new_instrs
    return changed


def run(cfg):
    changed = False
    for block in cfg.blocks:
        if propagate_block(block):
            changed = True
    return changed
