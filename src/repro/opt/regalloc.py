"""Global register allocation (priority-based colouring with spilling).

Runs on machine-independent IR, parameterised by a
:class:`~repro.machine.spec.MachineSpec`, so the *same* allocator serves
both machines -- only the register counts differ (32 vs 16 data registers,
32 vs 16 float registers).  This mirrors the paper's setup, where the
reduced data-register file of the branch-register machine shows up as
extra data memory references (Table I: +2.0%).

Conventions:

* virtual registers live across a call (or trap) may only receive
  callee-saved registers;
* the first three caller-saved integer registers and first two caller-saved
  float registers are *reserved* as assembler temporaries for spill code
  and for target-specific legalisation (large immediates, far addresses);
* unallocated virtuals spill to frame slots accessed through the
  ``ldspill``/``stspill`` pseudo-ops, which the target code generators
  lower to sp-relative loads/stores.
"""

from dataclasses import dataclass, field

from repro.cfg.build import build_cfg
from repro.cfg.freq import estimate_frequencies
from repro.cfg.liveness import compute_liveness, per_instruction_liveness
from repro.cfg.loops import find_loops
from repro.rtl import instr as I
from repro.rtl.operand import FLT, INT, Reg, VReg

N_RESERVED_INT = 3
N_RESERVED_FLT = 2


@dataclass(frozen=True)
class DeferredArg:
    """A call/trap argument whose value is not in a register after
    allocation.  The code generator materialises it straight into the
    argument register (a spill-slot load, or a rematerialised constant),
    sidestepping the two-temporary limit of ordinary spill code.

    ``kind`` is "spill" (payload = frame Local) or "remat" (payload =
    the defining li/la instruction).  ``cls`` is the register class.
    """

    kind: str
    payload: object
    cls: str = INT


@dataclass
class AllocationInfo:
    """Result of register allocation for one function."""

    mapping: dict = field(default_factory=dict)  # VReg -> Reg
    spill_slots: dict = field(default_factory=dict)  # VReg -> Local
    used_callee_saved: set = field(default_factory=set)  # of Reg
    spill_loads: int = 0
    spill_stores: int = 0

    def location(self, vreg):
        if vreg in self.mapping:
            return ("reg", self.mapping[vreg])
        if vreg in self.spill_slots:
            return ("spill", self.spill_slots[vreg])
        return ("none", None)


def reserved_temps(spec, cls):
    """The assembler-temporary registers for a class, never allocated."""
    if cls == INT:
        indices = spec.ints.caller_saved[:N_RESERVED_INT]
        return [Reg("r", i) for i in indices]
    indices = spec.flts.caller_saved[:N_RESERVED_FLT]
    return [Reg("f", i) for i in indices]


class RegisterAllocator:
    """Allocates one function's virtual registers for one machine."""

    def __init__(self, fn, spec):
        self.fn = fn
        self.spec = spec
        self.info = AllocationInfo()

    # -- pools -----------------------------------------------------------

    def _pools(self, cls):
        """(non-crossing pool, crossing pool) of physical registers."""
        if cls == INT:
            conv, kind = self.spec.ints, "r"
            reserved = set(conv.caller_saved[:N_RESERVED_INT])
        else:
            conv, kind = self.spec.flts, "f"
            reserved = set(conv.caller_saved[:N_RESERVED_FLT])
        scratch = [conv.ret] + list(conv.args) + [
            i for i in conv.caller_saved if i not in reserved
        ]
        callee = list(conv.callee_saved)
        scratch_regs = [Reg(kind, i) for i in scratch]
        callee_regs = [Reg(kind, i) for i in callee]
        return scratch_regs, callee_regs

    # -- analysis ----------------------------------------------------------

    def _analyse(self, cfg):
        loops = find_loops(cfg)
        estimate_frequencies(cfg, loops)
        _live_in, live_out = compute_liveness(cfg)
        interference = {}
        crossing = set()
        priority = {}

        def note(vreg, weight):
            priority[vreg] = priority.get(vreg, 0.0) + weight

        def add_edge(a, b):
            if a == b:
                return
            interference.setdefault(a, set()).add(b)
            interference.setdefault(b, set()).add(a)

        # Parameters are live on entry and interfere with each other.
        param_regs = [v for v, _ in self.fn.params]
        for i, a in enumerate(param_regs):
            interference.setdefault(a, set())
            for b in param_regs[i + 1 :]:
                add_edge(a, b)

        for block in cfg.blocks:
            after = per_instruction_liveness(block, live_out[block])
            for ins, live in zip(block.instrs, after):
                weight = block.freq
                for reg in ins.uses():
                    note(reg, weight)
                    interference.setdefault(reg, set())
                for reg in ins.defs():
                    note(reg, weight * 1.0)
                    interference.setdefault(reg, set())
                    skip = None
                    if ins.op in ("mov", "fmov") and isinstance(
                        ins.srcs[0], VReg
                    ):
                        skip = ins.srcs[0]
                    for other in live:
                        if other is not skip or other in ins.defs():
                            add_edge(reg, other)
                if ins.op in ("call", "trap"):
                    survivors = set(live)
                    for d in ins.defs():
                        survivors.discard(d)
                    crossing |= survivors
        return interference, crossing, priority

    # -- assignment -----------------------------------------------------------

    def _assign(self, interference, crossing, priority, cheap_spill=()):
        """Priority-order colouring.  ``cheap_spill`` contains virtuals
        whose value can be rematerialised (single li/la definition); they
        are deprioritised so scarce registers go to real variables first --
        spilling them costs one or two ALU instructions instead of a
        memory reference."""
        mapping = {}
        cheap = set(cheap_spill)

        def weight(v):
            base = priority.get(v, 0.0)
            return base * 0.4 if v in cheap else base

        order = sorted(
            interference.keys(),
            key=lambda v: (-weight(v), v.vid),
        )
        pools = {INT: self._pools(INT), FLT: self._pools(FLT)}
        spilled = []
        for vreg in order:
            scratch, callee = pools[vreg.cls]
            candidates = callee if vreg in crossing else scratch + callee
            taken = {
                mapping[n] for n in interference.get(vreg, ()) if n in mapping
            }
            chosen = None
            for reg in candidates:
                if reg not in taken:
                    chosen = reg
                    break
            if chosen is None:
                spilled.append(vreg)
            else:
                mapping[vreg] = chosen
                if chosen.index in (
                    self.spec.ints.callee_saved
                    if chosen.kind == "r"
                    else self.spec.flts.callee_saved
                ):
                    self.info.used_callee_saved.add(chosen)
        return mapping, spilled

    # -- spilling ----------------------------------------------------------

    def _remat_candidates(self, cfg, spilled):
        """Spilled virtuals whose single definition is a constant (li/la)
        are *rematerialised* at each use instead of living in a stack slot
        -- cheaper than a load, and it undoes LICM's pressure increase
        gracefully."""
        defs = {}
        for block in cfg.blocks:
            for ins in block.instrs:
                for reg in ins.defs():
                    defs.setdefault(reg, []).append(ins)
        remat = {}
        for vreg in spilled:
            sites = defs.get(vreg, [])
            if len(sites) == 1 and sites[0].op in ("li", "la"):
                remat[vreg] = sites[0]
        return remat

    def _spill(self, cfg, spilled):
        temps = {INT: reserved_temps(self.spec, INT)[:2],
                 FLT: reserved_temps(self.spec, FLT)[:2]}
        remat = self._remat_candidates(cfg, spilled)
        slots = {}
        for vreg in spilled:
            if vreg in remat:
                continue
            slots[vreg] = self.fn.add_local("__spill_v%d" % vreg.vid, 4)
        for block in cfg.blocks:
            out = []
            for ins in block.instrs:
                temp_index = {INT: 0, FLT: 0}
                temp_of = {}

                def temp_for(vreg):
                    if vreg in temp_of:
                        return temp_of[vreg]
                    pool = temps[vreg.cls]
                    idx = temp_index[vreg.cls]
                    if idx >= len(pool):
                        raise AssertionError(
                            "out of spill temporaries in %s" % self.fn.name
                        )
                    temp_index[vreg.cls] = idx + 1
                    temp_of[vreg] = pool[idx]
                    return pool[idx]

                # Drop the original definition of rematerialised virtuals.
                if (
                    ins.op in ("li", "la")
                    and ins.dst in remat
                    and remat[ins.dst] is ins
                ):
                    continue
                # Call/trap arguments go straight into argument registers,
                # so spilled ones become DeferredArg markers for the code
                # generator rather than consuming the two temporaries.
                if ins.op in ("call", "trap"):
                    new_args = []
                    for arg in ins.args:
                        if arg in slots:
                            new_args.append(
                                DeferredArg("spill", slots[arg], arg.cls)
                            )
                            self.info.spill_loads = self.info.spill_loads + 1
                        elif arg in remat:
                            new_args.append(
                                DeferredArg("remat", remat[arg], arg.cls)
                            )
                        else:
                            new_args.append(arg)
                    ins.args = new_args
                used_spilled = [
                    u for u in dict.fromkeys(ins.uses()) if u in slots
                ]
                used_remat = [
                    u for u in dict.fromkeys(ins.uses()) if u in remat
                ]
                def_spilled = [d for d in ins.defs() if d in slots]
                for vreg in used_spilled:
                    temp = temp_for(vreg)
                    out.append(
                        I.Instr(
                            "ldspill", dst=temp, srcs=[slots[vreg]],
                            line=ins.line,
                        )
                    )
                    self.info.spill_loads = self.info.spill_loads + 1
                for vreg in used_remat:
                    temp = temp_for(vreg)
                    original = remat[vreg]
                    out.append(
                        I.Instr(
                            original.op, dst=temp, srcs=list(original.srcs),
                            line=ins.line,
                        )
                    )
                for vreg in def_spilled:
                    temp_for(vreg)  # ensure the def has a temp

                def swap(reg):
                    if reg in temp_of:
                        return temp_of[reg]
                    return reg

                out.append(ins.replace_regs(swap))
                for vreg in def_spilled:
                    out.append(
                        I.Instr(
                            "stspill", srcs=[temp_of[vreg], slots[vreg]],
                            line=ins.line,
                        )
                    )
                    self.info.spill_stores = self.info.spill_stores + 1
            block.instrs = out
        return slots

    # -- driver ----------------------------------------------------------------

    def _cheap_spill_candidates(self, cfg):
        defs = {}
        for block in cfg.blocks:
            for ins in block.instrs:
                for reg in ins.defs():
                    defs.setdefault(reg, []).append(ins)
        return {
            v
            for v, sites in defs.items()
            if len(sites) == 1 and sites[0].op in ("li", "la")
        }

    def run(self):
        cfg = build_cfg(self.fn)
        interference, crossing, priority = self._analyse(cfg)
        cheap = self._cheap_spill_candidates(cfg)
        mapping, spilled = self._assign(interference, crossing, priority, cheap)
        self.info.mapping = mapping
        if spilled:
            self.info.spill_slots = self._spill(cfg, spilled)

        def rewrite(reg):
            if isinstance(reg, VReg):
                return mapping.get(reg, reg)
            return reg

        for block in cfg.blocks:
            rewritten = [ins.replace_regs(rewrite) for ins in block.instrs]
            # Allocation frequently coalesces mov chains onto one register;
            # drop the resulting self-moves.
            block.instrs = [
                ins
                for ins in rewritten
                if not (
                    ins.op in ("mov", "fmov")
                    and isinstance(ins.dst, Reg)
                    and ins.dst == ins.srcs[0]
                )
            ]
        self.fn.instrs = cfg.linearize()
        return self.info


def allocate(fn, spec):
    """Allocate registers for ``fn`` targeting ``spec``; rewrites the
    function in place and returns the :class:`AllocationInfo`."""
    return RegisterAllocator(fn, spec).run()
