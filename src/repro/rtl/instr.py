"""Machine-independent three-address IR.

The SmallC front end lowers the AST into a flat list of :class:`Instr`
objects per function.  The IR is deliberately close to the RTLs of the two
target machines: three-address register operations, explicit loads and
stores, compare-and-branch, direct and indirect jumps, calls, and returns.

Opcode groups
-------------

=============  =====================================================
group          opcodes
=============  =====================================================
constants      ``li`` ``fli`` ``la``
int arith      ``add sub mul div rem and or xor shl shr`` (reg/imm rhs)
int unary      ``neg not mov``
float arith    ``fadd fsub fmul fdiv``
float unary    ``fneg fmov``
conversions    ``cvtif`` (int->float), ``cvtfi`` (float->int, truncating)
memory         ``lw lb lf`` / ``sw sb sf`` (word, byte, float)
control        ``br`` ``fbr`` ``jmp`` ``ijmp`` ``call`` ``trap`` ``ret``
markers        ``label`` ``nop``
=============  =====================================================

``br cond, a, b, target`` compares two integer operands and branches when
the relation holds; ``fbr`` is its float twin.  ``ijmp`` jumps to an address
held in a register (switch tables).  ``trap`` invokes an emulator-provided
builtin (I/O); it is *not* a transfer of control on either machine.
"""

from dataclasses import dataclass, field

from repro.rtl.operand import Imm, is_reg_like

# Relational conditions usable in br/fbr.
CONDS = ("eq", "ne", "lt", "le", "gt", "ge")

NEGATED = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt", "gt": "le"}

SWAPPED = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge", "ge": "le"}

INT_BINOPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr")
INT_UNOPS = ("neg", "not", "mov")
FLT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
FLT_UNOPS = ("fneg", "fmov")
LOADS = ("lw", "lb", "lf")
STORES = ("sw", "sb", "sf")
TRANSFERS = ("br", "fbr", "jmp", "ijmp", "call", "ret")

COMMUTATIVE = ("add", "mul", "and", "or", "xor", "fadd", "fmul")


@dataclass
class Instr:
    """One IR instruction.

    Attributes:
        op: opcode string from the table above.
        dst: destination register (or None).
        srcs: list of source operands (registers, immediates, syms).
        cond: relational condition for ``br``/``fbr``.
        target: :class:`~repro.rtl.operand.Label` for ``br``/``fbr``/``jmp``.
        callee: function name for ``call``/``trap``.
        args: argument operands for ``call``/``trap``.
        name: label name for ``label`` markers.
    """

    op: str
    dst: object = None
    srcs: list = field(default_factory=list)
    cond: str = None
    target: object = None
    callee: str = None
    args: list = field(default_factory=list)
    name: str = None
    #: SmallC source line this instruction was lowered from (0 = unknown).
    #: Carried through the optimiser and into the MInstr debug maps so the
    #: profiler can attribute dynamic counts to source lines.
    line: int = 0

    # ---- classification helpers -------------------------------------

    def is_label(self):
        return self.op == "label"

    def is_transfer(self):
        return self.op in TRANSFERS

    def is_cond_branch(self):
        return self.op in ("br", "fbr")

    def is_load(self):
        return self.op in LOADS

    def is_store(self):
        return self.op in STORES

    def is_call(self):
        return self.op == "call"

    def is_mem(self):
        return self.is_load() or self.is_store()

    # ---- def/use sets ------------------------------------------------

    def defs(self):
        """Registers written by this instruction."""
        out = []
        if self.dst is not None and is_reg_like(self.dst):
            out.append(self.dst)
        return out

    def uses(self):
        """Registers read by this instruction."""
        out = [s for s in self.srcs if is_reg_like(s)]
        out.extend(a for a in self.args if is_reg_like(a))
        return out

    def replace_regs(self, mapping):
        """Return a copy with every register operand rewritten via mapping.

        ``mapping`` is a callable taking a register operand and returning
        its replacement (possibly the same object).
        """

        def swap(op):
            if is_reg_like(op):
                return mapping(op)
            return op

        return Instr(
            op=self.op,
            dst=swap(self.dst) if self.dst is not None else None,
            srcs=[swap(s) for s in self.srcs],
            cond=self.cond,
            target=self.target,
            callee=self.callee,
            args=[swap(a) for a in self.args],
            name=self.name,
            line=self.line,
        )

    def __repr__(self):
        return ir_repr(self)


def ir_repr(ins):
    """Readable, assembly-flavoured rendering of one IR instruction."""
    if ins.op == "label":
        return "%s:" % ins.name
    if ins.op in ("br", "fbr"):
        return "%s.%s %r, %r -> %s" % (
            ins.op,
            ins.cond,
            ins.srcs[0],
            ins.srcs[1],
            ins.target,
        )
    if ins.op == "jmp":
        return "jmp %s" % ins.target
    if ins.op == "ijmp":
        return "ijmp %r" % ins.srcs[0]
    if ins.op in ("call", "trap"):
        args = ", ".join(repr(a) for a in ins.args)
        if ins.dst is not None:
            return "%r = %s %s(%s)" % (ins.dst, ins.op, ins.callee, args)
        return "%s %s(%s)" % (ins.op, ins.callee, args)
    if ins.op == "ret":
        if ins.srcs:
            return "ret %r" % ins.srcs[0]
        return "ret"
    if ins.op == "nop":
        return "nop"
    if ins.op in STORES:
        return "%s %r -> [%r + %r]" % (ins.op, ins.srcs[0], ins.srcs[1], ins.srcs[2])
    if ins.op in LOADS:
        return "%r = %s [%r + %r]" % (ins.dst, ins.op, ins.srcs[0], ins.srcs[1])
    if ins.dst is not None:
        rhs = ", ".join(repr(s) for s in ins.srcs)
        return "%r = %s %s" % (ins.dst, ins.op, rhs)
    rhs = ", ".join(repr(s) for s in ins.srcs)
    return "%s %s" % (ins.op, rhs)


# ---- construction shorthands used by irgen and tests ------------------


def label(name):
    return Instr("label", name=name)


def li(dst, value):
    return Instr("li", dst=dst, srcs=[Imm(int(value))])


def fli(dst, value):
    from repro.rtl.operand import FImm

    return Instr("fli", dst=dst, srcs=[FImm(float(value))])


def la(dst, sym):
    return Instr("la", dst=dst, srcs=[sym])


def binop(op, dst, a, b):
    if op not in INT_BINOPS and op not in FLT_BINOPS:
        raise ValueError("bad binop %r" % op)
    return Instr(op, dst=dst, srcs=[a, b])


def unop(op, dst, a):
    if op not in INT_UNOPS and op not in FLT_UNOPS and op not in ("cvtif", "cvtfi"):
        raise ValueError("bad unop %r" % op)
    return Instr(op, dst=dst, srcs=[a])


def load(op, dst, base, offset=0):
    if op not in LOADS:
        raise ValueError("bad load op %r" % op)
    return Instr(op, dst=dst, srcs=[base, Imm(offset)])


def store(op, value, base, offset=0):
    if op not in STORES:
        raise ValueError("bad store op %r" % op)
    return Instr(op, srcs=[value, base, Imm(offset)])


def branch(cond, a, b, target, float_=False):
    if cond not in CONDS:
        raise ValueError("bad condition %r" % cond)
    return Instr("fbr" if float_ else "br", srcs=[a, b], cond=cond, target=target)


def jump(target):
    return Instr("jmp", target=target)


def ijump(reg):
    return Instr("ijmp", srcs=[reg])


def call(callee, args, dst=None):
    return Instr("call", dst=dst, callee=callee, args=list(args))


def trap(callee, args, dst=None):
    return Instr("trap", dst=dst, callee=callee, args=list(args))


def ret(value=None):
    return Instr("ret", srcs=[] if value is None else [value])


def nop():
    return Instr("nop")
