"""Paper-style RTL printing.

The paper presents machine instructions as register transfer lists, e.g.::

    r[3]=r[1]+r[2];
    b[7]=r[5]<0->b[2]|b[0];
    NL=NL; b[0]=b[7];

This module renders :class:`~repro.codegen.common.MInstr` sequences in that
notation so the Figure 3 / Figure 4 comparisons can be regenerated
verbatim-in-spirit.
"""

from repro.rtl.operand import FImm, Imm, Label, Reg, Sym

_BINOP_SIGN = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
    "fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/",
}

_COND_SIGN = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_MEM_CELL = {"lw": "M", "lb": "B", "lf": "F", "sw": "M", "sb": "B", "sf": "F"}


def _operand(op):
    if isinstance(op, Reg):
        return "%s[%d]" % (op.kind, op.index)
    if isinstance(op, Imm):
        return str(op.value)
    if isinstance(op, FImm):
        return repr(op.value)
    if isinstance(op, (Label, Sym)):
        return str(op)
    return repr(op)


def _mem(base, offset):
    base_text = _operand(base)
    off = offset.value if isinstance(offset, Imm) else offset
    if isinstance(off, int):
        if off == 0:
            return base_text
        if off < 0:
            return "%s-%d" % (base_text, -off)
        return "%s+%d" % (base_text, off)
    return "%s+%s" % (base_text, _operand(offset))


def minstr_core_text(ins):
    """Render one instruction *without* its branch-register suffix."""
    op = ins.op
    if op == "label":
        return "%s:" % ins.label
    if op == "noop":
        return "NL=NL;"
    if op == "halt":
        return "halt;"
    if op == "trap":
        return "trap %s;" % ins.callee
    if op == "li":
        return "%s=%s;" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op == "sethi":
        return "%s=HI(%s);" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op == "addlo":
        return "%s=%s+LO(%s);" % (
            _operand(ins.dst), _operand(ins.srcs[0]), _operand(ins.srcs[1]))
    if op in ("mov", "fmov", "bmov"):
        return "%s=%s;" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op in ("neg", "fneg"):
        return "%s=-%s;" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op == "not":
        return "%s=~%s;" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op == "cvtif":
        return "%s=ITOF(%s);" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op == "cvtfi":
        return "%s=FTOI(%s);" % (_operand(ins.dst), _operand(ins.srcs[0]))
    if op in _BINOP_SIGN:
        return "%s=%s%s%s;" % (
            _operand(ins.dst), _operand(ins.srcs[0]),
            _BINOP_SIGN[op], _operand(ins.srcs[1]))
    if op in ("lw", "lb", "lf"):
        return "%s=%s[%s];" % (
            _operand(ins.dst), _MEM_CELL[op], _mem(ins.srcs[0], ins.srcs[1]))
    if op in ("sw", "sb", "sf"):
        return "%s[%s]=%s;" % (
            _MEM_CELL[op], _mem(ins.srcs[1], ins.srcs[2]), _operand(ins.srcs[0]))
    if op == "bld":
        return "%s=M[%s];" % (_operand(ins.dst), _mem(ins.srcs[0], ins.srcs[1]))
    if op == "bst":
        return "M[%s]=%s;" % (_mem(ins.srcs[1], ins.srcs[2]), _operand(ins.srcs[0]))
    if op in ("cmp", "fcmp"):
        return "cc=%s?%s;" % (_operand(ins.srcs[0]), _operand(ins.srcs[1]))
    if op in ("bcc", "fbcc"):
        return "PC=cc%s0->%s;" % (_COND_SIGN[ins.cond], ins.target)
    if op == "jmp":
        return "PC=%s;" % ins.target
    if op == "call":
        return "PC=%s; RT=NXT;" % ins.target
    if op == "ijmp":
        return "PC=%s;" % _operand(ins.srcs[0])
    if op == "retrt":
        return "PC=RT;"
    if op == "mfrt":
        return "%s=RT;" % _operand(ins.dst)
    if op == "mtrt":
        return "RT=%s;" % _operand(ins.srcs[0])
    if op == "bta":
        return "%s=b[0]+(%s-.);" % (_operand(ins.dst), ins.target)
    if op == "btahi":
        return "%s=HI(%s);" % (_operand(ins.dst), ins.target)
    if op == "btalo":
        return "%s=%s+LO(%s);" % (
            _operand(ins.dst), _operand(ins.srcs[0]), ins.target)
    if op in ("cmpset", "fcmpset"):
        return "b[%d]=%s%s%s->b[%d]|b[0];" % (
            ins.dst.index, _operand(ins.srcs[0]), _COND_SIGN[ins.cond],
            _operand(ins.srcs[1]), ins.btrue)
    return "%s ???" % op


def minstr_text(ins, show_br=True):
    """Render one instruction, appending the branch-register transfer
    (``b[0]=b[k];``) when the ``br`` field names a non-PC register, in the
    style of the paper's Figure 4."""
    text = minstr_core_text(ins)
    if show_br and ins.br:
        text = "%s b[0]=b[%d];" % (text, ins.br)
    if ins.note:
        text = "%s /* %s */" % (text, ins.note)
    return text


def listing(instrs, show_br=True):
    """Render an instruction sequence as a multi-line listing.  Labels are
    outdented; real instructions are indented."""
    lines = []
    for ins in instrs:
        if ins.is_label():
            lines.append("%s:" % ins.label)
        else:
            lines.append("    " + minstr_text(ins, show_br=show_br))
    return "\n".join(lines)


def ir_listing(instrs):
    """Render machine-independent IR (for debugging and examples)."""
    lines = []
    for ins in instrs:
        if ins.is_label():
            lines.append("%s:" % ins.name)
        else:
            lines.append("    " + repr(ins))
    return "\n".join(lines)
