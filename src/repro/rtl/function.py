"""Containers for IR functions, global data, and whole programs."""

from dataclasses import dataclass

from repro.rtl.operand import FLT, INT, VReg

WORD = 4  # bytes per machine word on both target machines


@dataclass
class GlobalVar:
    """A global data object.

    Attributes:
        name: symbol name.
        size: size in bytes.
        init: optional initial contents -- ``bytes`` for byte data, a list
            of ints for word data, a list of floats for float data, or a
            list of label-name strings for a jump table.
        elem: element kind: "byte", "word", "float" or "label".
    """

    name: str
    size: int
    init: object = None
    elem: str = "word"

    @property
    def align(self):
        return 1 if self.elem == "byte" else WORD


@dataclass
class Local:
    """A stack-allocated local (array or spilled scalar)."""

    name: str
    size: int
    offset: int = None  # frame offset, assigned by the target code generator


class IRFunction:
    """A function in machine-independent IR form."""

    def __init__(self, name, params=None, return_float=False):
        self.name = name
        self.params = params or []  # list of (VReg, is_float)
        self.return_float = return_float
        self.instrs = []
        self.locals = []  # list of Local (arrays/addressed vars)
        self._next_vreg = 0
        self._next_label = 0
        self.has_call = False

    def new_vreg(self, cls=INT):
        v = VReg(self._next_vreg, cls)
        self._next_vreg = self._next_vreg + 1
        return v

    def new_flt(self):
        return self.new_vreg(FLT)

    def new_label(self, hint="L"):
        self._next_label = self._next_label + 1
        return "%s_%s_%d" % (hint, self.name, self._next_label)

    def emit(self, instr):
        if instr.op == "call":
            self.has_call = True
        self.instrs.append(instr)
        return instr

    def add_local(self, name, size):
        loc = Local(name, size)
        self.locals.append(loc)
        return loc

    def vreg_count(self):
        return self._next_vreg

    def __repr__(self):
        return "<IRFunction %s: %d instrs>" % (self.name, len(self.instrs))


class IRProgram:
    """A whole program: functions plus global data."""

    def __init__(self):
        self.functions = {}
        self.globals = {}
        self._next_string = 0

    def add_function(self, fn):
        self.functions[fn.name] = fn

    def add_global(self, gvar):
        self.globals[gvar.name] = gvar
        return gvar

    def intern_string(self, text):
        """Place a NUL-terminated string literal in the data segment and
        return its symbol name.  Identical literals are shared."""
        data = text.encode("latin-1") + b"\x00"
        for name, g in self.globals.items():
            if g.elem == "byte" and g.init == data and name.startswith("__str"):
                return name
        name = "__str%d" % self._next_string
        self._next_string = self._next_string + 1
        self.add_global(GlobalVar(name, len(data), init=data, elem="byte"))
        return name

    def function(self, name):
        return self.functions[name]

    def __repr__(self):
        return "<IRProgram: %d functions, %d globals>" % (
            len(self.functions),
            len(self.globals),
        )
