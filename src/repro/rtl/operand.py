"""Operand kinds used by the machine-independent IR and the target RTLs.

The paper expresses machine instructions as register transfer lists (RTLs)
over the hardware's storage cells.  The storage cells we model are:

* ``r[n]``  -- general-purpose (integer) registers,
* ``f[n]``  -- floating-point registers,
* ``b[n]``  -- branch registers (branch-register machine only),
* ``NZ``    -- the condition-code cell of the baseline machine,
* ``RT``    -- the baseline machine's return-address cell.

Before register allocation the compiler manipulates *virtual* registers
(:class:`VReg`); allocation rewrites them to physical :class:`Reg` operands.
"""

from dataclasses import dataclass

# Register classes.
INT = "int"
FLT = "flt"
BRANCH = "br"


@dataclass(frozen=True)
class VReg:
    """A virtual register produced by the front end.

    Attributes:
        vid: unique id within one function.
        cls: register class, :data:`INT` or :data:`FLT`.
    """

    vid: int
    cls: str = INT

    def __repr__(self):
        prefix = "v" if self.cls == INT else "vf"
        return "%s%d" % (prefix, self.vid)


@dataclass(frozen=True)
class Reg:
    """A physical register, e.g. ``r[5]``, ``f[2]`` or ``b[7]``."""

    kind: str  # "r", "f" or "b"
    index: int

    def __repr__(self):
        return "%s[%d]" % (self.kind, self.index)

    @property
    def cls(self):
        if self.kind == "r":
            return INT
        if self.kind == "f":
            return FLT
        return BRANCH


@dataclass(frozen=True)
class Imm:
    """An integer immediate operand."""

    value: int

    def __repr__(self):
        return str(self.value)


@dataclass(frozen=True)
class FImm:
    """A floating-point immediate operand (materialised from the data
    segment on a real machine; carried symbolically here)."""

    value: float

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Label:
    """A code label (branch target or function entry)."""

    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Sym:
    """The address of a global symbol (variable, string, jump table)."""

    name: str
    offset: int = 0

    def __repr__(self):
        if self.offset:
            return "%s+%d" % (self.name, self.offset)
        return self.name


def is_reg_like(op):
    """True for operands that name a register (virtual or physical)."""
    return isinstance(op, (VReg, Reg))


def reg_class(op):
    """Register class of a register-like operand."""
    if isinstance(op, VReg):
        return op.cls
    if isinstance(op, Reg):
        return op.cls
    raise TypeError("not a register operand: %r" % (op,))
