"""Register-transfer-list IR: operands, instructions, containers, printing."""

from repro.rtl.function import GlobalVar, IRFunction, IRProgram, Local
from repro.rtl.instr import Instr
from repro.rtl.operand import FImm, Imm, Label, Reg, Sym, VReg

__all__ = [
    "GlobalVar",
    "IRFunction",
    "IRProgram",
    "Local",
    "Instr",
    "FImm",
    "Imm",
    "Label",
    "Reg",
    "Sym",
    "VReg",
]
