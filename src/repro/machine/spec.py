"""Machine specifications for the two emulated architectures.

The paper (Section 7) evaluates two machines that differ only in how they
perform transfers of control:

* the **baseline** machine: 32 general-purpose data registers, 32
  floating-point registers, delayed branches (one delay slot);
* the **branch-register** machine: 16 data registers, 16 floating-point
  registers, 8 branch registers and 8 instruction registers, no branch
  instructions, and a smaller range of immediate constants (the ``br``
  field and wider register specifiers steal encoding bits).

A :class:`MachineSpec` bundles the register conventions the code generator
needs.  Both machines share the same calling convention *shape* so that the
middle end is identical; only the register counts differ.
"""

from dataclasses import dataclass, field

from repro.rtl.operand import Reg


@dataclass(frozen=True)
class RegisterConvention:
    """Calling-convention roles for one register class."""

    count: int
    ret: int  # return-value register index
    args: tuple  # argument register indices (in order)
    caller_saved: tuple  # scratch registers (besides ret/args)
    callee_saved: tuple  # preserved across calls
    sp: int = None  # stack pointer (integer class only)

    def allocatable(self):
        """Registers the allocator may use, caller-saved first.

        The return-value and argument registers are also allocatable as
        scratch between calls; the allocator handles their clobbering at
        call sites conservatively (virtuals live across calls get
        callee-saved registers or spill).
        """
        return tuple(self.caller_saved) + tuple(self.callee_saved)


@dataclass(frozen=True)
class MachineSpec:
    """Everything target-independent passes need to know about a machine."""

    name: str
    ints: RegisterConvention
    flts: RegisterConvention
    imm_bits: int  # signed immediate width in format-3 instructions
    disp_bits: int  # signed branch/bta displacement width
    sethi_bits: int  # width of the sethi immediate (upper bits)
    has_delayed_branch: bool = False
    branch_regs: int = 0  # 0 on the baseline machine
    # Branch-register roles (branch-register machine only):
    br_pc: int = 0
    br_link: int = 7  # clobbered by every transfer; compare destination
    br_callee_saved: tuple = field(default_factory=tuple)
    br_scratch: tuple = field(default_factory=tuple)

    @property
    def word(self):
        return 4

    def sp(self):
        return Reg("r", self.ints.sp)

    def ret_reg(self, float_=False):
        conv = self.flts if float_ else self.ints
        return Reg("f" if float_ else "r", conv.ret)

    def arg_reg(self, i, float_=False):
        conv = self.flts if float_ else self.ints
        return Reg("f" if float_ else "r", conv.args[i])

    def max_args(self):
        return min(len(self.ints.args), len(self.flts.args))

    def imm_fits(self, value):
        """Does ``value`` fit the signed immediate field of arithmetic and
        memory instructions?"""
        half = 1 << (self.imm_bits - 1)
        return -half <= value < half

    def disp_fits(self, value):
        half = 1 << (self.disp_bits - 1)
        return -half <= value < half


def baseline_spec():
    """The baseline machine of Section 7 (Figure 10 formats)."""
    return MachineSpec(
        name="baseline",
        ints=RegisterConvention(
            count=32,
            ret=0,
            args=(1, 2, 3, 4),
            caller_saved=tuple(range(5, 16)),
            callee_saved=tuple(range(16, 31)),
            sp=31,
        ),
        flts=RegisterConvention(
            count=32,
            ret=0,
            args=(1, 2, 3, 4),
            caller_saved=tuple(range(5, 16)),
            callee_saved=tuple(range(16, 32)),
        ),
        imm_bits=13,
        disp_bits=22,
        sethi_bits=21,
        has_delayed_branch=True,
        branch_regs=0,
    )


def branchreg_spec(branch_regs=8):
    """The branch-register machine of Section 7 (Figure 11 formats).

    ``branch_regs`` is parameterised to support the Section 9 ablation
    ("the available number of these registers ... could be varied").  The
    paper's machine uses 8.  ``b[0]`` is always the PC and the highest
    register is always the link/trash register; the remainder is split
    evenly between callee-saved ("non-scratch") and scratch registers.
    """
    if branch_regs < 3:
        raise ValueError("need at least PC, link and one usable branch register")
    link = branch_regs - 1
    usable = list(range(1, link))
    half = len(usable) // 2
    callee_saved = tuple(usable[:half]) if half else ()
    scratch = tuple(usable[half:])
    return MachineSpec(
        name="branchreg",
        ints=RegisterConvention(
            count=16,
            ret=0,
            args=(1, 2, 3, 4),
            caller_saved=(5, 6, 7),
            callee_saved=tuple(range(8, 15)),
            sp=15,
        ),
        flts=RegisterConvention(
            count=16,
            ret=0,
            args=(1, 2, 3, 4),
            caller_saved=(5, 6, 7),
            callee_saved=tuple(range(8, 16)),
        ),
        imm_bits=10,
        disp_bits=16,
        sethi_bits=21,
        has_delayed_branch=False,
        branch_regs=branch_regs,
        br_pc=0,
        br_link=link,
        br_callee_saved=callee_saved,
        br_scratch=scratch,
    )
