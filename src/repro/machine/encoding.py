"""Bit-level instruction encodings (Figures 10 and 11).

Both machines use 32-bit fixed-length instructions.  The baseline machine
uses SPARC-flavoured formats (Figure 10); the branch-register machine's
formats (Figure 11) devote a 3-bit ``br`` field in *every* instruction to
the branch-register specifier and widen register fields relative to the
16-register files, which is why its immediate fields are narrower
("smaller range of available constants in some instructions", Section 7).

The emulators execute instruction objects directly; these encoders are the
*format checkers*: every instruction a code generator emits must encode,
which enforces the register-count and immediate-range claims of the paper
bit-for-bit.  ``decode`` reverses ``encode`` field-exactly, and the round
trip is property-tested.

Layouts (most-significant field first):

Baseline (Figure 10)::

    branch     [op:6][cond:3][i:1][disp:22]            (bcc, jmp, call)
    sethi      [op:6][rd:5][imm21:21]
    compute    [op:6][rd:5][rs1:5][i:1][imm13:13]      (i=0)
    compute    [op:6][rd:5][rs1:5][i:1][pad:10][rs2:5] (i=1)

Branch-register machine (Figure 11)::

    bta        [op:6][bd:3][disp16:16][pad:4][br:3]
    cmpset     [op:6][cond:3][rs1:4][i:1][imm10/rs2][btrue:3][br:3]
    sethi      [op:6][rd:4][imm19:19][br:3]
    compute    [op:6][rd:4][rs1:4][i:1][imm10:10][pad:4][br:3]   (i=0)
    compute    [op:6][rd:4][rs1:4][i:1][pad:10][rs2:4][br:3]     (i=1)
"""

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.rtl.instr import CONDS
from repro.rtl.operand import Imm, Reg

# Opcode numbering shared by both machines where the mnemonic matches.
OPCODES = {
    "noop": 0, "add": 1, "sub": 2, "mul": 3, "div": 4, "rem": 5,
    "and": 6, "or": 7, "xor": 8, "shl": 9, "shr": 10,
    "neg": 11, "not": 12, "mov": 13, "li": 14, "sethi": 15, "addlo": 16,
    "fadd": 17, "fsub": 18, "fmul": 19, "fdiv": 20, "fneg": 21, "fmov": 22,
    "cvtif": 23, "cvtfi": 24,
    "lw": 25, "lb": 26, "lf": 27, "sw": 28, "sb": 29, "sf": 30,
    "trap": 31, "halt": 32,
    # baseline-only
    "cmp": 33, "fcmp": 34, "bcc": 35, "fbcc": 36, "jmp": 37, "call": 38,
    "ijmp": 39, "retrt": 40, "mfrt": 41, "mtrt": 42,
    # branch-register-machine-only
    "bta": 43, "btalo": 44, "cmpset": 45, "fcmpset": 46, "bmov": 47,
    "bld": 48, "bst": 49,
}

MNEMONICS = {number: name for name, number in OPCODES.items()}

COND_CODES = {name: i for i, name in enumerate(CONDS)}


def _check(value, bits, what, signed=False):
    if signed:
        half = 1 << (bits - 1)
        if not (-half <= value < half):
            raise EncodingError(
                "%s=%d does not fit %d signed bits" % (what, value, bits)
            )
        return value & ((1 << bits) - 1)
    if not (0 <= value < (1 << bits)):
        raise EncodingError("%s=%d does not fit %d bits" % (what, value, bits))
    return value


@dataclass(frozen=True)
class Field:
    name: str
    bits: int
    signed: bool = False


class Format:
    """A sequence of fields packing to exactly 32 bits."""

    def __init__(self, name, fields):
        self.name = name
        self.fields = fields
        total = sum(f.bits for f in fields)
        if total != 32:
            raise ValueError("format %s is %d bits" % (name, total))

    def pack(self, **values):
        word = 0
        for field in self.fields:
            value = values.get(field.name, 0)
            encoded = _check(value, field.bits, "%s.%s" % (self.name, field.name),
                             signed=field.signed)
            word = (word << field.bits) | encoded
        return word

    def unpack(self, word):
        out = {}
        shift = 32
        for field in self.fields:
            shift -= field.bits
            raw = (word >> shift) & ((1 << field.bits) - 1)
            if field.signed and raw >= (1 << (field.bits - 1)):
                raw -= 1 << field.bits
            out[field.name] = raw
        return out


# ---- baseline formats (Figure 10) ----------------------------------------

BASE_BRANCH = Format("base-branch", [
    Field("op", 6), Field("cond", 3), Field("i", 1), Field("disp", 22, True),
])
BASE_SETHI = Format("base-sethi", [
    Field("op", 6), Field("rd", 5), Field("imm", 21, True),
])
BASE_COMPUTE_IMM = Format("base-compute-imm", [
    Field("op", 6), Field("rd", 5), Field("rs1", 5), Field("i", 1),
    Field("imm", 13, True), Field("pad", 2),
])
BASE_COMPUTE_REG = Format("base-compute-reg", [
    Field("op", 6), Field("rd", 5), Field("rs1", 5), Field("i", 1),
    Field("pad", 10), Field("rs2", 5),
])

# ---- branch-register formats (Figure 11) -----------------------------------

BR_BTA = Format("br-bta", [
    Field("op", 6), Field("bd", 3), Field("disp", 16, True),
    Field("pad", 4), Field("br", 3),
])
BR_CMPSET = Format("br-cmpset", [
    Field("op", 6), Field("cond", 3), Field("rs1", 4), Field("i", 1),
    Field("imm", 10, True), Field("pad", 2), Field("btrue", 3), Field("br", 3),
])
BR_SETHI = Format("br-sethi", [
    Field("op", 6), Field("rd", 4), Field("imm", 19, True), Field("br", 3),
])
BR_COMPUTE_IMM = Format("br-compute-imm", [
    Field("op", 6), Field("rd", 4), Field("rs1", 4), Field("i", 1),
    Field("imm", 10, True), Field("pad", 4), Field("br", 3),
])
BR_COMPUTE_REG = Format("br-compute-reg", [
    Field("op", 6), Field("rd", 4), Field("rs1", 4), Field("i", 1),
    Field("pad", 10), Field("rs2", 4), Field("br", 3),
])

_BASE_BRANCH_OPS = ("bcc", "fbcc", "jmp", "call", "retrt", "ijmp")


def _reg_index(op, limit, what):
    if not isinstance(op, Reg):
        raise EncodingError("%s is not a register: %r" % (what, op))
    if op.index >= limit:
        raise EncodingError("%s out of range: %r (limit %d)" % (what, op, limit))
    return op.index


def _src_fields(ins, reg_limit, imm_format, reg_format, spec_word, extra):
    """Encode a compute-style instruction with 0-2 sources."""
    values = dict(extra)
    values["op"] = OPCODES[ins.op]
    if ins.dst is not None:
        values["rd"] = _reg_index(ins.dst, reg_limit, "rd")
    srcs = [s for s in ins.srcs]
    fmt = imm_format
    if srcs:
        first = srcs[0]
        if isinstance(first, Reg):
            values["rs1"] = _reg_index(first, reg_limit, "rs1")
        elif isinstance(first, Imm):
            # li-style: single immediate source
            values["i"] = 1 if False else 0
            values["imm"] = first.value
            return fmt.pack(**values), fmt
    if len(srcs) > 1:
        second = srcs[1]
        if isinstance(second, Imm):
            values["i"] = 0
            values["imm"] = second.value
            fmt = imm_format
        else:
            values["i"] = 1
            values["rs2"] = _reg_index(second, reg_limit, "rs2")
            fmt = reg_format
    if len(srcs) > 2:
        third = srcs[2]
        if isinstance(third, Imm):
            values["imm"] = third.value
            if fmt is reg_format:
                raise EncodingError("three-source with register offset")
    return fmt.pack(**values), fmt


class BaselineEncoder:
    """Encodes/validates baseline-machine instructions (Figure 10)."""

    REGS = 32

    def __init__(self, spec=None):
        from repro.machine.spec import baseline_spec

        self.spec = spec or baseline_spec()

    def encode(self, ins, disp_words=0):
        """Encode one MInstr; ``disp_words`` is the signed word displacement
        for control transfers (labels resolve at assembly)."""
        op = ins.op
        if op in _BASE_BRANCH_OPS:
            cond = COND_CODES.get(ins.cond, 0)
            i = 1 if op in ("ijmp", "retrt") else 0
            return BASE_BRANCH.pack(
                op=OPCODES[op], cond=cond, i=i,
                disp=_limit_disp(disp_words, 22),
            )
        if op == "sethi":
            value = _hi_part(ins, self.spec)
            return BASE_SETHI.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.dst, self.REGS, "rd"),
                imm=value,
            )
        if op in ("noop", "halt", "trap", "retrt"):
            return BASE_COMPUTE_IMM.pack(op=OPCODES[op])
        if op == "addlo":
            return BASE_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.dst, self.REGS, "rd"),
                rs1=_reg_index(ins.srcs[0], self.REGS, "rs1"),
                imm=_lo_part(ins, self.spec),
            )
        if op in ("sw", "sb", "sf"):
            # Stores place the value register in the rd field.
            return BASE_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.srcs[0], self.REGS, "rs-value"),
                rs1=_reg_index(ins.srcs[1], self.REGS, "rs-base"),
                imm=ins.srcs[2].value,
            )
        word, _fmt = _src_fields(
            ins, self.REGS, BASE_COMPUTE_IMM, BASE_COMPUTE_REG, 32, {}
        )
        return word

    def decode(self, word):
        """Decode back to (mnemonic, fields)."""
        op = MNEMONICS[(word >> 26) & 0x3F]
        if op in _BASE_BRANCH_OPS:
            return op, BASE_BRANCH.unpack(word)
        if op == "sethi":
            return op, BASE_SETHI.unpack(word)
        fields = BASE_COMPUTE_IMM.unpack(word)
        if fields["i"]:
            return op, BASE_COMPUTE_REG.unpack(word)
        return op, fields


class BranchRegEncoder:
    """Encodes/validates branch-register-machine instructions (Fig. 11)."""

    REGS = 16

    def __init__(self, spec=None):
        from repro.machine.spec import branchreg_spec

        self.spec = spec or branchreg_spec()
        self.bregs = self.spec.branch_regs

    def _breg(self, index, what="breg"):
        bits_limit = 8  # 3-bit field
        if index >= max(self.bregs, bits_limit) or index >= bits_limit:
            raise EncodingError("%s=%d exceeds the 3-bit field" % (what, index))
        return index

    def encode(self, ins, disp_words=0):
        op = ins.op
        br = self._breg(ins.br, "br")
        if op == "bta":
            return BR_BTA.pack(
                op=OPCODES[op],
                bd=self._breg(ins.dst.index, "bd"),
                disp=_limit_disp(disp_words, 16),
                br=br,
            )
        if op in ("cmpset", "fcmpset"):
            values = {
                "op": OPCODES[op],
                "cond": COND_CODES[ins.cond],
                "rs1": _reg_index(ins.srcs[0], self.REGS, "rs1"),
                "btrue": self._breg(ins.btrue, "btrue"),
                "br": br,
            }
            second = ins.srcs[1]
            if isinstance(second, Imm):
                values["i"] = 0
                values["imm"] = second.value
            else:
                values["i"] = 1
                values["imm"] = _reg_index(second, self.REGS, "rs2")
            return BR_CMPSET.pack(**values)
        if op == "sethi":
            return BR_SETHI.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.dst, self.REGS, "rd"),
                imm=_hi_part(ins, self.spec),
                br=br,
            )
        if op == "btalo":
            return BR_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=self._breg(ins.dst.index, "bd"),
                rs1=_reg_index(ins.srcs[0], self.REGS, "rs1"),
                imm=_lo_part(ins, self.spec),
                br=br,
            )
        if op == "bmov":
            return BR_COMPUTE_REG.pack(
                op=OPCODES[op],
                rd=self._breg(ins.dst.index, "bd"),
                rs2=self._breg(ins.srcs[0].index, "bs"),
                i=1,
                br=br,
            )
        if op in ("bld", "bst"):
            if op == "bld":
                bd = self._breg(ins.dst.index, "bd")
                base, offset = ins.srcs[0], ins.srcs[1]
            else:
                bd = self._breg(ins.srcs[0].index, "bs")
                base, offset = ins.srcs[1], ins.srcs[2]
            return BR_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=bd,
                rs1=_reg_index(base, self.REGS, "rs1"),
                imm=offset.value,
                br=br,
            )
        if op in ("noop", "halt", "trap"):
            return BR_COMPUTE_IMM.pack(op=OPCODES[op], br=br)
        if op == "addlo":
            return BR_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.dst, self.REGS, "rd"),
                rs1=_reg_index(ins.srcs[0], self.REGS, "rs1"),
                imm=_lo_part(ins, self.spec),
                br=br,
            )
        if op in ("sw", "sb", "sf"):
            return BR_COMPUTE_IMM.pack(
                op=OPCODES[op],
                rd=_reg_index(ins.srcs[0], self.REGS, "rs-value"),
                rs1=_reg_index(ins.srcs[1], self.REGS, "rs-base"),
                imm=ins.srcs[2].value,
                br=br,
            )
        word, _fmt = _src_fields(
            ins, self.REGS, BR_COMPUTE_IMM, BR_COMPUTE_REG, 32, {"br": br}
        )
        return word

    def decode(self, word):
        op = MNEMONICS[(word >> 26) & 0x3F]
        if op == "bta":
            return op, BR_BTA.unpack(word)
        if op in ("cmpset", "fcmpset"):
            return op, BR_CMPSET.unpack(word)
        if op == "sethi":
            return op, BR_SETHI.unpack(word)
        fields = BR_COMPUTE_IMM.unpack(word)
        if fields["i"]:
            return op, BR_COMPUTE_REG.unpack(word)
        return op, fields


def _limit_disp(disp_words, bits):
    half = 1 << (bits - 1)
    if not (-half <= disp_words < half):
        raise EncodingError("displacement %d exceeds %d bits" % (disp_words, bits))
    return disp_words


def _hi_part(ins, spec):
    """The sethi immediate: the constant's upper bits."""
    value = ins.srcs[0]
    if isinstance(value, Imm):
        return (value.value & 0xFFFFFFFF) >> (spec.imm_bits - 1)
    return 0  # symbolic (relocated at link time); field range trivially ok


def _lo_part(ins, spec):
    value = ins.srcs[-1] if not isinstance(ins.srcs[-1], Reg) else None
    if isinstance(value, Imm):
        return value.value & ((1 << (spec.imm_bits - 1)) - 1)
    return 0


def validate_program(mprog):
    """Encode every instruction of a MachineProgram; raises EncodingError
    on any format violation.  Returns the number of words encoded."""
    if mprog.spec.name == "baseline":
        encoder = BaselineEncoder(mprog.spec)
    else:
        encoder = BranchRegEncoder(mprog.spec)
    count = 0
    for ins in mprog.all_instrs():
        if ins.is_label():
            continue
        encoder.encode(ins)
        count += 1
    return count
