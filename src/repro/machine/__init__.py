"""Machine specifications and instruction encodings for both machines."""

from repro.machine.spec import MachineSpec, baseline_spec, branchreg_spec

__all__ = ["MachineSpec", "baseline_spec", "branchreg_spec"]
