"""Table I reproduction: dynamic measurements from the two machines.

Also computes the surrounding Section 7 claims:

* ~14% of the baseline machine's instructions are transfers of control;
* the branch-register machine executes fewer instructions but slightly
  more data references, with a large saved-instructions :
  added-references ratio (the paper reports 10:1);
* the ratio of transfers executed to branch-target-address calculations
  executed exceeds 2:1 (hoisting works);
* a sizeable fraction of the baseline's delay-slot noops is replaced by
  target-address calculations (the paper reports 36%).
"""

from repro.ease.report import per_program_table, table1_text
from repro.harness.runner import run_suite, suite_summary


def run_table1(subset=None, limit=None, jobs=None, engine=None,
               supervise=None, max_attempts=None, checkpoint=None,
               resume=False):
    """Run the experiment; returns a result dict (see keys below).
    ``jobs``, ``engine``, and the supervision/checkpoint knobs forward
    to :func:`run_suite` (see ``docs/ROBUSTNESS.md``)."""
    kwargs = {} if limit is None else {"limit": limit}
    pairs = run_suite(
        subset=subset, jobs=jobs, engine=engine, supervise=supervise,
        max_attempts=max_attempts, checkpoint=checkpoint, resume=resume,
        **kwargs
    )
    baseline, branchreg = suite_summary(pairs)
    saved = baseline.instructions - branchreg.instructions
    added_refs = branchreg.data_refs - baseline.data_refs
    result = {
        "pairs": pairs,
        "baseline": baseline,
        "branchreg": branchreg,
        "instr_change": branchreg.instructions / baseline.instructions - 1.0,
        "refs_change": branchreg.data_refs / baseline.data_refs - 1.0,
        "saved_to_added_ratio": (saved / added_refs) if added_refs > 0 else float("inf"),
        "transfer_fraction": baseline.transfer_fraction(),
        "uncond_transfers": baseline.uncond_transfers,
        "cond_transfers": baseline.cond_transfers,
        "transfers_per_calc": (
            branchreg.transfers / branchreg.bta_calcs
            if branchreg.bta_calcs
            else float("inf")
        ),
        "baseline_noops": baseline.noops,
        "branchreg_noops": branchreg.noops,
        "noop_reduction": (
            1.0 - branchreg.noops / baseline.noops if baseline.noops else 0.0
        ),
        "bta_carriers": branchreg.bta_carriers,
    }
    result["text"] = "\n\n".join(
        [
            table1_text(baseline, branchreg),
            per_program_table(pairs),
            _claims_text(result),
        ]
    )
    return result


def _claims_text(result):
    lines = [
        "Section 7 claims:",
        "  transfers of control on baseline: %.1f%% of instructions (paper: ~14%%)"
        % (100.0 * result["transfer_fraction"]),
        "  saved-instructions : added-data-references = %.1f : 1 (paper: 10 : 1)"
        % result["saved_to_added_ratio"],
        "  transfers executed : target calcs executed = %.2f : 1 (paper: > 2 : 1)"
        % result["transfers_per_calc"],
        "  noops executed: baseline %d -> branch-register %d (%.0f%% fewer; paper"
        % (
            result["baseline_noops"],
            result["branchreg_noops"],
            100.0 * result["noop_reduction"],
        )
        + " replaced 36% of delay-slot noops)",
        "  transfers carried by a target-address calc: %d" % result["bta_carriers"],
    ]
    return "\n".join(lines)


def main():
    print(run_table1()["text"])


if __name__ == "__main__":
    main()
