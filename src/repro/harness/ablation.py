"""Section 9 ablations.

The paper's future work asks how results change with "the available number
of these registers" (branch registers) and credits three compiler
mechanisms for the wins: loop hoisting of target calculations (Section 5),
useful-instruction carriers, and noop-to-calculation replacement.  This
harness sweeps each:

* ``sweep_branch_registers`` -- vary the number of branch registers;
* ``sweep_optimizations``   -- toggle hoisting / carrier filling / noop
  replacement independently.
"""

from repro.harness.runner import FAST_SUBSET, run_suite, suite_summary
from repro.machine.spec import branchreg_spec


def sweep_branch_registers(counts=(4, 6, 8, 12), subset=FAST_SUBSET, limit=None):
    """Returns rows of (branch_regs, instructions, data_refs, change vs
    baseline instructions)."""
    kwargs = {} if limit is None else {"limit": limit}
    rows = []
    for count in counts:
        options = {"spec": branchreg_spec(count)}
        pairs = run_suite(subset=subset, branchreg_options=options, **kwargs)
        baseline, branchreg = suite_summary(pairs)
        rows.append(
            {
                "branch_regs": count,
                "baseline_instr": baseline.instructions,
                "branchreg_instr": branchreg.instructions,
                "instr_change": branchreg.instructions / baseline.instructions - 1.0,
                "refs_change": branchreg.data_refs / baseline.data_refs - 1.0,
                "bta_calcs": branchreg.bta_calcs,
            }
        )
    return rows


def sweep_optimizations(subset=FAST_SUBSET, limit=None):
    """Toggle the three Section 5 mechanisms; returns rows keyed by the
    configuration name."""
    kwargs = {} if limit is None else {"limit": limit}
    configs = [
        ("full", {}),
        ("no-hoisting", {"hoisting": False}),
        ("no-carrier-fill", {"fill_carriers": False}),
        ("no-noop-replace", {"replace_noops": False}),
        (
            "none",
            {"hoisting": False, "fill_carriers": False, "replace_noops": False},
        ),
    ]
    rows = []
    for name, options in configs:
        pairs = run_suite(subset=subset, branchreg_options=options, **kwargs)
        baseline, branchreg = suite_summary(pairs)
        rows.append(
            {
                "config": name,
                "baseline_instr": baseline.instructions,
                "branchreg_instr": branchreg.instructions,
                "instr_change": branchreg.instructions / baseline.instructions - 1.0,
                "noop_carriers": branchreg.noop_carriers,
                "bta_calcs": branchreg.bta_calcs,
            }
        )
    return rows


def ablation_text(reg_rows, opt_rows):
    lines = ["Branch-register count sweep:"]
    lines.append(
        "%8s %14s %14s %9s %9s"
        % ("b-regs", "base instr", "brm instr", "d-instr", "d-refs")
    )
    for row in reg_rows:
        lines.append(
            "%8d %14d %14d %+8.1f%% %+8.1f%%"
            % (
                row["branch_regs"],
                row["baseline_instr"],
                row["branchreg_instr"],
                100.0 * row["instr_change"],
                100.0 * row["refs_change"],
            )
        )
    lines.append("")
    lines.append("Optimization ablation:")
    lines.append(
        "%-16s %14s %9s %12s %10s"
        % ("config", "brm instr", "d-instr", "noop-xfers", "bta-calcs")
    )
    for row in opt_rows:
        lines.append(
            "%-16s %14d %+8.1f%% %12d %10d"
            % (
                row["config"],
                row["branchreg_instr"],
                100.0 * row["instr_change"],
                row["noop_carriers"],
                row["bta_calcs"],
            )
        )
    return "\n".join(lines)


def main():
    print(ablation_text(sweep_branch_registers(), sweep_optimizations()))


if __name__ == "__main__":
    main()
