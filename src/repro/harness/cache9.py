"""Sections 8-9: instruction-cache study.

The paper proposes prefetching the branch-target line whenever a branch
register is assigned (Section 8) and lists the open cache-organisation
questions as future work (Section 9): associativity (at least two so the
prefetched line does not displace the current line), line size, total
size, and the pollution cost of unused prefetches.  This harness makes
those experiments concrete: it runs a representative subset of workloads
on both machines across cache configurations and reports stall cycles,
miss rates, prefetch coverage and pollution.
"""

from dataclasses import dataclass

from repro.cache.icache import PrefetchICache
from repro.ease.environment import compile_for_machine
from repro.ease.report import cache_table
from repro.codegen.branchreg_gen import generate_branchreg
from repro.emu.baseline_emu import run_baseline
from repro.emu.branchreg_emu import run_branchreg
from repro.emu.loader import Image
from repro.workloads import workload

DEFAULT_CONFIGS = (
    # (words, line_words, assoc)
    (64, 4, 1),
    (64, 4, 2),
    (128, 4, 2),
    (128, 8, 2),
    (256, 4, 2),
)


@dataclass
class CacheRun:
    config: str
    machine: str
    instructions: int
    stalls: int
    stats: object  # ICacheStats

    @property
    def cycles(self):
        return self.instructions + self.stalls


def run_cache_study(
    subset=("wc", "grep", "sort"),
    configs=DEFAULT_CONFIGS,
    miss_penalty=8,
    limit=5_000_000,
):
    """Run the cache sweep; returns {"runs": [CacheRun], "text": table}."""
    runs = []
    images = {}
    for name in subset:
        w = workload(name)
        images[name] = (
            compile_for_machine(w.source, "baseline"),
            compile_for_machine(w.source, "branchreg"),
            w.stdin_bytes(),
        )
    for words, line_words, assoc in configs:
        config = "%dw/%dw-line/%d-way" % (words, line_words, assoc)
        for machine in ("baseline", "branchreg", "branchreg-nopf"):
            total_instr = 0
            total_stalls = 0
            merged = None
            for name in subset:
                base_img, br_img, stdin = images[name]
                cache = PrefetchICache(
                    words=words,
                    line_words=line_words,
                    assoc=assoc,
                    miss_penalty=miss_penalty,
                    prefetch_enabled=(machine == "branchreg"),
                )
                if machine == "baseline":
                    stats = run_baseline(
                        base_img.reset(), stdin=stdin, limit=limit, icache=cache
                    )
                else:
                    stats = run_branchreg(
                        br_img.reset(), stdin=stdin, limit=limit, icache=cache
                    )
                total_instr += stats.instructions
                total_stalls += stats.cache_stalls
                merged = _merge_cache_stats(merged, cache.stats)
            runs.append(
                CacheRun(
                    config=config,
                    machine=machine,
                    instructions=total_instr,
                    stalls=total_stalls,
                    stats=merged,
                )
            )
    rows = [
        {
            "config": run.config,
            "machine": run.machine,
            "stalls": run.stalls,
            "miss_rate": run.stats.miss_rate,
            "covered": run.stats.fully_covered + run.stats.partial_covered,
            "pollution": run.stats.unused_prefetches,
        }
        for run in runs
    ]
    return {"runs": runs, "text": cache_table(rows)}


def run_alignment_study(
    subset=("wc", "grep"), words=64, line_words=4, assoc=2,
    miss_penalty=8, limit=5_000_000,
):
    """Section 9: align function entries on cache-line boundaries.

    Returns stall totals for the branch-register machine with and without
    line-aligned function starts.
    """
    results = {}
    for aligned in (False, True):
        total_stalls = 0
        for name in subset:
            w = workload(name)
            program = compile_to_ir_cached(w.source)
            image = Image(
                generate_branchreg(program), align_functions=line_words if aligned else 1
            )
            cache = PrefetchICache(
                words=words, line_words=line_words, assoc=assoc,
                miss_penalty=miss_penalty,
            )
            stats = run_branchreg(
                image, stdin=w.stdin_bytes(), limit=limit, icache=cache
            )
            total_stalls += stats.cache_stalls
        results["aligned" if aligned else "unaligned"] = total_stalls
    return results


def compile_to_ir_cached(source):
    # Code generation mutates the IR, so each call compiles fresh.
    from repro.lang.frontend import compile_to_ir

    return compile_to_ir(source)


def _merge_cache_stats(a, b):
    if a is None:
        return b
    for field_name in vars(b):
        setattr(a, field_name, getattr(a, field_name) + getattr(b, field_name))
    return a


def main():
    print(run_cache_study()["text"])


if __name__ == "__main__":
    main()
