"""Section 7 cycle estimates.

Reproduces the paper's pipeline arithmetic: with a three-stage pipeline the
baseline machine pays one delay cycle per transfer (test set: ~122.82M
cycles in the paper), while the branch-register machine pays only for
transfers whose target calculation landed too close to the transfer (the
paper estimates 13.86% of transfers delayed, for 10.6% fewer cycles, and
12.8% fewer with a four-stage pipeline).
"""

from repro.ease.report import cycles_table
from repro.harness.runner import run_suite, suite_summary
from repro.pipeline.model import estimate_all


def run_cycle_estimate(
    stages_list=(3, 4, 5), subset=None, limit=None, jobs=None, engine=None
):
    """Returns {"estimates": [per-stage dicts], "text": table}.
    ``jobs`` and ``engine`` forward to :func:`run_suite`."""
    kwargs = {} if limit is None else {"limit": limit}
    pairs = run_suite(subset=subset, jobs=jobs, engine=engine, **kwargs)
    baseline, branchreg = suite_summary(pairs)
    estimates = [
        estimate_all(baseline, branchreg, stages=stages) for stages in stages_list
    ]
    return {
        "baseline": baseline,
        "branchreg": branchreg,
        "estimates": estimates,
        "text": cycles_table(estimates),
    }


def main():
    print(run_cycle_estimate()["text"])


if __name__ == "__main__":
    main()
