"""Golden-trace conformance: the gate that lets the fast core exist.

The predecoded run loop (:mod:`repro.emu.fastcore`) is only trustworthy
because this module can prove, mechanically, that it is *bit-identical*
to the reference interpreter.  Two independent checks back that claim:

* **Golden digests** -- for every Appendix I workload on both machines, a
  reference-engine run is distilled into a JSON digest: exit state,
  SHA-256 of the program output and of the final data segment, the full
  RunStats counters, and a first/last-``WINDOW`` window of the executed
  instruction trace.  The digests live in ``tests/golden/`` and are
  checked (never silently regenerated) by ``repro golden --check`` and
  ``tests/test_conformance.py``.  Any behavioural change to a compiler,
  emulator, or workload shows up as a digest diff that must be reviewed
  and re-recorded with ``repro golden --update``.

* **Cross-engine check** -- :func:`crosscheck_engines` runs the same
  image under ``engine="reference"`` and then under every compiled
  engine (``"fast"`` and ``"trace"``) and compares *all* observable
  state pairwise against the reference: RunStats (minus the identity
  and diagnostic fields), the data segment, both register files, the
  final pc/halt flag, and the machine-specific control state
  (``npc``/``cc``/``rt`` on baseline; ``b``/``b_set_at``/``cmpset_at``
  on branch-register).  Any difference raises
  :class:`~repro.errors.EngineDivergence` naming the engine that
  diverged.  ``check_goldens`` runs the same pairwise comparison for
  every checked workload, so ``repro golden --check`` is a
  three-engine gate.

The trace windows are produced by a *step-driven* reference run that
mirrors ``BaseEmulator._run_plain`` exactly (same limit check, same
stamped error), so a digest mismatch localises to the first/last
diverging instruction rather than just "some counter is off".
"""

import hashlib
import json
import os
from collections import deque

from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.emu.memory import DATA_BASE
from repro.errors import EngineDivergence, RuntimeLimitExceeded
from repro.obs import log
from repro.rtl.printer import minstr_text

GOLDEN_SCHEMA = "repro.golden/1"
#: Same budget the suite runner uses; golden runs must retire the whole
#: workload, not a truncated prefix.
CONFORMANCE_LIMIT = 20_000_000
#: Trace-window length: the first and last WINDOW executed instructions
#: are recorded verbatim in each digest.
WINDOW = 32
MACHINES = ("baseline", "branchreg")
#: Compiled engines cross-checked against the reference interpreter.
COMPILED_ENGINES = ("fast", "trace")

_EMULATORS = {"baseline": BaselineEmulator, "branchreg": BranchRegEmulator}

#: Default location of the recorded corpus: ``tests/golden`` next to the
#: package's ``src`` tree (i.e. the repository checkout).
DEFAULT_GOLDEN_DIR = os.path.join(
    os.path.dirname(  # repo root
        os.path.dirname(  # src
            os.path.dirname(  # src/repro
                os.path.dirname(os.path.abspath(__file__))  # src/repro/harness
            )
        )
    ),
    "tests",
    "golden",
)


def _sha256(data):
    return hashlib.sha256(bytes(data)).hexdigest()


def _stats_digest(stats):
    """RunStats as a JSON-stable dict, minus the identity fields
    (``engine``/``engine_fallback``) and the trace-engine diagnostics
    (``RunStats.DIAGNOSTIC_FIELDS``): a digest describes behaviour, not
    which loop measured it or how that loop organised the work."""
    from repro.obs.manifest import stats_to_dict

    digest = stats_to_dict(stats)
    digest.pop("engine", None)
    digest.pop("engine_fallback", None)
    for key in getattr(stats, "DIAGNOSTIC_FIELDS", ()):
        digest.pop(key, None)
    return digest


def _trace_line(emu):
    return "0x%04x %s" % (
        emu.pc, minstr_text(emu.image.instruction_at(emu.pc))
    )


def _traced_reference_run(emu, window=WINDOW):
    """Step-drive a reference-engine emulator to completion, recording
    the first and last ``window`` executed instructions.

    Mirrors ``BaseEmulator._run_plain`` exactly -- same pre-step limit
    check, same stamped :class:`RuntimeLimitExceeded` -- so the recorded
    trace is the reference instruction stream, not an approximation.
    Returns ``(stats, first_window, last_window)``.
    """
    first = []
    last = deque(maxlen=window)
    while not emu.halted:
        if emu.icount >= emu.limit:
            raise emu._limit_error()
        line = _trace_line(emu)
        if len(first) < window:
            first.append(line)
        last.append(line)
        emu.step()
    emu.stats.engine = "reference"
    stats = emu._finalize()
    return stats, first, list(last)


def _fresh_emulator(image, machine, stdin, limit, name, engine, observer=None):
    image.reset()
    emu = _EMULATORS[machine](
        image, stdin=stdin, limit=limit, engine=engine, observer=observer
    )
    emu.stats.program = name
    return emu


def machine_digest(
    source, machine, stdin=b"", name="", limit=CONFORMANCE_LIMIT,
    options=None,
):
    """Golden digest of one program on one machine (reference engine).

    Everything a behavioural regression could perturb is either included
    verbatim (exit state, counters, trace windows) or content-addressed
    (output and data-segment SHA-256), so the digest is small enough to
    commit yet strong enough to catch a single flipped byte.
    """
    from repro.ease.environment import compile_for_machine

    image = compile_for_machine(
        source, machine, **(dict(options) if options else {})
    )
    emu = _fresh_emulator(image, machine, stdin, limit, name, "reference")
    stats, first, last = _traced_reference_run(emu)
    data = image.memory.read_bytes(DATA_BASE, image.data_end - DATA_BASE)
    return {
        "machine": machine,
        "limit": limit,
        "exit_code": stats.exit_code,
        "instructions": stats.instructions,
        "final_pc": emu.pc,
        "output_len": len(stats.output),
        "output_sha256": _sha256(stats.output),
        "data_len": len(data),
        "data_sha256": _sha256(data),
        "stats": _stats_digest(stats),
        "trace_first": first,
        "trace_last": last,
    }


def golden_digest(wl, limit=CONFORMANCE_LIMIT):
    """Full golden record for one workload: both machines' digests."""
    return {
        "schema": GOLDEN_SCHEMA,
        "workload": wl.name,
        "machines": {
            machine: machine_digest(
                wl.source, machine, stdin=wl.stdin_bytes(), name=wl.name,
                limit=limit,
            )
            for machine in MACHINES
        },
    }


def _diff_digests(recorded, fresh, prefix=""):
    """Flat list of dotted keys where two digest dicts disagree."""
    diffs = []
    for key in sorted(set(recorded) | set(fresh)):
        path = prefix + key
        a, b = recorded.get(key), fresh.get(key)
        if isinstance(a, dict) and isinstance(b, dict):
            diffs.extend(_diff_digests(a, b, path + "."))
        elif a != b:
            diffs.append(path)
    return diffs


def golden_path(golden_dir, name):
    return os.path.join(golden_dir, "%s.json" % name)


def check_goldens(
    golden_dir=None, names=None, update=False, limit=CONFORMANCE_LIMIT,
    engines=COMPILED_ENGINES,
):
    """Check (or re-record) the golden corpus for the named workloads.

    With ``update=False`` every workload's fresh reference digest is
    compared against the recorded one -- missing or mismatching records
    are reported, never rewritten -- and then every engine in
    ``engines`` is run over the same workload on both machines and
    pairwise-compared against the reference run
    (:func:`crosscheck_engines`), so one golden check gates all three
    run loops.  With ``update=True`` the fresh digests are written out
    (sorted keys, stable formatting) so diffs review cleanly.

    Returns a report dict::

        {"checked": [...], "updated": [...], "engines": [...],
         "failures": [{"workload", "reason", "diffs"}, ...]}
    """
    from repro.harness.runner import resolve_workloads

    golden_dir = golden_dir or DEFAULT_GOLDEN_DIR
    selected = resolve_workloads(tuple(names) if names is not None else None)
    report = {
        "checked": [], "updated": [],
        "engines": ["reference"] + list(engines), "failures": [],
    }
    for wl in selected:
        fresh = golden_digest(wl, limit=limit)
        path = golden_path(golden_dir, wl.name)
        if update:
            os.makedirs(golden_dir, exist_ok=True)
            with open(path, "w") as handle:
                json.dump(fresh, handle, indent=1, sort_keys=True)
                handle.write("\n")
            report["updated"].append(wl.name)
            log.info("golden: recorded %s", wl.name)
            continue
        if not os.path.exists(path):
            report["failures"].append(
                {"workload": wl.name, "reason": "missing", "diffs": []}
            )
            continue
        with open(path) as handle:
            recorded = json.load(handle)
        diffs = _diff_digests(recorded, fresh)
        if diffs:
            report["failures"].append(
                {"workload": wl.name, "reason": "mismatch", "diffs": diffs}
            )
            log.warning(
                "golden: %s diverges from its recorded digest: %s",
                wl.name, ", ".join(diffs[:8]),
            )
            continue
        divergence = _check_workload_engines(wl, limit, engines)
        if divergence is not None:
            report["failures"].append(divergence)
            continue
        report["checked"].append(wl.name)
    return report


def _check_workload_engines(wl, limit, engines):
    """Pairwise-compare every requested engine against the reference on
    both machines; a failure dict on divergence, else None."""
    for machine in MACHINES:
        try:
            crosscheck_engines(
                wl.source, machine, stdin=wl.stdin_bytes(), limit=limit,
                name=wl.name, engines=engines,
            )
        except EngineDivergence as exc:
            log.warning("golden: %s", exc)
            return {
                "workload": wl.name,
                "reason": "engine divergence (%s on %s)"
                          % (exc.engine, machine),
                "diffs": list(exc.mismatches),
            }
    return None


# -- cross-engine equivalence --------------------------------------------------


def _final_state(image, machine, stdin, limit, name, engine, sample_every=None):
    """Run one engine over a (reset) image and capture every observable.

    A run that exhausts the instruction budget is itself an observable:
    the stamped icount/pc pair is recorded and the partial architectural
    state still participates in the comparison.

    ``sample_every`` attaches a sampling observer (with its own isolated
    metrics registry, so the global recorders stay untouched); the
    sample count it accumulated joins the compared state, which is what
    pins the fast core's observed loop to the reference loop's exact
    sampling boundaries.
    """
    observer = None
    if sample_every is not None:
        from repro.obs.emuobs import EmulationObserver
        from repro.obs.metrics import MetricsRegistry

        observer = EmulationObserver(
            sample_every=sample_every, registry=MetricsRegistry()
        )
    emu = _fresh_emulator(
        image, machine, stdin, limit, name, engine, observer=observer
    )
    limit_hit = None
    try:
        emu.run()
    except RuntimeLimitExceeded as exc:
        limit_hit = {"icount": exc.icount, "pc": exc.pc}
    state = {
        "stats": _stats_digest(emu.stats),
        "pc": emu.pc,
        "halted": emu.halted,
        "icount": emu.icount,
        "r": list(emu.r),
        "f": list(emu.f),
        "data": bytes(
            image.memory.read_bytes(DATA_BASE, image.data_end - DATA_BASE)
        ),
        "limit_exceeded": limit_hit,
    }
    if observer is not None:
        state["observer_samples"] = observer.samples
        state["observer_runs"] = observer.runs
    if machine == "baseline":
        state["npc"] = emu.npc
        state["cc"] = emu.cc
        state["rt"] = emu.rt
    else:
        state["b"] = list(emu.b)
        state["b_set_at"] = list(emu.b_set_at)
        state["cmpset_at"] = list(emu.cmpset_at)
    return state, emu


def crosscheck_engines(
    source, machine, stdin=b"", limit=CONFORMANCE_LIMIT, name="",
    options=None, sample_every=None, engines=COMPILED_ENGINES,
):
    """Prove the compiled engines agree with the reference on a program.

    Compiles once, runs the image under the reference loop, then resets
    it and runs it again under each compiled engine in ``engines``
    (``"fast"`` and ``"trace"`` by default), comparing the complete
    observable state of each run pairwise against the reference run.
    Raises :class:`~repro.errors.EngineDivergence` naming the diverging
    engine and every differing channel; otherwise returns a summary
    dict recording, per engine, which loop actually ran and why it fell
    back if it did (e.g. under fault-injection proxies).  The legacy
    top-level ``engine``/``fast_fallback`` keys still describe the
    ``"fast"`` run when it was requested.

    ``sample_every`` runs every engine with a sampling observer
    attached and adds the observer's sample/run counts to the compared
    state -- the cross-engine gate for the compiled observed loops.
    """
    from repro.ease.environment import compile_for_machine

    image = compile_for_machine(
        source, machine, **(dict(options) if options else {})
    )
    ref, _ = _final_state(
        image, machine, stdin, limit, name, "reference",
        sample_every=sample_every,
    )
    summary = {
        "name": name,
        "machine": machine,
        "instructions": ref["icount"],
        "engines": {},
    }
    for engine in engines:
        state, emu = _final_state(
            image, machine, stdin, limit, name, engine,
            sample_every=sample_every,
        )
        mismatches = sorted(
            key for key in ref
            if ref[key] != state[key]
        )
        if mismatches:
            detail = {}
            if "stats" in mismatches:
                detail["stats_keys"] = _diff_digests(
                    ref["stats"], state["stats"]
                )
            for key in mismatches:
                if key not in ("stats", "data"):
                    detail["reference_" + key] = repr(ref[key])
                    detail["%s_%s" % (engine, key)] = repr(state[key])
            raise EngineDivergence(
                "engine %r diverges from reference on %s/%s: %s differ"
                % (engine, name or "program", machine,
                   ", ".join(mismatches)),
                mismatches=mismatches,
                detail=detail,
                engine=engine,
            )
        summary["engines"][engine] = {
            "engine": emu.stats.engine,
            "fallback": emu.stats.engine_fallback or None,
        }
        if engine == "fast":
            summary["engine"] = emu.stats.engine
            summary["fast_fallback"] = emu.fast_fallback
    return summary


def crosscheck_workloads(names=None, limit=CONFORMANCE_LIMIT):
    """Cross-engine check over the workload suite (both machines).

    Returns the list of per-run summary dicts; raises
    :class:`~repro.errors.EngineDivergence` on the first disagreement.
    """
    from repro.harness.runner import resolve_workloads

    results = []
    for wl in resolve_workloads(tuple(names) if names is not None else None):
        for machine in MACHINES:
            log.info("crosscheck: %s on %s", wl.name, machine)
            results.append(
                crosscheck_engines(
                    wl.source, machine, stdin=wl.stdin_bytes(),
                    limit=limit, name=wl.name,
                )
            )
    return results
