"""Experiment drivers: one module per paper table/figure (see DESIGN.md §4)."""

from repro.harness.runner import (
    FAST_SUBSET,
    SuiteResult,
    run_suite,
    suite_summary,
)

__all__ = ["FAST_SUBSET", "SuiteResult", "run_suite", "suite_summary"]
