"""Supervised fault-tolerant suite execution.

:mod:`repro.harness.parallel` assumes a well-behaved world: every worker
process survives, every task terminates, and nothing external kills or
delays anything.  This module is the supervision layer the ROADMAP's
"compile-and-run as a service" farm needs underneath it -- the same
harness fan-out, wrapped in a coordinator that recovers instead of
collapsing:

* **Worker-crash recovery** -- a died/killed pool worker (which
  ``ProcessPoolExecutor`` surfaces as ``BrokenProcessPool`` for *every*
  in-flight future) respawns the pool and reschedules only the lost
  tasks.  Per-task *start markers* (one atomic ``O_APPEND`` line per
  task attempt, written by the worker before it begins) let the
  coordinator distinguish the task that was actually running -- the
  crash suspect, which is charged an attempt -- from tasks that were
  merely queued, which are rescheduled for free.
* **Retry with seeded backoff** -- a transient failure (an exception
  that is *not* a typed :class:`~repro.errors.ReproError`, a worker
  crash, a hang kill) is retried with exponential backoff plus seeded
  jitter up to ``SupervisePolicy.max_attempts``; outcomes are classified
  ``ok`` / ``retried`` / ``quarantined``.  Typed emulator errors are
  deterministic and are never retried: fault-tolerant runs record them,
  other runs surface the registry-earliest one, exactly like the
  unsupervised paths.
* **Quarantine** -- a task that exhausts its attempt budget becomes a
  structured *quarantine record* (shape-compatible with
  :func:`repro.fault.triage.failure_record`, plus ``outcome`` /
  ``attempts`` fields) on ``SuiteResult.failures`` and
  ``SuiteResult.quarantined`` instead of failing the run.
* **Hang kill** -- per-workload deadlines already arm the emulators'
  in-child watchdog; ``SupervisePolicy.task_timeout_s`` additionally
  arms a parent-side watchdog that SIGKILLs the worker whose start
  marker has been running too long (a *true* hang: a stuck syscall, a
  sleep, a compile loop the child watchdog cannot see) and reschedules
  the task through the ordinary crash path.
* **Checkpoint / resume** -- with a
  :class:`~repro.harness.checkpoint.CheckpointJournal` attached, every
  terminal task outcome is durably journaled as it happens and
  journaled tasks are skipped (counted as checkpoint hits) on resume,
  reassembling byte-identical results.

Telemetry: ``harness.retries``, ``harness.worker_crashes``,
``harness.hang_kills``, ``harness.quarantined``, and
``harness.checkpoint{result=hit|write}`` counters flow into the normal
metrics/manifest stack (manifest schema v7 ``supervision`` section).
The chaos harness (:mod:`repro.fault.harness_chaos`, ``repro chaos``)
drives all of these paths deterministically and asserts convergence.
"""

import os
import random
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.errors import SuiteInterrupted
from repro.obs import METRICS, events, log, trace
from repro.obs.spans import RECORDER

#: Coordinator wake-up granularity (seconds): the wait timeout used when
#: there is delayed (backing-off) work or a parent-side hang watchdog.
_TICK_S = 0.05


@dataclass(frozen=True)
class SupervisePolicy:
    """Knobs of the supervision layer.

    ``max_attempts`` is the *total* attempt budget per task across
    transient failures, worker crashes, and hang kills.  Backoff before
    attempt ``n+1`` is ``min(cap, base * 2**(n-1))`` scaled by a seeded
    jitter factor in ``[0.5, 1.5)``, so chaos campaigns are exactly
    reproducible.  ``task_timeout_s`` (None = off) arms the parent-side
    hang watchdog, measured from the moment the worker's start marker
    appears.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0
    task_timeout_s: float = None
    #: A worker crash kills *every* task in flight, so an innocent task
    #: sharing a pool with a crashy one is charged collateral attempts.
    #: Before quarantining a task whose budget was exhausted by crashes,
    #: grant one extra attempt in a dedicated single-worker pool: a
    #: genuinely poison task still crashes alone (and is quarantined
    #: with proof); a collateral victim completes.
    isolation_retry: bool = True

    @classmethod
    def coerce(cls, value):
        """None/False -> None (unsupervised), True -> defaults, a policy
        instance -> itself."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError("supervise= wants None, a bool, or a SupervisePolicy")

    def with_attempts(self, max_attempts):
        if max_attempts is None:
            return self
        return replace(self, max_attempts=max(1, int(max_attempts)))


class _TaskState:
    """Coordinator-side bookkeeping for one (workload, machine-pair) task."""

    __slots__ = (
        "index", "name", "task", "attempts", "outcome", "res", "pair",
        "failure", "error", "record", "started_at", "from_checkpoint",
        "retried", "isolated",
    )

    def __init__(self, index, name, task):
        self.index = index
        self.name = name
        self.task = task
        self.attempts = 0
        self.outcome = None  # None | ok | failure | quarantined | error
        self.res = None      # the final attempt's worker result dict
        self.pair = None
        self.failure = None
        self.error = None
        self.record = None   # quarantine record
        self.started_at = None
        self.from_checkpoint = False
        self.retried = False
        self.isolated = False


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _supervised_task(payload):
    """Worker entry point: stamp a start marker, apply any injected
    chaos action, then run the ordinary parallel-harness task."""
    task, attempt, chaos, start_log = payload
    if start_log:
        line = "%s\t%d\t%d\t%.6f\n" % (task[0], attempt, os.getpid(), time.time())
        fd = os.open(start_log, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))  # O_APPEND: atomic line
        finally:
            os.close(fd)
    if chaos is not None:
        from repro.fault.harness_chaos import apply_chaos

        apply_chaos(chaos)
    from repro.harness.parallel import _run_workload_task

    return _run_workload_task(task)


def _read_start_markers(path):
    """{(workload, attempt): (pid, wall_start)} from the marker log.

    Torn trailing lines (a worker killed mid-write) are skipped.
    """
    markers = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                parts = line.rstrip("\n").split("\t")
                if len(parts) != 4:
                    continue
                try:
                    markers[(parts[0], int(parts[1]))] = (
                        int(parts[2]), float(parts[3])
                    )
                except ValueError:
                    continue
    except OSError:
        pass
    return markers


def _kill_worker_processes(pool):
    """SIGKILL every live worker of ``pool`` (used when reaping after an
    interrupt or shutting a broken pool down hard)."""
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:
            pass


def quarantine_record(name, reason, message, attempts):
    """The structured record a quarantined task leaves behind -- the
    shape of :func:`repro.fault.triage.failure_record` plus supervision
    fields, so ``repro triage`` and the manifest ``failures`` schema
    accept it unchanged."""
    return {
        "workload": name,
        "error": reason,
        "message": message,
        "machine": None,
        "pc": None,
        "icount": None,
        "function": None,
        "line": None,
        "edges": None,
        "outcome": "quarantined",
        "attempts": attempts,
    }


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------

class _Supervisor:
    def __init__(self, states, jobs, policy, journal, fault_plan,
                 interrupt_after):
        self.states = states
        self.jobs = jobs
        self.policy = policy
        self.journal = journal
        self.fault_plan = fault_plan or {}
        self.interrupt_after = interrupt_after
        self.rng = random.Random(policy.seed)
        self.pool = None
        self.inflight = {}   # future -> state
        self.delayed = []    # (ready_monotonic, state)
        self.completed = 0
        self.start_log = None

    # -- scheduling --------------------------------------------------------

    def _chaos_for(self, state):
        actions = self.fault_plan.get(state.name)
        if not actions:
            return None
        index = state.attempts - 1  # attempts was already incremented
        return actions[index] if index < len(actions) else None

    def _submit(self, state, charge=True):
        if charge:
            state.attempts += 1
        payload = (state.task, state.attempts, self._chaos_for(state),
                   self.start_log)
        state.started_at = None
        future = self.pool.submit(_supervised_task, payload)
        self.inflight[future] = state

    def _backoff(self, attempt):
        base = min(
            self.policy.backoff_cap_s,
            self.policy.backoff_base_s * (2 ** max(0, attempt - 1)),
        )
        return base * (0.5 + self.rng.random())

    def _retry_or_quarantine(self, state, reason, message):
        if state.attempts < self.policy.max_attempts:
            state.retried = True
            METRICS.counter("harness.retries", reason=reason).inc()
            delay = self._backoff(state.attempts)
            log.warning(
                "workload %s attempt %d failed (%s); retrying in %.2fs",
                state.name, state.attempts, reason, delay,
            )
            self.delayed.append((time.monotonic() + delay, state))
            return
        if (
            reason in ("WorkerCrash", "HangKill")
            and self.policy.isolation_retry
            and not state.isolated
        ):
            # Budget exhausted by crashes -- which kill every co-resident
            # task, so some of those attempts may be collateral charges.
            # One final attempt alone in a single-worker pool settles it.
            self._isolation_attempt(state)
            return
        self._quarantine(state, reason, message)

    def _quarantine(self, state, reason, message):
        METRICS.counter("harness.quarantined").inc()
        log.error(
            "workload %s quarantined after %d attempt(s): %s",
            state.name, state.attempts, message,
        )
        state.outcome = "quarantined"
        state.record = quarantine_record(
            state.name, reason, message, state.attempts
        )
        self.completed += 1
        if self.journal is not None:
            self.journal.record(
                state.name, "quarantined", state.record, state.attempts
            )

    def _isolation_attempt(self, state):
        """The last-chance solo attempt before a crash quarantine.

        Runs synchronously in a dedicated one-worker pool so nothing
        else can crash it (and it can crash nothing else); the main
        pool's workers keep computing in the background meanwhile.
        """
        state.isolated = True
        state.attempts += 1
        METRICS.counter("harness.retries", reason="IsolationRetry").inc()
        log.warning(
            "workload %s exhausted its attempt budget on worker crashes; "
            "final isolation retry (attempt %d)", state.name, state.attempts,
        )
        payload = (state.task, state.attempts, self._chaos_for(state),
                   self.start_log)
        solo = ProcessPoolExecutor(max_workers=1)
        try:
            future = solo.submit(_supervised_task, payload)
            try:
                res = future.result(timeout=self.policy.task_timeout_s)
            except BrokenProcessPool:
                self._quarantine(
                    state, "WorkerCrash",
                    "worker died running %s even in isolation (attempt %d)"
                    % (state.name, state.attempts),
                )
            except FuturesTimeoutError:
                METRICS.counter("harness.hang_kills").inc()
                self._quarantine(
                    state, "HangKill",
                    "%s exceeded the %.1fs task timeout even in isolation "
                    "(attempt %d)"
                    % (state.name, self.policy.task_timeout_s, state.attempts),
                )
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._quarantine(
                    state, type(exc).__name__, str(exc) or repr(exc)
                )
            else:
                self._handle_result(state, res)
        finally:
            try:
                solo.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            _kill_worker_processes(solo)

    # -- completion --------------------------------------------------------

    def _handle_result(self, state, res):
        state.res = res
        if res["error"] is not None:
            # A typed ReproError in a non-fault-tolerant run: it is
            # deterministic, so retrying cannot help -- surface it with
            # the registry-earliest-wins rule at assembly time.
            state.outcome = "error"
            state.error = res["error"]
        elif res["failure"] is not None:
            state.outcome = "failure"
            state.failure = res["failure"]
            if self.journal is not None:
                self.journal.record(
                    state.name, "failure", state.failure, state.attempts
                )
        else:
            state.outcome = "ok"
            state.pair = res["pair"]
            if self.journal is not None:
                self.journal.record(
                    state.name, "ok", state.pair, state.attempts
                )
        self.completed += 1

    # -- crash / hang recovery --------------------------------------------

    def _recover_pool(self, kind):
        """The pool broke (worker SIGKILLed, or we hang-killed one):
        figure out which in-flight tasks had actually *started* (the
        crash suspects), charge them the attempt, reschedule everything
        unfinished, and respawn the pool."""
        METRICS.counter("harness.worker_crashes", kind=kind).inc()
        markers = _read_start_markers(self.start_log)
        lost = list(self.inflight.values())
        self.inflight.clear()
        try:
            self.pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _kill_worker_processes(self.pool)
        self.pool = self._new_pool()
        for state in lost:
            suspect = (state.name, state.attempts) in markers
            if suspect:
                log.warning(
                    "worker running %s (attempt %d) died; recovering",
                    state.name, state.attempts,
                )
                self._retry_or_quarantine(
                    state, "WorkerCrash",
                    "worker process died while running %s (attempt %d)"
                    % (state.name, state.attempts),
                )
            else:
                # Never started: reschedule without charging an attempt.
                self._submit(state, charge=False)

    def _check_hangs(self):
        timeout = self.policy.task_timeout_s
        if timeout is None or not self.inflight:
            return False
        markers = _read_start_markers(self.start_log)
        now = time.time()
        for state in self.inflight.values():
            marker = markers.get((state.name, state.attempts))
            if marker is None:
                continue
            pid, started = marker
            if now - started <= timeout:
                continue
            METRICS.counter("harness.hang_kills").inc()
            log.warning(
                "workload %s (attempt %d, pid %d) exceeded the %.1fs task "
                "timeout; killing the worker",
                state.name, state.attempts, pid, timeout,
            )
            try:
                import signal

                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
            # The kill breaks the pool; the normal crash path (which
            # will see this task's start marker) does the rescheduling.
            return True
        return False

    # -- main loop ---------------------------------------------------------

    def _new_pool(self):
        return ProcessPoolExecutor(max_workers=self.jobs)

    def run(self):
        pending = [s for s in self.states if s.outcome is None]
        if not pending:
            return
        fd, self.start_log = tempfile.mkstemp(prefix="repro-supervise-")
        os.close(fd)
        self.pool = self._new_pool()
        try:
            for state in pending:
                self._submit(state)
            self._loop()
        except KeyboardInterrupt:
            self._reap()
            raise
        finally:
            try:
                self.pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
            try:
                os.remove(self.start_log)
            except OSError:
                pass

    def _loop(self):
        while self.inflight or self.delayed:
            now = time.monotonic()
            broke = False
            for ready, state in list(self.delayed):
                if ready <= now:
                    self.delayed.remove((ready, state))
                    try:
                        self._submit(state)
                    except BrokenProcessPool:
                        # The pool broke during the backoff window, before
                        # any completed future could surface it.  Undo the
                        # charge, requeue, and recover like a normal crash.
                        state.attempts -= 1
                        self.delayed.append((now, state))
                        broke = True
                        break
            if broke:
                self._recover_pool(kind="worker_died")
                continue
            if not self.inflight:
                time.sleep(_TICK_S)
                continue
            use_tick = self.delayed or self.policy.task_timeout_s is not None
            done, _ = wait(
                list(self.inflight),
                timeout=_TICK_S if use_tick else None,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                self._check_hangs()
                continue
            crashed = False
            for future in done:
                state = self.inflight.pop(future)
                try:
                    res = future.result()
                except BrokenProcessPool:
                    # Defer recovery until the whole batch is harvested:
                    # other futures in it may hold completed results,
                    # which rescheduling would needlessly redo (and
                    # wrongly charge as crash suspects).
                    self.inflight[future] = state  # recover sees it too
                    crashed = True
                    continue
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    # A non-Repro exception crossing the pool: transient.
                    self._retry_or_quarantine(
                        state, type(exc).__name__, str(exc) or repr(exc)
                    )
                    continue
                self._handle_result(state, res)
            if crashed:
                self._recover_pool(kind="worker_died")
                continue
            if (
                self.interrupt_after is not None
                and self.completed >= self.interrupt_after
            ):
                # Deterministic stand-in for Ctrl-C, used by the chaos
                # harness and tests to drive the real interrupt path.
                raise KeyboardInterrupt()

    def _reap(self):
        """Ctrl-C: cancel queued futures, SIGKILL workers, drop in-flight
        bookkeeping -- completed work is already journaled."""
        for future in list(self.inflight):
            future.cancel()
        try:
            self.pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _kill_worker_processes(self.pool)
        self.inflight.clear()
        self.delayed.clear()


def run_suite_supervised(
    workloads,
    limit,
    branchreg_options=None,
    jobs=2,
    fault_tolerant=False,
    deadline_s=None,
    limit_overrides=None,
    cache_dir=None,
    sample_every=None,
    engine=None,
    policy=None,
    journal=None,
    fault_plan=None,
    interrupt_after=None,
):
    """Run the suite under supervision; returns a ``SuiteResult``.

    The task payloads, worker function, telemetry folding, and
    deterministic Appendix-I-order reassembly are shared with
    :func:`repro.harness.parallel.run_suite_parallel`; what this adds is
    the recovery machinery described in the module docstring.

    ``journal`` is an open :class:`~repro.harness.checkpoint
    .CheckpointJournal`; tasks it already records are skipped and
    counted as ``harness.checkpoint{result=hit}``.  ``fault_plan`` maps
    workload name -> a list of chaos actions applied per attempt (None
    entries run clean) -- the deterministic injection hook ``repro
    chaos`` uses.  ``interrupt_after`` raises ``KeyboardInterrupt`` in
    the coordinator once that many tasks have completed, driving the
    real Ctrl-C handling deterministically.

    On interrupt the coordinator cancels queued work, SIGKILLs its
    workers (no orphans), and raises :class:`SuiteInterrupted` carrying
    the partial ``SuiteResult`` -- which ``repro report`` turns into a
    valid partial manifest that ``--resume`` picks up.
    """
    from repro.harness.parallel import resolve_cache_dir

    policy = policy or SupervisePolicy()
    jobs = max(1, int(jobs))
    options = tuple(sorted((branchreg_options or {}).items()))
    overrides = limit_overrides or {}
    cache_root = resolve_cache_dir(cache_dir)
    trace_ctx = trace.task_context()
    states = []
    for index, w in enumerate(workloads):
        task = (
            w.name,
            overrides.get(w.name, limit),
            options,
            fault_tolerant,
            deadline_s,
            sample_every,
            cache_root,
            engine,
            trace_ctx,
        )
        states.append(_TaskState(index, w.name, task))
    if journal is not None:
        for state in states:
            entry = journal.get(state.name)
            if entry is None:
                continue
            state.outcome = entry["status"]
            state.attempts = entry["attempts"]
            state.from_checkpoint = True
            if entry["status"] == "ok":
                state.pair = entry["result"]
            elif entry["status"] == "failure":
                state.failure = entry["result"]
            else:
                state.record = entry["result"]
            METRICS.counter("harness.checkpoint", result="hit").inc()
    METRICS.gauge("harness.jobs").set(jobs)
    log.info(
        "supervised suite: %d workload(s) across %d job(s), "
        "%d from checkpoint, max %d attempt(s)%s",
        len(states), jobs,
        sum(1 for s in states if s.from_checkpoint),
        policy.max_attempts,
        " (cache %s)" % cache_root if cache_root else "",
    )
    supervisor = _Supervisor(
        states, jobs, policy, journal, fault_plan, interrupt_after
    )
    try:
        supervisor.run()
    except KeyboardInterrupt:
        partial = _assemble(states, partial=True)
        remaining = [s.name for s in states if s.outcome is None]
        log.warning(
            "suite interrupted: %d task(s) done, %d remaining%s",
            len(states) - len(remaining), len(remaining),
            "; resume with --resume" if journal is not None else "",
        )
        raise SuiteInterrupted(
            "suite interrupted with %d workload(s) unfinished"
            % len(remaining),
            partial=partial,
            remaining=remaining,
        ) from None
    return _assemble(states)


def _assemble(states, partial=False):
    """Deterministic registry-order reassembly + telemetry folding,
    mirroring ``run_suite_parallel`` (fold up to and including the
    registry-earliest error, then raise it)."""
    from repro.harness.runner import SuiteResult

    pairs, failures, quarantined, collected = [], [], [], []
    error = None
    for state in states:
        if state.res is not None:
            METRICS.merge_snapshot(state.res["metrics"])
            RECORDER.merge_rows(state.res["spans"])
            collected.append(state.res["events"])
        if state.outcome == "error":
            error = state.error
            break
        if state.pair is not None:
            pairs.append(state.pair)
        if state.failure is not None:
            failures.append(state.failure)
        if state.record is not None:
            failures.append(state.record)
            quarantined.append(state.record)
    if events.enabled() and collected:
        events.replay(events.merge_events(*collected))
    if error is not None and not partial:
        raise error
    return SuiteResult(pairs, failures, quarantined)
