"""Shared suite runner with memoisation.

Emulating the full 19-program suite on both machines takes tens of
seconds; every experiment harness shares the results through this module's
cache so that ``pytest benchmarks/`` does each distinct configuration only
once per process.
"""

from repro.ease.environment import run_pair
from repro.emu.stats import suite_totals
from repro.workloads import all_workloads

DEFAULT_LIMIT = 20_000_000

_CACHE = {}

# A fast subset with one program of each character (byte loops, recursion,
# FP, sorting, compiler) for experiments that sweep many configurations.
FAST_SUBSET = ("wc", "grep", "puzzle", "spline", "sort", "vpcc")


def run_suite(subset=None, limit=DEFAULT_LIMIT, branchreg_options=None):
    """Run (or reuse) the suite; returns a list of PairResult.

    ``subset`` is an iterable of workload names or None for all 19.
    ``branchreg_options`` forwards ablation switches to the
    branch-register code generator.
    """
    names = tuple(subset) if subset is not None else None
    options = tuple(sorted((branchreg_options or {}).items()))
    key = (names, limit, options)
    if key in _CACHE:
        return _CACHE[key]
    pairs = []
    for w in all_workloads():
        if names is not None and w.name not in names:
            continue
        pairs.append(
            run_pair(
                w.source,
                stdin=w.stdin_bytes(),
                name=w.name,
                limit=limit,
                branchreg_options=branchreg_options,
            )
        )
    _CACHE[key] = pairs
    return pairs


def suite_summary(pairs):
    """(baseline totals, branch-register totals) for a list of pairs."""
    baseline = suite_totals([p.baseline for p in pairs], machine="baseline")
    branchreg = suite_totals([p.branchreg for p in pairs], machine="branchreg")
    return baseline, branchreg
