"""Shared suite runner with memoisation.

Emulating the full 19-program suite on both machines takes tens of
seconds; every experiment harness shares the results through this module's
cache so that ``pytest benchmarks/`` does each distinct configuration only
once per process.

Observability: every suite run records a ``workload`` span per program
(the per-workload durations that feed the run manifest), and the memo
cache reports hits/misses through the metrics registry so harness users
can see whether they actually re-ran anything.
"""

from repro.ease.environment import run_pair
from repro.emu.stats import suite_totals
from repro.obs import METRICS, log, span
from repro.workloads import all_workloads

DEFAULT_LIMIT = 20_000_000

_CACHE = {}

# A fast subset with one program of each character (byte loops, recursion,
# FP, sorting, compiler) for experiments that sweep many configurations.
FAST_SUBSET = ("wc", "grep", "puzzle", "spline", "sort", "vpcc")


def resolve_workloads(names=None):
    """Workload objects for ``names`` (all 19 when None), always in
    Appendix I registry order.  Raises ValueError for unknown names with
    the same wording everywhere a subset is accepted (run_suite, the
    report driver, ``repro profile``)."""
    workloads = all_workloads()
    if names is None:
        return workloads
    known = {w.name for w in workloads}
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            "unknown workload(s): %s (see 'repro workloads')"
            % ", ".join(unknown)
        )
    wanted = set(names)
    return [w for w in workloads if w.name in wanted]


def run_suite(
    subset=None,
    limit=DEFAULT_LIMIT,
    branchreg_options=None,
    observer=None,
    use_cache=True,
):
    """Run (or reuse) the suite; returns a list of PairResult.

    ``subset`` is an iterable of workload names or None for all 19.
    ``branchreg_options`` forwards ablation switches to the
    branch-register code generator.  ``observer`` attaches a
    :class:`repro.obs.emuobs.EmulationObserver` to every emulation;
    ``use_cache=False`` forces a fresh run (the observer is *not* part of
    the cache key, so instrumented runs should bypass the cache).
    """
    names = tuple(subset) if subset is not None else None
    selected = resolve_workloads(names)
    options = tuple(sorted((branchreg_options or {}).items()))
    key = (names, limit, options)
    if use_cache and key in _CACHE:
        METRICS.counter("harness.suite_cache", result="hit").inc()
        log.debug("suite cache hit for subset=%s", names or "all")
        return _CACHE[key]
    METRICS.counter("harness.suite_cache", result="miss").inc()
    pairs = []
    for w in selected:
        log.info("running workload %s on both machines", w.name)
        with span("workload", name=w.name):
            pairs.append(
                run_pair(
                    w.source,
                    stdin=w.stdin_bytes(),
                    name=w.name,
                    limit=limit,
                    branchreg_options=branchreg_options,
                    observer=observer,
                )
            )
    if use_cache:
        _CACHE[key] = pairs
    return pairs


def suite_summary(pairs):
    """(baseline totals, branch-register totals) for a list of pairs."""
    baseline = suite_totals([p.baseline for p in pairs], machine="baseline")
    branchreg = suite_totals([p.branchreg for p in pairs], machine="branchreg")
    return baseline, branchreg
