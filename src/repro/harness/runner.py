"""Shared suite runner with memoisation and optional parallel fan-out.

Emulating the full 19-program suite on both machines takes tens of
seconds; every experiment harness shares the results through this module's
cache so that ``pytest benchmarks/`` does each distinct configuration only
once per process.  With ``jobs > 1`` (or ``REPRO_JOBS`` set) the suite
additionally fans out across worker processes through
:mod:`repro.harness.parallel`, whose persistent artifact cache means each
image is compiled once per configuration ever -- see
``docs/PERFORMANCE.md``.

Observability: every suite run records a ``workload`` span per program
(the per-workload durations that feed the run manifest), and the memo
cache reports hits/misses through the metrics registry so harness users
can see whether they actually re-ran anything.
"""

from repro.ease.environment import run_pair
from repro.emu.fastcore import resolve_engine
from repro.emu.stats import suite_totals
from repro.errors import ReproError
from repro.obs import METRICS, log, span
from repro.workloads import all_workloads

DEFAULT_LIMIT = 20_000_000

_CACHE = {}


class SuiteResult(list):
    """A list of PairResult plus the failures the run tolerated.

    Behaves exactly like the plain list ``run_suite`` historically
    returned; ``failures`` holds one structured record (see
    :func:`repro.fault.triage.failure_record`) per workload that raised
    a typed error during a fault-tolerant run.
    """

    def __init__(self, pairs=(), failures=None, quarantined=None):
        super().__init__(pairs)
        self.failures = list(failures or [])
        # Supervised runs: structured records of tasks quarantined after
        # exhausting their attempt budget (a subset of ``failures``).
        self.quarantined = list(quarantined or [])

    def copy(self):
        """Shallow copy: a fresh list and failures list over the same
        (immutable) PairResult objects, so callers may mutate the copy
        without corrupting anyone else's view."""
        return SuiteResult(self, self.failures, self.quarantined)

# A fast subset with one program of each character (byte loops, recursion,
# FP, sorting, compiler) for experiments that sweep many configurations.
FAST_SUBSET = ("wc", "grep", "puzzle", "spline", "sort", "vpcc")


def resolve_workloads(names=None):
    """Workload objects for ``names`` (all 19 when None), always in
    Appendix I registry order.  Raises ValueError for unknown or
    duplicated names with the same wording everywhere a subset is
    accepted (run_suite, the report driver, ``repro profile``).
    Duplicates are rejected rather than collapsed because the memo cache
    keys on the *requested* name tuple: ``("wc", "wc")`` and ``("wc",)``
    would silently alias the same single-run result under two keys."""
    workloads = all_workloads()
    if names is None:
        return workloads
    known = {w.name for w in workloads}
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            "unknown workload(s): %s (see 'repro workloads')"
            % ", ".join(unknown)
        )
    seen = set()
    duplicates = []
    for n in names:
        if n in seen and n not in duplicates:
            duplicates.append(n)
        seen.add(n)
    if duplicates:
        raise ValueError(
            "duplicate workload(s): %s (see 'repro workloads')"
            % ", ".join(duplicates)
        )
    return [w for w in workloads if w.name in seen]


def run_suite(
    subset=None,
    limit=DEFAULT_LIMIT,
    branchreg_options=None,
    observer=None,
    use_cache=True,
    fault_tolerant=False,
    deadline_s=None,
    limit_overrides=None,
    jobs=None,
    cache_dir=None,
    sample_every=None,
    engine=None,
    supervise=None,
    max_attempts=None,
    checkpoint=None,
    resume=False,
    interrupt_after=None,
):
    """Run (or reuse) the suite; returns a :class:`SuiteResult`.

    ``subset`` is an iterable of workload names or None for all 19.
    ``branchreg_options`` forwards ablation switches to the
    branch-register code generator.  ``observer`` attaches a
    :class:`repro.obs.emuobs.EmulationObserver` to every emulation.

    ``jobs`` fans the per-workload emulations out across that many worker
    processes (default: the ``REPRO_JOBS`` environment variable, else 1).
    Serial runs (``jobs=1``) keep the historical behavior exactly;
    parallel runs produce identical results, reassembled in Appendix I
    registry order, with worker telemetry folded back into the global
    recorders (see ``docs/PERFORMANCE.md``).  An in-process ``observer``
    cannot cross process boundaries, so passing one forces a serial run;
    parallel runs take ``sample_every`` instead, which gives each worker
    its own observer.  ``cache_dir`` selects the persistent artifact
    cache root (None = the ``REPRO_CACHE_DIR``/platform default for
    parallel runs and *no* cache for serial runs, preserving their
    historical metrics; False = disabled).

    ``engine`` selects the emulation run loop ("fast"/"reference";
    default: the ``REPRO_ENGINE`` environment variable, else "fast") and
    is resolved once here so the memo cache key is stable.

    The memo cache is keyed on (subset, limit, branchreg options, engine),
    so any argument outside that key -- an observer, fault tolerance, a
    wall-clock deadline, per-workload limit overrides -- forces a fresh
    uncached run; returning another caller's cached result (or caching
    a run that a fault cut short) would silently lie.  Parallel runs
    share the serial key: their results are identical by construction.
    Cache hits return a shallow *copy* (the pairs are immutable
    dataclasses), so a caller mutating its result list or ``failures``
    cannot corrupt what later callers receive.

    ``fault_tolerant=True`` keeps going when a workload raises a typed
    :class:`~repro.errors.ReproError`: the failure becomes a structured
    record on ``result.failures`` (error type, pc, icount, source
    attribution, last control-flow edges) and the remaining workloads
    still run.  ``deadline_s`` arms a per-emulation wall-clock watchdog
    alongside the instruction budget; ``limit_overrides`` maps workload
    name -> instruction limit for that workload only.

    ``supervise`` (True or a :class:`~repro.harness.supervise
    .SupervisePolicy`) routes parallel execution through the supervised
    runner -- worker-crash recovery, retry/backoff with quarantine, and
    the parent-side hang watchdog (see ``docs/ROBUSTNESS.md``);
    ``max_attempts`` overrides the policy's per-task attempt budget.
    ``checkpoint`` journals every completed (workload, machine-pair)
    task to that path (schema ``repro.checkpoint/1``) and ``resume=True``
    skips tasks the journal already records, reassembling byte-identical
    results after a crash or Ctrl-C.  ``interrupt_after`` raises
    ``KeyboardInterrupt`` once that many tasks have completed -- the
    deterministic stand-in for Ctrl-C the chaos harness and tests use to
    drive the real interrupt path.
    """
    from repro.harness.checkpoint import CheckpointJournal, checkpoint_run_key
    from repro.harness.parallel import default_jobs
    from repro.harness.supervise import SupervisePolicy

    names = tuple(subset) if subset is not None else None
    selected = resolve_workloads(names)
    options = tuple(sorted((branchreg_options or {}).items()))
    engine = resolve_engine(engine)
    key = (names, limit, options, engine)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if jobs > 1 and observer is not None:
        log.debug(
            "an in-process observer cannot cross process boundaries; "
            "running the suite serially (pass sample_every= instead)"
        )
        jobs = 1
    policy = SupervisePolicy.coerce(supervise)
    if policy is None and checkpoint and jobs > 1:
        # A checkpointed parallel run needs the supervised coordinator
        # (the plain pool has no incremental-completion hook to journal).
        policy = SupervisePolicy()
    if policy is not None:
        policy = policy.with_attempts(max_attempts)
    journal = None
    if checkpoint:
        journal = CheckpointJournal.open(
            checkpoint,
            checkpoint_run_key(
                names=[w.name for w in selected],
                limit=limit,
                options=options,
                engine=engine,
                limit_overrides=limit_overrides,
                fault_tolerant=fault_tolerant,
                deadline_s=deadline_s,
                sample_every=sample_every if jobs > 1 else None,
            ),
            resume=resume,
        )
    uncacheable = (
        observer is not None
        or fault_tolerant
        or deadline_s is not None
        or bool(limit_overrides)
        or policy is not None
        or journal is not None
    )
    if uncacheable and use_cache:
        log.debug("suite cache bypassed: run parameters outside cache key")
        use_cache = False
    if use_cache and key in _CACHE:
        METRICS.counter("harness.suite_cache", result="hit").inc()
        log.debug("suite cache hit for subset=%s", names or "all")
        return _CACHE[key].copy()
    # "miss" means a genuine cold lookup that the cache will now fill;
    # a caller that opted out (or was forced out) of memoisation is a
    # "bypass" -- folding those into misses would understate hit rate.
    METRICS.counter(
        "harness.suite_cache", result="miss" if use_cache else "bypass"
    ).inc()
    mode = "serial"
    if policy is not None:
        mode = "supervised"
    elif jobs > 1:
        mode = "parallel"
    try:
        with span("suite", mode=mode):
            if policy is not None:
                from repro.harness.supervise import run_suite_supervised

                result = run_suite_supervised(
                    selected,
                    limit,
                    branchreg_options=branchreg_options,
                    jobs=jobs,
                    fault_tolerant=fault_tolerant,
                    deadline_s=deadline_s,
                    limit_overrides=limit_overrides,
                    cache_dir=cache_dir,
                    sample_every=sample_every,
                    engine=engine,
                    policy=policy,
                    journal=journal,
                    interrupt_after=interrupt_after,
                )
            elif jobs > 1:
                from repro.harness.parallel import run_suite_parallel

                result = run_suite_parallel(
                    selected,
                    limit,
                    branchreg_options=branchreg_options,
                    jobs=jobs,
                    fault_tolerant=fault_tolerant,
                    deadline_s=deadline_s,
                    limit_overrides=limit_overrides,
                    cache_dir=cache_dir,
                    sample_every=sample_every,
                    engine=engine,
                )
            else:
                result = _run_suite_serial(
                    selected,
                    limit,
                    branchreg_options=branchreg_options,
                    observer=observer,
                    fault_tolerant=fault_tolerant,
                    deadline_s=deadline_s,
                    limit_overrides=limit_overrides,
                    cache_dir=cache_dir,
                    engine=engine,
                    journal=journal,
                    interrupt_after=interrupt_after,
                )
    finally:
        if journal is not None:
            journal.close()
    if use_cache:
        # Store a private copy so mutations of the returned result can
        # never reach (and corrupt) later cache hits.
        _CACHE[key] = result.copy()
    return result


def _run_suite_serial(
    selected,
    limit,
    branchreg_options=None,
    observer=None,
    fault_tolerant=False,
    deadline_s=None,
    limit_overrides=None,
    cache_dir=None,
    engine=None,
    journal=None,
    interrupt_after=None,
):
    """The historical in-process suite loop.

    ``journal`` (a :class:`~repro.harness.checkpoint.CheckpointJournal`)
    makes the loop crash-consistent: completed workloads are skipped as
    checkpoint hits, every outcome is journaled as it happens, and a
    Ctrl-C surfaces as :class:`~repro.errors.SuiteInterrupted` carrying
    the partial result after the completed prefix was made durable.
    """
    from repro.errors import SuiteInterrupted

    cache = None
    if cache_dir:
        from repro.harness.parallel import ArtifactCache

        cache = ArtifactCache(str(cache_dir))
    pairs = []
    failures = []
    overrides = limit_overrides or {}
    done = 0
    try:
        for w in selected:
            if journal is not None:
                entry = journal.get(w.name)
                if entry is not None:
                    METRICS.counter("harness.checkpoint", result="hit").inc()
                    log.info("workload %s served from checkpoint", w.name)
                    if entry["status"] == "ok":
                        pairs.append(entry["result"])
                    else:
                        failures.append(entry["result"])
                    done += 1
                    continue
            log.info("running workload %s on both machines", w.name)
            with span("workload", name=w.name):
                try:
                    pair = run_pair(
                        w.source,
                        stdin=w.stdin_bytes(),
                        name=w.name,
                        limit=overrides.get(w.name, limit),
                        branchreg_options=branchreg_options,
                        observer=observer,
                        deadline_s=deadline_s,
                        record_edges=fault_tolerant,
                        cache=cache,
                        engine=engine,
                    )
                except ReproError as exc:
                    if not fault_tolerant:
                        raise
                    from repro.fault.triage import failure_record

                    METRICS.counter(
                        "harness.workload_failures", error=type(exc).__name__
                    ).inc()
                    log.error("workload %s failed: %s", w.name, exc)
                    record = failure_record(w.name, exc)
                    failures.append(record)
                    if journal is not None:
                        journal.record(w.name, "failure", record)
                else:
                    pairs.append(pair)
                    if journal is not None:
                        journal.record(w.name, "ok", pair)
            done += 1
            if interrupt_after is not None and done >= interrupt_after:
                # Deterministic Ctrl-C stand-in (tests/chaos harness).
                raise KeyboardInterrupt()
    except KeyboardInterrupt:
        remaining = [w.name for w in selected[done:]]
        log.warning(
            "suite interrupted: %d workload(s) done, %d remaining%s",
            done, len(remaining),
            "; resume with --resume" if journal is not None else "",
        )
        raise SuiteInterrupted(
            "suite interrupted with %d workload(s) unfinished"
            % len(remaining),
            partial=SuiteResult(pairs, failures),
            remaining=remaining,
        ) from None
    return SuiteResult(pairs, failures)


def suite_summary(pairs):
    """(baseline totals, branch-register totals) for a list of pairs."""
    baseline = suite_totals([p.baseline for p in pairs], machine="baseline")
    branchreg = suite_totals([p.branchreg for p in pairs], machine="branchreg")
    return baseline, branchreg
