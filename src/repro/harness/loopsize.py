"""Section 9's small-cache argument: static loop-body sizes.

"Since instructions to calculate branch target addresses can be moved out
of loops, the number of instructions in loops will be fewer.  This may
improve cache performance in machines with small on-chip caches."

This harness measures the static instruction count inside every natural
loop for both machines across the suite and reports the totals.  (Loop
membership is taken from the machine-independent CFG, so the comparison
counts exactly the instructions the two code generators place between a
loop's first and last generated instruction.)
"""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.lang.frontend import compile_to_ir
from repro.workloads import all_workloads


def _baseline_spans(fn):
    """Loop spans on the baseline machine: backward direct branches."""
    positions = {}
    for idx, ins in enumerate(fn.instrs):
        if ins.is_label():
            positions[ins.label] = idx
    spans = []
    for idx, ins in enumerate(fn.instrs):
        if ins.target is not None and ins.op in ("bcc", "fbcc", "jmp"):
            target_pos = positions.get(ins.target.name)
            if target_pos is not None and target_pos < idx:
                spans.append((target_pos, idx))
    return spans


def _branchreg_spans(fn):
    """Loop spans on the branch-register machine.

    A loop exists when a ``bta`` computes the address of label L and the
    register is later *consumed* (as a carrier's ``br`` field, or as a
    ``cmpset`` taken-source) at a position after L -- that consumer is the
    back edge and [L, consumer] is the static body."""
    positions = {}
    for idx, ins in enumerate(fn.instrs):
        if ins.is_label():
            positions[ins.label] = idx
    instrs = fn.instrs
    spans = []
    for idx, ins in enumerate(instrs):
        if ins.op != "bta" or ins.target is None:
            continue
        target_pos = positions.get(ins.target.name)
        if target_pos is None:
            continue
        breg = ins.dst.index
        last_consumer = None
        for j in range(idx + 1, len(instrs)):
            other = instrs[j]
            if other.is_label():
                continue
            if other.br == breg or (
                other.op in ("cmpset", "fcmpset") and other.btrue == breg
            ):
                last_consumer = j
            is_redef = (
                other is not ins
                and other.dst is not None
                and getattr(other.dst, "kind", None) == "b"
                and other.dst.index == breg
            )
            if is_redef:
                break
        if last_consumer is not None and last_consumer > target_pos:
            spans.append((target_pos, last_consumer))
    return spans


def _loop_instruction_count(mprog):
    """Total static instructions located inside loop bodies."""
    total = 0
    for fn in mprog.functions:
        if mprog.spec.name == "baseline":
            spans = _baseline_spans(fn)
        else:
            spans = _branchreg_spans(fn)
        covered = set()
        for lo, hi in spans:
            covered.update(range(lo, hi + 1))
        total += sum(
            1 for idx in covered if not fn.instrs[idx].is_label()
        )
    return total


def run_loop_size_study(subset=None):
    """Static in-loop instruction totals for both machines.

    Returns {"rows": [...], "baseline_total", "branchreg_total", "text"}.
    """
    rows = []
    base_total = 0
    br_total = 0
    for w in all_workloads():
        if subset is not None and w.name not in subset:
            continue
        base = _loop_instruction_count(
            generate_baseline(compile_to_ir(w.source))
        )
        br = _loop_instruction_count(
            generate_branchreg(compile_to_ir(w.source))
        )
        rows.append({"program": w.name, "baseline": base, "branchreg": br})
        base_total += base
        br_total += br
    lines = ["%-11s %10s %10s %8s" % ("program", "baseline", "branch-reg", "change")]
    for row in rows:
        change = (
            row["branchreg"] / row["baseline"] - 1.0 if row["baseline"] else 0.0
        )
        lines.append(
            "%-11s %10d %10d %+7.1f%%"
            % (row["program"], row["baseline"], row["branchreg"], 100 * change)
        )
    lines.append(
        "%-11s %10d %10d %+7.1f%%"
        % (
            "TOTAL",
            base_total,
            br_total,
            100 * (br_total / base_total - 1.0) if base_total else 0.0,
        )
    )
    return {
        "rows": rows,
        "baseline_total": base_total,
        "branchreg_total": br_total,
        "text": "\n".join(lines),
    }


def main():
    print(run_loop_size_study()["text"])


if __name__ == "__main__":
    main()
