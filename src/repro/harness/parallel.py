"""Parallel suite execution and the persistent artifact cache.

The paper's EASE workflow is embarrassingly parallel: each of the 19
Appendix I programs is compiled and emulated on both machines completely
independently.  This module exploits that twice over:

* :func:`run_suite_parallel` fans each (workload, machine-pair) emulation
  out to a :class:`~concurrent.futures.ProcessPoolExecutor` worker and
  deterministically reassembles the results in Appendix I registry order,
  so ``--jobs N`` produces results identical to a serial run regardless
  of completion order (``docs/PERFORMANCE.md`` states the guarantee;
  ``tests/test_parallel.py`` enforces it);
* :class:`ArtifactCache` is a persistent, content-addressed compile cache
  keyed by SHA-256 of (source, machine, codegen options, package
  version), so each image is built once per *configuration* ever -- not
  once per process -- and configuration sweeps stop paying the frontend /
  optimizer / codegen cost on every run.

Observability crosses the process boundary explicitly: every worker
accumulates into its own freshly-reset metrics registry, span recorder,
and event sink, pickles the snapshots back, and the parent folds them
into the global recorders in registry order (``METRICS.merge_snapshot``,
``RECORDER.merge_rows``, ``events.replay``).  Failure records from
fault-tolerant runs travel the same way, so run manifests, ``repro
report``, ``repro diff --paper``, and ``repro triage`` behave identically
under ``--jobs N``.
"""

import concurrent.futures
import hashlib
import os
import pickle
import time
import zlib

from repro.emu.loader import Image
from repro.errors import ReproError
from repro.obs import METRICS, events, log, span, trace
from repro.obs.emuobs import EmulationObserver
from repro.obs.spans import RECORDER
from repro.workloads import workload


def default_jobs():
    """Worker-process count from the ``REPRO_JOBS`` environment variable;
    1 (serial) when unset, empty, or not a positive integer."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        value = int(raw.strip() or "1")
    except ValueError:
        log.warning("ignoring invalid REPRO_JOBS=%r (want a positive integer)", raw)
        return 1
    return max(1, value)


def resolve_cache_dir(cache_dir=None):
    """Resolve the artifact-cache root directory.

    ``None`` selects the default (``REPRO_CACHE_DIR`` if set, else
    ``~/.cache/repro/artifacts``); ``False`` -- or setting
    ``REPRO_CACHE_DIR`` to the empty string -- disables on-disk caching
    entirely and returns None.
    """
    if cache_dir is False:
        return None
    if cache_dir:
        return str(cache_dir)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return env or None
    return os.path.expanduser(os.path.join("~", ".cache", "repro", "artifacts"))


# --------------------------------------------------------------------------
# Artifact cache
# --------------------------------------------------------------------------

def artifact_key(source, machine, codegen_options=None):
    """Content address of one compiled image: SHA-256 over the program
    source, the target machine, the (sorted) codegen options, and the
    package version -- so a new release or a different ablation switch
    can never alias a stale image."""
    from repro import __version__

    payload = repr(
        (source, machine, sorted((codegen_options or {}).items()), __version__)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Persistent on-disk compile cache for loaded images.

    Entries live under ``root`` as one file per (machine, key):
    a SHA-256 checksum line followed by the zlib-compressed pickle of the
    :class:`~repro.rtl.function.MachineProgram` (a few KB; the multi-MB
    ``Image`` memory arrays are rebuilt from it in ~10ms, several times
    faster than recompiling).  Loads verify the checksum and fully
    re-assemble the image, so a corrupted or truncated entry is detected,
    counted (``harness.artifact_cache{result=corrupt}``), deleted, and
    rebuilt from source rather than loaded.  Writes are atomic
    (``os.replace``), so concurrent workers racing on the same key are
    safe: both write identical content.

    Concurrent *writers* are additionally de-duplicated by a per-entry
    advisory lock (``<entry>.lock``, created ``O_CREAT|O_EXCL``): the
    first process compiling a key takes the lock, later processes wait
    briefly for the entry to appear (a "hit" -- they never compiled)
    and only fall back to compiling themselves when the writer is slow
    or died.  Locks older than ``LOCK_STALE_S`` are reaped as leftovers
    of crashed writers, as are orphaned ``*.tmp.*`` staging files; both
    protocols are crash-consistent because the final ``os.replace`` is
    the only visible state change (see ``docs/ROBUSTNESS.md``).

    A per-process in-memory layer sits on top; images it returns are
    ``reset()`` so a previous emulation's memory mutations never leak
    into the next run.
    """

    #: A lock file older than this is presumed to belong to a dead
    #: writer and is reaped.
    LOCK_STALE_S = 60.0
    #: How long a reader waits for a concurrent writer's entry before
    #: giving up and compiling itself (correct either way: the atomic
    #: rename makes duplicate writes converge on identical content).
    WAIT_FOR_WRITER_S = 10.0
    #: Polling interval while waiting on a concurrent writer.
    WAIT_POLL_S = 0.02
    #: Staging (``*.tmp.*``) files older than this are reaped at init.
    TMP_STALE_S = 300.0

    def __init__(self, root, registry=None):
        self.root = str(root)
        self.registry = registry if registry is not None else METRICS
        self._mem = {}
        os.makedirs(self.root, exist_ok=True)
        self._reap_stale_files()

    def _reap_stale_files(self):
        """Remove staging/lock leftovers of writers that died mid-flight."""
        now = time.time()
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            stale_after = None
            if ".tmp." in name:
                stale_after = self.TMP_STALE_S
            elif name.endswith(".lock"):
                stale_after = self.LOCK_STALE_S
            if stale_after is None:
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.path.getmtime(path) > stale_after:
                    os.remove(path)
                    log.warning("reaped stale artifact-cache file %s", path)
            except OSError:
                pass

    def _count(self, result):
        self.registry.counter("harness.artifact_cache", result=result).inc()

    def _path(self, machine, key):
        return os.path.join(self.root, "%s-%s.mpc" % (machine, key))

    def get_image(self, source, machine, codegen_options=None):
        """A loaded, pristine :class:`Image` for (source, machine,
        options), from memory, disk, or a fresh compile -- in that order.

        On a disk miss the per-entry advisory lock decides who compiles:
        the lock holder compiles and stores (a "miss"); everyone else
        waits for the entry to appear and loads it (a "hit").  A reader
        whose writer stalls or dies past :data:`WAIT_FOR_WRITER_S` falls
        back to compiling itself -- duplicated work, never a wrong
        answer, because the final ``os.replace`` publishes identical
        content either way.
        """
        key = artifact_key(source, machine, codegen_options)
        image = self._mem.get(key)
        if image is not None:
            self._count("hit")
            return image.reset()
        path = self._path(machine, key)
        mprog = self._load(path)
        if mprog is None and self._acquire_lock(path):
            try:
                # Re-check under the lock: a concurrent writer may have
                # published between our miss and our lock acquisition.
                mprog = self._load(path)
                if mprog is None:
                    self._count("miss")
                    image = self._compile_and_store(
                        source, machine, codegen_options, path
                    )
                    self._mem[key] = image
                    return image
            finally:
                self._release_lock(path)
        elif mprog is None:
            # Another process holds the lock: wait briefly for its entry
            # rather than compiling the same key twice.
            mprog = self._wait_for_writer(path)
            if mprog is None:
                self._count("miss")
                image = self._compile_and_store(
                    source, machine, codegen_options, path
                )
                self._mem[key] = image
                return image
        self._count("hit")
        image = Image(mprog)
        self._mem[key] = image
        return image

    def _compile_and_store(self, source, machine, codegen_options, path):
        from repro.ease.environment import compile_for_machine

        image = compile_for_machine(source, machine, **(codegen_options or {}))
        self._store(path, image.mprog)
        return image

    # -- advisory per-entry write locks ------------------------------------

    def _acquire_lock(self, path):
        """Try to become the writer for ``path`` (non-blocking).

        ``O_CREAT|O_EXCL`` makes creation atomic even on shared
        filesystems; a lock whose mtime is older than
        :data:`LOCK_STALE_S` belongs to a crashed writer and is reaped
        before one retry.
        """
        lock = path + ".lock"
        for _ in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    if time.time() - os.path.getmtime(lock) > self.LOCK_STALE_S:
                        os.remove(lock)
                        log.warning("reaped stale artifact-cache lock %s", lock)
                        continue
                except OSError:
                    continue  # lock vanished or is unreadable; retry once
                return False
            except OSError:
                return True  # cannot lock here (read-only?); compile anyway
            try:
                os.write(fd, ("%d\n" % os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            return True
        return False

    def _release_lock(self, path):
        try:
            os.remove(path + ".lock")
        except OSError:
            pass

    def _wait_for_writer(self, path):
        """Poll for a concurrent writer's entry; its MachineProgram, or
        None when the writer was too slow (or died)."""
        deadline = time.time() + self.WAIT_FOR_WRITER_S
        lock = path + ".lock"
        while time.time() < deadline:
            time.sleep(self.WAIT_POLL_S)
            mprog = self._load(path)
            if mprog is not None:
                return mprog
            if not os.path.exists(lock):
                # Writer released (or died and was reaped) without
                # publishing: stop waiting and compile ourselves.
                return self._load(path)
        return None

    def _load(self, path):
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None  # absent: a plain miss
        try:
            digest, payload = raw.split(b"\n", 1)
            actual = hashlib.sha256(payload).hexdigest().encode("ascii")
            if digest != actual:
                raise ValueError("checksum mismatch")
            mprog = pickle.loads(zlib.decompress(payload))
            self.registry.counter(
                "harness.artifact_cache_bytes", direction="read"
            ).inc(len(raw))
            return mprog
        except Exception as exc:
            # Poisoned / truncated entry: never load it -- count, drop,
            # and let the caller rebuild from source.
            self._count("corrupt")
            log.warning("artifact cache entry %s is corrupt (%s); rebuilding",
                        path, exc)
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _store(self, path, mprog):
        payload = zlib.compress(
            pickle.dumps(mprog, protocol=pickle.HIGHEST_PROTOCOL), 6
        )
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(digest)
            handle.write(b"\n")
            handle.write(payload)
        os.replace(tmp, path)
        self.registry.counter(
            "harness.artifact_cache_bytes", direction="written"
        ).inc(len(digest) + 1 + len(payload))

    # -- generic blob entries ----------------------------------------------

    def get_blob(self, kind, key):
        """A picklable blob stored under (kind, key), or None on a miss.

        Blobs share the image entries' on-disk format and therefore the
        whole robustness story: checksum verification, corrupt-entry
        detect/delete/rebuild, atomic publication, and the
        ``harness.artifact_cache`` / ``harness.artifact_cache_bytes``
        telemetry.  ``kind`` namespaces the entry (e.g. ``"trace"`` for
        :mod:`repro.emu.tracecore` compiled-trace sources) so blob keys
        can never alias image keys."""
        mkey = (kind, key)
        blob = self._mem.get(mkey)
        if blob is not None:
            self._count("hit")
            return blob
        blob = self._load(self._path(kind, key))
        if blob is None:
            self._count("miss")
            return None
        self._count("hit")
        self._mem[mkey] = blob
        return blob

    def put_blob(self, kind, key, blob):
        """Publish a blob under (kind, key); atomic and idempotent."""
        self._mem[(kind, key)] = blob
        self._store(self._path(kind, key), blob)
        return blob


# --------------------------------------------------------------------------
# Worker pool
# --------------------------------------------------------------------------

#: Per-worker-process cache instances, keyed by root directory, so one
#: worker serving many tasks reuses its in-memory image layer.
_WORKER_CACHES = {}


def _worker_cache(root):
    if not root:
        return None
    cache = _WORKER_CACHES.get(root)
    if cache is None:
        cache = _WORKER_CACHES[root] = ArtifactCache(root)
    return cache


def _kill_worker_processes(pool):
    """SIGKILL every live worker process of ``pool`` -- the coordinator's
    last-resort reaper for Ctrl-C, so an interrupted ``--jobs N`` run
    never leaves orphaned children grinding through the queued tasks."""
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:
            pass


def map_tasks(fn, tasks, jobs):
    """Run ``fn`` over ``tasks`` in a worker pool; results in task order.

    Falls back to an in-process loop for ``jobs <= 1``, so callers need
    no special serial branch for correctness (they may keep one for
    byte-identical legacy behavior).  Any ``jobs > 1`` request uses the
    pool even for a single task: worker functions are allowed to reset
    their process's global recorders, which must never happen in the
    parent.

    A ``KeyboardInterrupt`` while results are pending cancels the queued
    futures, SIGKILLs the workers, and re-raises -- without this, the
    executor's exit handler would block until every already-queued task
    ran to completion, leaving "orphaned" children busy long after the
    user hit Ctrl-C.
    """
    tasks = list(tasks)
    if jobs <= 1 or not tasks:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except KeyboardInterrupt:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            _kill_worker_processes(pool)
            raise


def _run_workload_task(task):
    """Worker entry point: run one workload on both machines.

    Resets this process's global recorders so the returned snapshots
    contain exactly this task's telemetry, captures the event stream in
    a memory sink, and converts a tolerated typed failure into the same
    structured record the serial runner produces.  Everything returned
    is picklable: PairResult (RunStats), failure record dicts, metric /
    span snapshots, and raw event dicts.

    ``trace_ctx`` -- the parent's ``(trace_id, span_id)`` pair, or None
    when no trace was active -- re-activates the parent's trace here, so
    this worker's spans carry the same trace id and parent to the
    parent's enclosing (suite) span.
    """
    (name, limit, options, fault_tolerant, deadline_s, sample_every,
     cache_root, engine, trace_ctx) = task
    from repro.ease.environment import run_pair

    METRICS.reset()
    RECORDER.reset()
    sink = events.MemorySink()
    previous = events.set_sink(sink)
    if trace_ctx is not None:
        trace_token = trace.start_trace(
            trace_id=trace_ctx[0], parent_span_id=trace_ctx[1]
        )
    pair = failure = error = None
    try:
        w = workload(name)
        cache = _worker_cache(cache_root)
        observer = (
            EmulationObserver(sample_every=sample_every) if sample_every else None
        )
        log.info("running workload %s on both machines", name)
        with span("workload", name=name):
            try:
                pair = run_pair(
                    w.source,
                    stdin=w.stdin_bytes(),
                    name=name,
                    limit=limit,
                    branchreg_options=dict(options) if options else None,
                    observer=observer,
                    deadline_s=deadline_s,
                    record_edges=fault_tolerant,
                    cache=cache,
                    engine=engine,
                )
            except ReproError as exc:
                if fault_tolerant:
                    from repro.fault.triage import failure_record

                    METRICS.counter(
                        "harness.workload_failures", error=type(exc).__name__
                    ).inc()
                    log.error("workload %s failed: %s", name, exc)
                    failure = failure_record(name, exc)
                else:
                    error = exc
    finally:
        if trace_ctx is not None:
            trace.end_trace(trace_token)
        events.set_sink(previous)
    return {
        "name": name,
        "pair": pair,
        "failure": failure,
        "error": error,
        "metrics": METRICS.snapshot(),
        "spans": RECORDER.snapshot(),
        "events": sink.events,
    }


def run_suite_parallel(
    workloads,
    limit,
    branchreg_options=None,
    jobs=2,
    fault_tolerant=False,
    deadline_s=None,
    limit_overrides=None,
    cache_dir=None,
    sample_every=None,
    engine=None,
):
    """Fan the suite out to worker processes; returns a ``SuiteResult``.

    ``workloads`` is the already-resolved (registry-ordered) workload
    list; results are reassembled in that order no matter which worker
    finishes first.  Worker telemetry -- metrics, spans, failure records,
    and the event stream (replayed into the parent's sink when one is
    attached, merged by monotonic timestamp) -- is folded into the parent
    recorders in the same deterministic order.

    ``sample_every`` attaches a per-worker
    :class:`~repro.obs.emuobs.EmulationObserver` (an observer object
    itself cannot cross the process boundary).  ``cache_dir`` selects the
    persistent artifact cache root (see :func:`resolve_cache_dir`).

    When a workload raises and ``fault_tolerant`` is false, the remaining
    tasks still complete (they are already in flight), telemetry is
    folded for every workload up to and including the failing one, and
    the *registry-earliest* error is re-raised -- matching which error a
    serial run would have surfaced.
    """
    from repro.harness.runner import SuiteResult

    jobs = max(1, int(jobs))
    options = tuple(sorted((branchreg_options or {}).items()))
    overrides = limit_overrides or {}
    cache_root = resolve_cache_dir(cache_dir)
    # Capture the active trace context (None when untraced): workers
    # re-activate it so their spans join this run's trace, parented to
    # the enclosing (suite) span.
    trace_ctx = trace.task_context()
    tasks = [
        (
            w.name,
            overrides.get(w.name, limit),
            options,
            fault_tolerant,
            deadline_s,
            sample_every,
            cache_root,
            engine,
            trace_ctx,
        )
        for w in workloads
    ]
    METRICS.gauge("harness.jobs").set(jobs)
    log.info(
        "parallel suite: %d workload(s) across %d job(s)%s",
        len(tasks), jobs,
        " (cache %s)" % cache_root if cache_root else "",
    )
    results = map_tasks(_run_workload_task, tasks, jobs)
    pairs = []
    failures = []
    collected = []
    error = None
    for result in results:  # registry order == task order
        METRICS.merge_snapshot(result["metrics"])
        RECORDER.merge_rows(result["spans"])
        collected.append(result["events"])
        if result["error"] is not None:
            error = result["error"]
            break
        if result["pair"] is not None:
            pairs.append(result["pair"])
        if result["failure"] is not None:
            failures.append(result["failure"])
    if events.enabled():
        events.replay(events.merge_events(*collected))
    if error is not None:
        raise error
    return SuiteResult(pairs, failures)


# --------------------------------------------------------------------------
# Parallel single-program run (``repro run --jobs``)
# --------------------------------------------------------------------------

def _run_machine_task(task):
    """Worker entry point: compile and run one program on one machine."""
    (source, machine, stdin, limit, name, options, cache_root, engine) = task
    from repro.ease.environment import run_on_machine

    return run_on_machine(
        source,
        machine,
        stdin=stdin,
        limit=limit,
        name=name,
        cache=_worker_cache(cache_root),
        engine=engine,
        **(dict(options) if options else {}),
    )


def run_pair_parallel(
    source, stdin=b"", limit=None, name="", branchreg_options=None,
    jobs=2, cache_dir=None, engine=None,
):
    """Run one program on both machines concurrently and cross-check the
    outputs -- the two-process analogue of
    :func:`repro.ease.environment.run_pair`."""
    from repro.ease.environment import PairResult, crosscheck_pair

    options = tuple(sorted((branchreg_options or {}).items()))
    cache_root = resolve_cache_dir(cache_dir)
    base_task = (
        source, "baseline", stdin, limit, name, (), cache_root, engine,
    )
    br_task = (
        source, "branchreg", stdin, limit, name, options, cache_root, engine,
    )
    base_stats, br_stats = map_tasks(
        _run_machine_task, [base_task, br_task], jobs
    )
    crosscheck_pair(name, base_stats, br_stats)
    return PairResult(name=name, baseline=base_stats, branchreg=br_stats)
