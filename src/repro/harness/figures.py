"""Figure reproductions.

* Figures 2-4: the strlen example compiled for both machines;
* Figures 5/7: pipeline-delay diagrams for the three machine styles;
* Figures 6/8: per-cycle pipeline action traces;
* Figure 9: delay as a function of calculation-to-transfer distance.
"""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.lang.frontend import compile_to_ir
from repro.pipeline.diagrams import (
    conditional_diagram,
    fig6_actions,
    fig8_actions,
    fig9_table,
    unconditional_diagram,
)
from repro.rtl.printer import listing

# The paper's Figure 2, verbatim in spirit.
STRLEN_SOURCE = r"""
int strlen(char *s) {
    int n = 0;
    if (s)
        for (; *s; s++)
            n++;
    return n;
}

int main() {
    return strlen("twelve chars");
}
"""


def _function_body(mprog, name):
    fn = mprog.function(name)
    return [ins for ins in fn.instrs if not ins.is_label()]


def _loop_instruction_count(mprog, name):
    """Instructions between the loop-body label and the final conditional
    carrier, inclusive -- the per-iteration cost the paper compares
    (six baseline vs five branch-register instructions)."""
    fn = mprog.function(name)
    body_start = None
    count = 0
    for ins in fn.instrs:
        if ins.is_label() and ins.label.startswith("Lbody"):
            body_start = True
            continue
        if body_start and not ins.is_label():
            count += 1
            if ins.op in ("bcc", "fbcc"):
                # The delay-slot instruction executes every iteration too.
                return count + 1
            if getattr(ins, "tkind", None) == "cond":
                return count
            if ins.op == "retrt" or getattr(ins, "tkind", None) == "return":
                break
    return count


def strlen_example():
    """Figures 2-4: compile strlen for both machines.

    Returns a dict with both listings and the instruction counts the paper
    compares (total function size and loop size).
    """
    baseline_prog = generate_baseline(compile_to_ir(STRLEN_SOURCE))
    branchreg_prog = generate_branchreg(compile_to_ir(STRLEN_SOURCE))
    base_body = _function_body(baseline_prog, "strlen")
    br_body = _function_body(branchreg_prog, "strlen")
    base_fn = baseline_prog.function("strlen")
    br_fn = branchreg_prog.function("strlen")
    result = {
        "source": STRLEN_SOURCE,
        "baseline_listing": listing(base_fn.instrs),
        "branchreg_listing": listing(br_fn.instrs),
        "baseline_total": len(base_body),
        "branchreg_total": len(br_body),
        "baseline_loop": _loop_instruction_count(baseline_prog, "strlen"),
        "branchreg_loop": _loop_instruction_count(branchreg_prog, "strlen"),
    }
    result["text"] = (
        "Figure 3 (baseline machine, delayed branches):\n%s\n\n"
        "Figure 4 (branch-register machine):\n%s\n\n"
        "totals: baseline %d instructions (%d in loop), "
        "branch-register %d instructions (%d in loop)"
        % (
            result["baseline_listing"],
            result["branchreg_listing"],
            result["baseline_total"],
            result["baseline_loop"],
            result["branchreg_total"],
            result["branchreg_loop"],
        )
    )
    return result


def fig5_unconditional_delays(stages=3):
    """Figure 5: per-machine unconditional-transfer delays and diagrams."""
    out = {}
    for machine in ("no-delay", "delayed", "branchreg"):
        diagram, delay = unconditional_diagram(machine, stages)
        out[machine] = {"diagram": diagram, "delay": delay}
    return out


def fig7_conditional_delays(stages=3):
    """Figure 7: per-machine conditional-transfer delays and diagrams."""
    out = {}
    for machine in ("no-delay", "delayed", "branchreg"):
        diagram, delay = conditional_diagram(machine, stages)
        out[machine] = {"diagram": diagram, "delay": delay}
    return out


def fig6_trace():
    return fig6_actions()


def fig8_trace():
    return fig8_actions()


def fig9_prefetch_distance(stages=3, cache_delay=1):
    """Figure 9: distance needed to hide the target prefetch."""
    table = fig9_table(stages=stages, cache_delay=cache_delay)
    safe = [d for d, delay in table if delay == 0]
    return {
        "table": table,
        "min_safe_distance": min(safe) if safe else None,
    }


def main():
    print(strlen_example()["text"])
    print()
    for machine, info in fig5_unconditional_delays().items():
        print(info["diagram"])
        print("delay: %d cycles" % info["delay"])
        print()
    for machine, info in fig7_conditional_delays().items():
        print(info["diagram"])
        print("delay: %d cycles" % info["delay"])
        print()
    print("Figure 9:", fig9_prefetch_distance())


if __name__ == "__main__":
    main()
