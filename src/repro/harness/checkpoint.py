"""Crash-consistent suite checkpointing (schema ``repro.checkpoint/1``).

A checkpoint journal is an append-only JSON-lines file recording the
outcome of every completed (workload, machine-pair) task of one suite
run, so that ``--resume`` after a coordinator crash or Ctrl-C re-executes
only the unfinished work and reassembles results *byte-identical* to an
uninterrupted run.

File layout::

    {"schema": "repro.checkpoint/1", "run_key": "<sha256>", ...}   # header
    {"type": "task", "workload": "wc", "status": "ok", ...}        # 1/record
    ...

Each task record carries its result -- the pickled
:class:`~repro.ease.environment.PairResult` for ``ok`` tasks, the
structured failure record for ``failure``/``quarantined`` tasks -- as a
zlib-compressed base64 payload guarded by its own SHA-256, so a torn
write (coordinator killed mid-append) is *detected and dropped* on load
rather than resurrected as a corrupt result.  Records are flushed and
fsynced as they are written: everything before a crash is durable.

The ``run_key`` hashes the full run configuration (workload names,
instruction limit and per-workload overrides, codegen options, engine,
fault tolerance, deadline, package version).  A journal is only resumed
by a run with the *same* key; any other configuration starts fresh, so a
stale journal can never leak results into a differently-parameterised
run.  See ``docs/ROBUSTNESS.md`` ("Checkpoint / resume").
"""

import base64
import hashlib
import json
import os
import pickle
import zlib

from repro.obs import METRICS, log

CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Default journal path used by the CLI's ``--resume`` when no
#: ``--checkpoint`` path was given.
DEFAULT_CHECKPOINT = ".repro.checkpoint.jsonl"

#: Valid terminal statuses for a task record.
_STATUSES = ("ok", "failure", "quarantined")


def checkpoint_run_key(
    names,
    limit,
    options=(),
    engine=None,
    limit_overrides=None,
    fault_tolerant=False,
    deadline_s=None,
    sample_every=None,
):
    """SHA-256 over the full run configuration (plus package version).

    Two runs share a journal only when every parameter that can change a
    task's result is identical -- the same rule the artifact cache uses
    for compiled images.
    """
    from repro import __version__

    payload = repr(
        (
            tuple(names) if names is not None else None,
            limit,
            tuple(sorted(options or ())),
            engine,
            tuple(sorted((limit_overrides or {}).items())),
            bool(fault_tolerant),
            deadline_s,
            sample_every,
            __version__,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _encode_payload(obj):
    raw = zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), 6)
    return (
        base64.b64encode(raw).decode("ascii"),
        hashlib.sha256(raw).hexdigest(),
    )


def _decode_payload(text, digest):
    raw = base64.b64decode(text.encode("ascii"), validate=True)
    if hashlib.sha256(raw).hexdigest() != digest:
        raise ValueError("payload checksum mismatch")
    return pickle.loads(zlib.decompress(raw))


class CheckpointJournal:
    """One suite run's append-only checkpoint journal.

    Use :meth:`open` rather than the constructor: it decides between
    resuming an existing journal (header ``run_key`` matches) and
    starting a fresh one, and loads the surviving records either way.
    """

    def __init__(self, path, run_key):
        self.path = str(path)
        self.run_key = run_key
        #: workload name -> {"status", "attempts", "result"} for every
        #: valid record loaded from disk (last record per name wins).
        self.entries = {}
        self._handle = None

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, path, run_key, resume=False):
        """Open (and, with ``resume``, reload) a journal for ``run_key``.

        Without ``resume`` any existing file is truncated.  With it, the
        existing records are kept only when the header's ``run_key``
        matches; a mismatched or unreadable journal is started over --
        resuming someone else's configuration would be silent corruption.
        """
        journal = cls(path, run_key)
        if resume:
            journal._load()
        journal._open_for_append(fresh=not journal.entries)
        return journal

    def _load(self):
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            log.warning("checkpoint %s has a corrupt header; starting fresh",
                        self.path)
            return
        if (
            header.get("schema") != CHECKPOINT_SCHEMA
            or header.get("run_key") != self.run_key
        ):
            log.warning(
                "checkpoint %s belongs to a different run configuration; "
                "starting fresh", self.path,
            )
            return
        dropped = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            record = self._parse_record(line)
            if record is None:
                dropped += 1
                continue
            self.entries[record["workload"]] = record
        if dropped:
            log.warning(
                "checkpoint %s: dropped %d torn/corrupt record(s)",
                self.path, dropped,
            )

    def _parse_record(self, line):
        """One task record, or None for a torn/corrupt line."""
        try:
            doc = json.loads(line)
            if doc.get("type") != "task":
                return None
            name = doc["workload"]
            status = doc["status"]
            if status not in _STATUSES:
                return None
            result = _decode_payload(doc["payload"], doc["sha256"])
            return {
                "workload": name,
                "status": status,
                "attempts": int(doc.get("attempts", 1)),
                "result": result,
            }
        except Exception:
            return None

    def _open_for_append(self, fresh):
        if fresh:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write_line(
                {"schema": CHECKPOINT_SCHEMA, "run_key": self.run_key}
            )
        else:
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- recording ---------------------------------------------------------

    def _write_line(self, doc):
        self._handle.write(json.dumps(doc, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, name, status, result, attempts=1):
        """Append one durable task record (``status`` in ``ok`` /
        ``failure`` / ``quarantined``; ``result`` is the PairResult or
        the structured failure record)."""
        if status not in _STATUSES:
            raise ValueError("bad checkpoint status %r" % status)
        payload, digest = _encode_payload(result)
        self._write_line(
            {
                "type": "task",
                "workload": name,
                "status": status,
                "attempts": int(attempts),
                "payload": payload,
                "sha256": digest,
            }
        )
        self.entries[name] = {
            "workload": name,
            "status": status,
            "attempts": int(attempts),
            "result": result,
        }
        METRICS.counter("harness.checkpoint", result="write").inc()

    def get(self, name):
        """The loaded record for ``name`` (None when not checkpointed)."""
        return self.entries.get(name)

    def close(self):
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
