"""Benchmark: supervision overhead on a clean run.

``docs/ROBUSTNESS.md`` promises the supervised coordinator is close to
free when nothing goes wrong: on a warm artifact cache with ``--jobs 4``
and no injected faults, a supervised suite run must stay within
``OVERHEAD_CEILING`` of the plain parallel pool.  (The crash-recovery
and checkpoint machinery only spends time on the failure paths.)

Both arms run over the same warm cache, several rounds each with the
min taken, so the comparison isolates coordinator overhead from compile
time and scheduler noise.
"""

import os
import time

import pytest

from repro.harness.parallel import run_suite_parallel
from repro.harness.runner import resolve_workloads, run_suite
from repro.workloads import all_workloads

SUBSET = tuple(w.name for w in all_workloads())  # the full Appendix I suite
OVERHEAD_CEILING = 1.05  # supervised <= 5% slower than the plain pool
ROUNDS = 3


def _measure_overhead(cache_dir):
    run_suite_parallel(  # warm the on-disk artifact cache
        resolve_workloads(SUBSET), limit=20_000_000, jobs=2,
        cache_dir=cache_dir,
    )
    plain_times, supervised_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_suite(subset=SUBSET, use_cache=False, jobs=4, cache_dir=cache_dir)
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_suite(
            subset=SUBSET, use_cache=False, jobs=4, cache_dir=cache_dir,
            supervise=True,
        )
        supervised_times.append(time.perf_counter() - start)
    return {
        "plain_s": min(plain_times),
        "supervised_s": min(supervised_times),
        "overhead": min(supervised_times) / min(plain_times),
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="needs >= 4 cores for a meaningful --jobs 4 comparison "
    "(CI enforces the overhead ceiling)",
)
def test_supervision_overhead_under_five_percent(once, tmp_path):
    result = once(_measure_overhead, str(tmp_path / "artifacts"))
    print()
    print(
        "suite wall time: plain %.2fs, supervised %.2fs, overhead %.2fx"
        % (result["plain_s"], result["supervised_s"], result["overhead"])
    )
    assert result["overhead"] <= OVERHEAD_CEILING, (
        "supervised clean run is %.2fx the plain pool (ceiling %.2fx)"
        % (result["overhead"], OVERHEAD_CEILING)
    )
