"""Benchmark: the Sections 8-9 instruction-cache study.

Regenerates the prefetch experiment the paper proposes as future work:
branch-register prefetching should reduce fetch stalls relative to the
same machine without prefetching, and pollution (unused prefetched lines)
should stay small.
"""

from repro.harness.cache9 import run_alignment_study, run_cache_study


def test_cache_study(once):
    result = once(
        run_cache_study,
        subset=("wc", "grep", "sort"),
        configs=((64, 4, 1), (64, 4, 2), (128, 4, 2), (128, 8, 2), (256, 4, 2)),
    )
    print()
    print(result["text"])
    by_key = {(r.config, r.machine): r for r in result["runs"]}
    for config in ("64w/4w-line/2-way", "128w/4w-line/2-way", "256w/4w-line/2-way"):
        with_pf = by_key[(config, "branchreg")]
        without = by_key[(config, "branchreg-nopf")]
        # Section 8: prefetching hides or shortens target-fetch misses.
        assert with_pf.stalls <= without.stalls
        # Section 9: pollution from unused prefetches stays small.
        covered = with_pf.stats.fully_covered + with_pf.stats.partial_covered
        if covered:
            assert with_pf.stats.unused_prefetches < max(20, covered)


def test_alignment_study(once):
    """Section 9: line-aligned function entries should not hurt, and
    typically help, the branch-register machine's fetch stalls."""
    result = once(run_alignment_study, subset=("wc", "grep"))
    print()
    print("alignment study:", result)
    assert result["aligned"] <= result["unaligned"] * 1.05
