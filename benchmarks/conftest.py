"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
heavyweight suite runs are executed once per configuration
(``benchmark.pedantic`` with a single round); pytest-benchmark still
reports the wall time of regenerating each artefact.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavyweight experiment exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
