"""Benchmark: the Section 9 ablations.

* branch-register count sweep ("The available number of these registers
  ... could be varied to determine the most cost effective combination");
* the three Section 5 compiler mechanisms toggled individually -- without
  them the branch-register machine *loses* to the baseline, matching the
  paper's Section 5 framing ("Initially, it may seem there is no advantage
  to the branch register approach. Indeed, it appears more expensive...").
"""

from repro.harness.ablation import (
    ablation_text,
    sweep_branch_registers,
    sweep_optimizations,
)
from repro.harness.runner import FAST_SUBSET


def test_branch_register_sweep(once):
    rows = once(sweep_branch_registers, counts=(4, 6, 8, 12), subset=FAST_SUBSET)
    print()
    print(ablation_text(rows, []))
    changes = [row["instr_change"] for row in rows]
    # More branch registers monotonically help (or at least never hurt).
    assert changes[-1] <= changes[0]
    assert all(later <= earlier + 0.01 for earlier, later in zip(changes, changes[1:]))
    # With 8 registers (the paper's machine) the win is substantial.
    eight = next(r for r in rows if r["branch_regs"] == 8)
    assert eight["instr_change"] < -0.03


def test_optimization_ablation(once):
    rows = once(sweep_optimizations, subset=FAST_SUBSET)
    print()
    print(ablation_text([], rows))
    by_name = {r["config"]: r for r in rows}
    full = by_name["full"]["instr_change"]
    # Each mechanism contributes; hoisting dominates.
    assert by_name["no-hoisting"]["instr_change"] > full
    assert by_name["no-carrier-fill"]["instr_change"] >= full
    assert by_name["no-noop-replace"]["instr_change"] >= full - 0.001
    # With nothing enabled the approach loses its advantage almost
    # entirely (Section 5's 'initially it appears more expensive').
    assert by_name["none"]["instr_change"] > full + 0.05
