"""Benchmark: Figures 10-11 -- every generated instruction for the whole
suite fits its machine's 32-bit instruction formats."""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.lang.frontend import compile_to_ir
from repro.machine.encoding import validate_program
from repro.workloads import all_workloads


def _encode_suite():
    totals = {"baseline": 0, "branchreg": 0}
    for w in all_workloads():
        totals["baseline"] += validate_program(
            generate_baseline(compile_to_ir(w.source))
        )
        totals["branchreg"] += validate_program(
            generate_branchreg(compile_to_ir(w.source))
        )
    return totals


def test_fig10_11_formats(once):
    totals = once(_encode_suite)
    print()
    print("static code size (words): %r" % totals)
    assert totals["baseline"] > 4000
    assert totals["branchreg"] > 4000
    # The branch-register machine trades branch instructions for address
    # calculations; static size stays in the same ballpark.
    ratio = totals["branchreg"] / totals["baseline"]
    assert 0.9 < ratio < 1.2
