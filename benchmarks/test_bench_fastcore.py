"""Benchmark: the predecoded fast core against the reference loop.

``docs/PERFORMANCE.md`` promises that the fast engine retires the
Appendix I suite's dynamic instruction stream at least 2x faster than
the reference interpreter while staying bit-identical (the conformance
suite proves the identity; this file measures the speed).

All images are compiled once up front and ``reset()`` between runs, so
the measurement is pure emulation -- no compile or I/O time on either
arm.  The reference arm runs first so warm-up effects can only hurt,
not help, the asserted ratio.
"""

import time

import pytest

from repro.ease.environment import compile_for_machine
from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.workloads import all_workloads

SPEEDUP_FLOOR = 2.0
LIMIT = 20_000_000

_EMULATORS = {"baseline": BaselineEmulator, "branchreg": BranchRegEmulator}


def _compile_suite():
    images = []
    for w in all_workloads():
        for machine in ("baseline", "branchreg"):
            images.append(
                (machine, compile_for_machine(w.source, machine),
                 w.stdin_bytes(), w.name)
            )
    return images


def _run_suite(images, engine):
    instructions = 0
    start = time.perf_counter()
    for machine, image, stdin, name in images:
        emu = _EMULATORS[machine](
            image.reset(), stdin=stdin, limit=LIMIT, engine=engine
        )
        emu.stats.program = name
        stats = emu.run()
        assert stats.engine == engine, (name, machine, emu.fast_fallback)
        instructions += stats.instructions
    return instructions, time.perf_counter() - start


def _measure():
    images = _compile_suite()
    ref_instr, ref_s = _run_suite(images, "reference")
    fast_instr, fast_s = _run_suite(images, "fast")
    assert ref_instr == fast_instr  # same retired stream, by construction
    return {
        "instructions": ref_instr,
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup": ref_s / fast_s,
        "fast_mips": ref_instr / fast_s / 1e6,
    }


@pytest.mark.benchmark(group="fastcore")
def test_fast_core_speedup(once):
    """The fast engine runs the whole suite >= 2x faster than the
    reference loop (typically ~3x; the floor absorbs noisy containers)."""
    result = once(_measure)
    print(
        "\nfast core: %.2fx speedup (reference %.2fs, fast %.2fs, "
        "%.1fM instructions, %.2f MIPS fast)"
        % (
            result["speedup"], result["reference_s"], result["fast_s"],
            result["instructions"] / 1e6, result["fast_mips"],
        )
    )
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        "fast core speedup %.2fx below the %.1fx floor"
        % (result["speedup"], SPEEDUP_FLOOR)
    )
