"""Benchmark: parallel suite speedup and artifact-cache savings.

Two promises from ``docs/PERFORMANCE.md`` are measured here:

* ``--jobs 4`` runs the suite at least 2x faster than ``--jobs 1`` on a
  warm artifact cache (needs >= 4 real cores; skipped below that, which
  keeps the assertion honest on small containers while CI enforces it);
* a warm artifact cache serves an image measurably faster than
  recompiling it from source, on any machine.

Both arms of the speedup measurement use the same warm on-disk cache so
only the fan-out differs, and the serial arm runs first so the parallel
arm can never win by cache warmth alone.
"""

import os
import time

import pytest

from repro.harness.parallel import ArtifactCache, run_suite_parallel
from repro.harness.runner import resolve_workloads, run_suite
from repro.obs.metrics import MetricsRegistry
from repro.workloads import all_workloads

SUBSET = tuple(w.name for w in all_workloads())  # the full Appendix I suite
SPEEDUP_FLOOR = 2.0
COMPILE_ROUNDS = 3


def _warm_cache(cache_dir):
    run_suite_parallel(
        resolve_workloads(SUBSET), limit=20_000_000, jobs=2, cache_dir=cache_dir
    )


def _measure_speedup(cache_dir):
    _warm_cache(cache_dir)
    start = time.perf_counter()
    run_suite(subset=SUBSET, use_cache=False, jobs=1, cache_dir=cache_dir)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run_suite(subset=SUBSET, use_cache=False, jobs=4, cache_dir=cache_dir)
    parallel_s = time.perf_counter() - start
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
    }


def _measure_cache_savings(cache_dir):
    """Min-of-rounds cold-compile vs warm-cache time for every image in
    the suite (both machines)."""
    workloads = resolve_workloads(SUBSET)

    def compile_all(cache):
        for w in workloads:
            for machine in ("baseline", "branchreg"):
                if cache is None:
                    from repro.ease.environment import compile_for_machine

                    compile_for_machine(w.source, machine)
                else:
                    cache.get_image(w.source, machine)

    cache = ArtifactCache(cache_dir, registry=MetricsRegistry())
    compile_all(cache)  # populate disk + memory layers
    warm = ArtifactCache(cache_dir, registry=MetricsRegistry())
    cold_times, warm_times = [], []
    for _ in range(COMPILE_ROUNDS):
        start = time.perf_counter()
        compile_all(None)
        cold_times.append(time.perf_counter() - start)
        warm._mem.clear()  # measure the disk path, not the dict lookup
        start = time.perf_counter()
        compile_all(warm)
        warm_times.append(time.perf_counter() - start)
    return {
        "cold_s": min(cold_times),
        "warm_s": min(warm_times),
        "speedup": min(cold_times) / min(warm_times),
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="needs >= 4 cores for a meaningful --jobs 4 speedup "
    "(CI enforces the 2x floor)",
)
def test_four_jobs_at_least_twice_as_fast(once, tmp_path):
    result = once(_measure_speedup, str(tmp_path / "artifacts"))
    print()
    print(
        "suite wall time: jobs=1 %.2fs, jobs=4 %.2fs, speedup %.2fx"
        % (result["serial_s"], result["parallel_s"], result["speedup"])
    )
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        "--jobs 4 speedup %.2fx is below the %.1fx floor"
        % (result["speedup"], SPEEDUP_FLOOR)
    )


def test_warm_artifact_cache_beats_recompiling(once, tmp_path):
    result = once(_measure_cache_savings, str(tmp_path / "artifacts"))
    print()
    print(
        "suite compiles: cold %.2fs, warm cache %.2fs, speedup %.2fx"
        % (result["cold_s"], result["warm_s"], result["speedup"])
    )
    assert result["warm_s"] < result["cold_s"], (
        "loading cached artifacts (%.2fs) should beat recompiling (%.2fs)"
        % (result["warm_s"], result["cold_s"])
    )
