"""Benchmarks: regenerate Figures 2-9.

* Figures 2-4: the strlen example on both machines (paper: 14 vs 11
  instructions, 6 vs 5 inside the loop);
* Figures 5/7: the per-machine pipeline-delay ladders;
* Figures 6/8: the per-cycle action traces;
* Figure 9: the minimum calculation-to-transfer distance.
"""

from repro.harness.figures import (
    fig5_unconditional_delays,
    fig6_trace,
    fig7_conditional_delays,
    fig8_trace,
    fig9_prefetch_distance,
    strlen_example,
)


def test_fig2_4_strlen(once):
    result = once(strlen_example)
    print()
    print(result["text"])
    # Paper: branch-register strlen is smaller overall and in the loop
    # (11 vs 14 total there; exact totals depend on conventions, the
    # loop bodies match exactly: 5 vs 6).
    assert result["branchreg_total"] < result["baseline_total"]
    assert result["baseline_loop"] == 6
    assert result["branchreg_loop"] == 5


def test_fig5(benchmark):
    delays = benchmark(fig5_unconditional_delays, 3)
    print()
    for machine, info in delays.items():
        print(info["diagram"])
    assert delays["no-delay"]["delay"] == 2
    assert delays["delayed"]["delay"] == 1
    assert delays["branchreg"]["delay"] == 0


def test_fig6(benchmark):
    actions = benchmark(fig6_trace)
    assert len(actions) == 3


def test_fig7(benchmark):
    delays = benchmark(fig7_conditional_delays, 3)
    print()
    for machine, info in delays.items():
        print(info["diagram"])
    assert delays["no-delay"]["delay"] == 2
    assert delays["delayed"]["delay"] == 1
    assert delays["branchreg"]["delay"] == 0  # N-3 with N=3


def test_fig8(benchmark):
    actions = benchmark(fig8_trace)
    assert len(actions) == 4


def test_fig9(benchmark):
    result = benchmark(fig9_prefetch_distance, 3)
    print()
    print("distance -> delay:", result["table"])
    assert result["min_safe_distance"] == 2
