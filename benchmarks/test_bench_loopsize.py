"""Benchmark: Section 9's small-cache argument -- loop bodies shrink.

"Since instructions to calculate branch target addresses can be moved out
of loops, the number of instructions in loops will be fewer.  This may
improve cache performance in machines with small on-chip caches."
"""

from repro.harness.loopsize import run_loop_size_study


def test_loop_bodies_shrink(once):
    result = once(run_loop_size_study)
    print()
    print(result["text"])
    assert result["branchreg_total"] < result["baseline_total"]
    # Every single program's static loop footprint shrinks.
    for row in result["rows"]:
        assert row["branchreg"] <= row["baseline"], row["program"]
    shrink = 1 - result["branchreg_total"] / result["baseline_total"]
    assert shrink > 0.05
