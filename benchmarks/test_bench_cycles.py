"""Benchmark: regenerate the Section 7 pipeline cycle estimates.

Paper values (3-stage pipeline): baseline ~122.82M cycles; the
branch-register machine needs 10.6% fewer, with only 13.86% of its
transfers incurring a prefetch delay; a 4-stage pipeline increases the
absolute advantage.
"""

from repro.harness.cycles7 import run_cycle_estimate


def test_cycles_full_suite(once):
    result = once(run_cycle_estimate, stages_list=(3, 4, 5))
    print()
    print(result["text"])
    est3, est4, est5 = result["estimates"]
    # The branch-register machine wins at every depth.
    for est in (est3, est4, est5):
        assert est["branchreg"].cycles < est["baseline"].cycles
        assert est["baseline"].cycles < est["no_delay"].cycles
    # Double-digit percentage saving at three stages (paper: 10.6%).
    assert est3["saving_vs_baseline"] > 0.10
    # Only a minority of transfers are delayed at three stages
    # (paper: 13.86%).
    assert est3["delayed_fraction"] < 0.35
    # Deeper pipelines widen the absolute cycle advantage.
    adv = [
        est["baseline"].cycles - est["branchreg"].cycles
        for est in (est3, est4, est5)
    ]
    assert adv[0] < adv[1] < adv[2]
