"""Benchmark: instrumentation overhead of the observability layer.

The run manifests promise that attaching an :class:`EmulationObserver`
(plus the always-on metrics/span bookkeeping) costs less than 10% of
emulation wall time versus running with observation disabled.  This
benchmark measures exactly that: each workload image is compiled once,
then emulated with and without an observer in interleaved rounds (so OS
noise and cache warmth hit both arms equally), and the enabled/disabled
time ratio must stay under the budget.
"""

import time

from repro.ease.environment import compile_for_machine
from repro.emu.branchreg_emu import run_branchreg
from repro.obs.emuobs import EmulationObserver
from repro.obs.metrics import MetricsRegistry
from repro.workloads import all_workloads

# Enough dynamic instructions to dwarf per-run setup, small enough to
# keep the benchmark quick.
SUBSET = ("wc", "sort", "sieve")
ROUNDS = 3
OVERHEAD_BUDGET = 1.10


def _emulate_all(images, observer=None):
    for name, (image, stdin) in images.items():
        run_branchreg(image.reset(), stdin=stdin, program=name, observer=observer)


def _measure_overhead():
    workloads = {w.name: w for w in all_workloads() if w.name in SUBSET}
    images = {
        name: (compile_for_machine(w.source, "branchreg"), w.stdin_bytes())
        for name, w in workloads.items()
    }
    observer = EmulationObserver(sample_every=65536, registry=MetricsRegistry())
    _emulate_all(images)  # warm-up round, not timed
    disabled = enabled = 0.0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _emulate_all(images)
        disabled += time.perf_counter() - start
        start = time.perf_counter()
        _emulate_all(images, observer=observer)
        enabled += time.perf_counter() - start
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "ratio": enabled / disabled,
        "observed_runs": observer.runs,
    }


def test_observer_overhead_under_budget(once):
    result = once(_measure_overhead)
    print()
    print(
        "observability overhead: disabled %.3fs, enabled %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["observed_runs"] == ROUNDS * len(SUBSET)
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "instrumentation overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )
