"""Benchmark: instrumentation overhead of the observability layer.

The run manifests promise that attaching an :class:`EmulationObserver`
(plus the always-on metrics/span bookkeeping) costs less than 10% of
emulation wall time versus running with observation disabled, and the
execution profiler (:class:`ExecutionProfiler`) makes the same promise
for ``repro profile``.  This benchmark measures exactly that: each
workload image is compiled once, then emulated with and without the
instrument attached in interleaved rounds (so OS noise and cache warmth
hit both arms equally), and the enabled/disabled time ratio must stay
under the budget.

Two further gates cover the tracing layer: a fully armed trace context
(event sink + span stamping, what ``repro trace`` runs under) must stay
inside the same overhead budget on whole suite runs, and the fast core's
sampling loop must beat the reference observed loop by at least 1.5x --
otherwise the ``--observe`` fast path would not be worth its complexity.
"""

import time

from repro.ease.environment import compile_for_machine
from repro.emu.branchreg_emu import run_branchreg
from repro.obs.emuobs import EmulationObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ExecutionProfiler
from repro.workloads import all_workloads

# Enough dynamic instructions to dwarf per-run setup, small enough to
# keep the benchmark quick.
SUBSET = ("wc", "sort", "sieve")
ROUNDS = 5
OVERHEAD_BUDGET = 1.10


def _emulate_all(images, observer=None, profiled=False, engine=None):
    for name, (image, stdin) in images.items():
        run_branchreg(
            image.reset(),
            stdin=stdin,
            program=name,
            observer=observer,
            profiler=ExecutionProfiler() if profiled else None,
            engine=engine,
        )


def _compile_subset():
    workloads = {w.name: w for w in all_workloads() if w.name in SUBSET}
    return {
        name: (compile_for_machine(w.source, "branchreg"), w.stdin_bytes())
        for name, w in workloads.items()
    }


def _timed_rounds(run_disabled, run_enabled):
    """Interleaved per-round wall times for both arms.  The *minimum*
    round is each arm's cost estimate: OS noise is strictly additive, so
    the fastest round is the closest observation of the true cost and the
    min/min ratio is far more stable than a sum ratio under load."""
    disabled = []
    enabled = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_disabled()
        disabled.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_enabled()
        enabled.append(time.perf_counter() - start)
    return {
        "disabled_s": min(disabled),
        "enabled_s": min(enabled),
        "ratio": min(enabled) / min(disabled),
    }


def _measure_overhead():
    images = _compile_subset()
    observer = EmulationObserver(sample_every=65536, registry=MetricsRegistry())
    _emulate_all(images)  # warm-up round, not timed
    result = _timed_rounds(
        lambda: _emulate_all(images),
        lambda: _emulate_all(images, observer=observer),
    )
    result["observed_runs"] = observer.runs
    return result


def _measure_profiler_overhead():
    # The profiler forces the reference loop (see the fallback matrix in
    # docs/PERFORMANCE.md), so both arms pin engine="reference": the
    # budget gates the *instrument's* marginal cost, not the unrelated
    # fast-vs-reference engine gap.
    images = _compile_subset()
    _emulate_all(images, engine="reference")  # warm-up round, not timed
    _emulate_all(images, profiled=True)
    return _timed_rounds(
        lambda: _emulate_all(images, engine="reference"),
        lambda: _emulate_all(images, profiled=True),
    )


def test_observer_overhead_under_budget(once):
    result = once(_measure_overhead)
    print()
    print(
        "observability overhead: disabled %.3fs, enabled %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["observed_runs"] == ROUNDS * len(SUBSET)
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "instrumentation overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )


def _measure_tracing_overhead():
    """Suite runs with the tracing layer fully armed (trace context +
    in-memory event sink, what ``repro trace`` does) versus bare suite
    runs.  Stamping is two dict writes per event and a tuple per span,
    so the ratio must stay inside the observability budget."""
    from repro.harness.runner import run_suite
    from repro.obs import events, trace

    def plain():
        run_suite(subset=SUBSET, use_cache=False)

    def traced():
        sink = events.MemorySink(max_events=1_000_000)
        previous = events.set_sink(sink)
        token = trace.start_trace()
        try:
            run_suite(subset=SUBSET, use_cache=False)
        finally:
            trace.end_trace(token)
            events.set_sink(previous)

    plain()  # warm-up round, not timed
    return _timed_rounds(plain, traced)


def _measure_observed_engines():
    """The fast core's sampling loop versus the reference observed loop,
    same observer cadence, same images."""
    images = _compile_subset()

    def observed(engine):
        for name, (image, stdin) in images.items():
            run_branchreg(
                image.reset(),
                stdin=stdin,
                program=name,
                engine=engine,
                observer=EmulationObserver(
                    sample_every=65536, registry=MetricsRegistry()
                ),
            )

    observed("fast")  # warm-up round, not timed
    result = _timed_rounds(
        lambda: observed("fast"), lambda: observed("reference")
    )
    return {
        "fast_s": result["disabled_s"],
        "reference_s": result["enabled_s"],
        "speedup": result["ratio"],
    }


def test_tracing_overhead_under_budget(once):
    result = once(_measure_tracing_overhead)
    print()
    print(
        "tracing overhead: untraced %.3fs, traced %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "tracing overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )


def test_observed_fast_core_beats_reference(once):
    result = once(_measure_observed_engines)
    print()
    print(
        "observed engines: fast %.3fs, reference %.3fs, speedup %.2fx"
        % (result["fast_s"], result["reference_s"], result["speedup"])
    )
    assert result["speedup"] >= 1.5, (
        "observed fast core only %.2fx faster than the reference loop "
        "(needs >= 1.5x)" % result["speedup"]
    )


def test_profiler_overhead_under_budget(once):
    result = once(_measure_profiler_overhead)
    print()
    print(
        "profiler overhead: detached %.3fs, attached %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "profiler overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )
