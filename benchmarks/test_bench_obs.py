"""Benchmark: instrumentation overhead of the observability layer.

The run manifests promise that attaching an :class:`EmulationObserver`
(plus the always-on metrics/span bookkeeping) costs less than 10% of
emulation wall time versus running with observation disabled, and the
execution profiler (:class:`ExecutionProfiler`) makes the same promise
for ``repro profile``.  This benchmark measures exactly that: each
workload image is compiled once, then emulated with and without the
instrument attached in interleaved rounds (so OS noise and cache warmth
hit both arms equally), and the enabled/disabled time ratio must stay
under the budget.
"""

import time

from repro.ease.environment import compile_for_machine
from repro.emu.branchreg_emu import run_branchreg
from repro.obs.emuobs import EmulationObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ExecutionProfiler
from repro.workloads import all_workloads

# Enough dynamic instructions to dwarf per-run setup, small enough to
# keep the benchmark quick.
SUBSET = ("wc", "sort", "sieve")
ROUNDS = 5
OVERHEAD_BUDGET = 1.10


def _emulate_all(images, observer=None, profiled=False):
    for name, (image, stdin) in images.items():
        run_branchreg(
            image.reset(),
            stdin=stdin,
            program=name,
            observer=observer,
            profiler=ExecutionProfiler() if profiled else None,
        )


def _compile_subset():
    workloads = {w.name: w for w in all_workloads() if w.name in SUBSET}
    return {
        name: (compile_for_machine(w.source, "branchreg"), w.stdin_bytes())
        for name, w in workloads.items()
    }


def _timed_rounds(run_disabled, run_enabled):
    """Interleaved per-round wall times for both arms.  The *minimum*
    round is each arm's cost estimate: OS noise is strictly additive, so
    the fastest round is the closest observation of the true cost and the
    min/min ratio is far more stable than a sum ratio under load."""
    disabled = []
    enabled = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_disabled()
        disabled.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_enabled()
        enabled.append(time.perf_counter() - start)
    return {
        "disabled_s": min(disabled),
        "enabled_s": min(enabled),
        "ratio": min(enabled) / min(disabled),
    }


def _measure_overhead():
    images = _compile_subset()
    observer = EmulationObserver(sample_every=65536, registry=MetricsRegistry())
    _emulate_all(images)  # warm-up round, not timed
    result = _timed_rounds(
        lambda: _emulate_all(images),
        lambda: _emulate_all(images, observer=observer),
    )
    result["observed_runs"] = observer.runs
    return result


def _measure_profiler_overhead():
    images = _compile_subset()
    _emulate_all(images)  # warm-up round, not timed
    _emulate_all(images, profiled=True)
    return _timed_rounds(
        lambda: _emulate_all(images),
        lambda: _emulate_all(images, profiled=True),
    )


def test_observer_overhead_under_budget(once):
    result = once(_measure_overhead)
    print()
    print(
        "observability overhead: disabled %.3fs, enabled %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["observed_runs"] == ROUNDS * len(SUBSET)
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "instrumentation overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )


def test_profiler_overhead_under_budget(once):
    result = once(_measure_profiler_overhead)
    print()
    print(
        "profiler overhead: detached %.3fs, attached %.3fs, ratio %.3f"
        % (result["disabled_s"], result["enabled_s"], result["ratio"])
    )
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "profiler overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )
