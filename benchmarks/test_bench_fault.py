"""Benchmark: overhead of the hardened (fault-tolerant) run loop.

The robustness layer promises that the hardened execution path -- the
wall-clock watchdog (checked every ``WATCHDOG_STRIDE`` instructions),
the control-flow edge ring buffer, and the per-step typed-error
conversion -- is cheap enough to leave on for every fault-tolerant
suite run.  This benchmark measures the hardened/plain wall-time ratio
the same way ``test_bench_obs.py`` measures instrumentation overhead:
each workload image is compiled once, then emulated with and without
hardening in interleaved rounds, and the min/min time ratio must stay
under the budget.
"""

import time

from repro.ease.environment import compile_for_machine
from repro.emu.branchreg_emu import run_branchreg
from repro.workloads import all_workloads

SUBSET = ("wc", "sort", "sieve")
ROUNDS = 5
# Measured ~1.01 on an idle machine; the budget leaves headroom for
# loaded CI runners while still catching an accidentally quadratic
# watchdog or per-instruction ring-buffer regression.
OVERHEAD_BUDGET = 1.25


def _compile_subset():
    workloads = {w.name: w for w in all_workloads() if w.name in SUBSET}
    return {
        name: (compile_for_machine(w.source, "branchreg"), w.stdin_bytes())
        for name, w in workloads.items()
    }


def _emulate_all(images, hardened=False):
    extra = {"deadline_s": 60.0, "record_edges": True} if hardened else {}
    for name, (image, stdin) in images.items():
        run_branchreg(image.reset(), stdin=stdin, program=name, **extra)


def _timed_rounds(run_plain, run_hardened):
    plain = []
    hardened = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_plain()
        plain.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_hardened()
        hardened.append(time.perf_counter() - start)
    return {
        "plain_s": min(plain),
        "hardened_s": min(hardened),
        "ratio": min(hardened) / min(plain),
    }


def _measure_hardened_overhead():
    images = _compile_subset()
    _emulate_all(images)  # warm-up round, not timed
    _emulate_all(images, hardened=True)
    return _timed_rounds(
        lambda: _emulate_all(images),
        lambda: _emulate_all(images, hardened=True),
    )


def test_hardened_loop_overhead_under_budget(once):
    result = once(_measure_hardened_overhead)
    print()
    print(
        "hardened-loop overhead: plain %.3fs, hardened %.3fs, ratio %.3f"
        % (result["plain_s"], result["hardened_s"], result["ratio"])
    )
    assert result["ratio"] < OVERHEAD_BUDGET, (
        "hardened run-loop overhead %.1f%% exceeds the %d%% budget"
        % (100.0 * (result["ratio"] - 1.0), round(100 * (OVERHEAD_BUDGET - 1)))
    )
