"""Benchmark: the trace-compiling engine against fastcore and reference.

``docs/PERFORMANCE.md`` promises that ``engine="trace"`` retires the
Appendix I suite's dynamic instruction stream at least 2x faster than
the predecoded fast core (and at least 5x faster than the reference
interpreter) while staying bit-identical -- the three-engine
conformance wall proves the identity; this file measures the speed.

Methodology: all images are compiled once up front and ``reset()``
between runs, so each measurement is pure emulation.  Every engine
gets untimed priming passes followed by ``REPS`` timed passes, and
the per-engine time is the *minimum* across reps -- the standard
noise-rejection discipline for wall-clock floors on shared runners.
Priming is where the trace engine pays its one-time costs (profiled
warm-up, anchor selection, codegen); like any adaptive-JIT harness it
gets several warm-up iterations (``TRACE_PRIMING``) because re-profile
rounds keep refining the trace set for a few runs before the per-image
mega-function converges.  Timed passes then measure steady-state suite
emulation, where the in-process trace memo re-installs each image's
compiled dispatcher at instruction zero.  That is the regime the
floors are about: the conformance wall, the differential fuzzer, and
any repeated experiment re-run the same images many times per process,
and the cost they see is the steady-state cost.  The persistent
artifact cache is disabled so priming pays real selection+codegen
rather than a disk hit.
"""

import os
import time

import pytest

from repro.ease.environment import compile_for_machine
from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.workloads import all_workloads

#: Regression floors, set below the measured steady-state result
#: (2.1x over fast, 5.7x over reference on a quiet container -- see
#: docs/PERFORMANCE.md) so a noisy shared runner does not flake the
#: gate; the printed report carries the actual measured ratios.
SPEEDUP_OVER_FAST = 1.8
SPEEDUP_OVER_REFERENCE = 4.5
LIMIT = 20_000_000
REPS = 3
#: Untimed warm-up passes for the adaptive engine: re-profile rounds
#: grow the trace set for a few runs; the mega-function re-render that
#: follows each growth trails it by one run.
TRACE_PRIMING = 4

_EMULATORS = {"baseline": BaselineEmulator, "branchreg": BranchRegEmulator}


def _compile_suite():
    images = []
    for w in all_workloads():
        for machine in ("baseline", "branchreg"):
            images.append(
                (machine, compile_for_machine(w.source, machine),
                 w.stdin_bytes(), w.name)
            )
    return images


def _run_suite(images, engine):
    instructions = 0
    traced = 0
    start = time.perf_counter()
    for machine, image, stdin, name in images:
        emu = _EMULATORS[machine](
            image.reset(), stdin=stdin, limit=LIMIT, engine=engine
        )
        emu.stats.program = name
        stats = emu.run()
        assert stats.engine == engine, (
            name, machine, emu.trace_fallback, emu.fast_fallback
        )
        instructions += stats.instructions
        traced += stats.trace_instructions
    return instructions, traced, time.perf_counter() - start


def _measure():
    os.environ["REPRO_CACHE_DIR"] = ""  # priming pays real codegen cost
    images = _compile_suite()
    times = {"reference": [], "fast": [], "trace": []}
    counts = {}
    traced = 0
    for engine in times:  # untimed priming passes per engine
        for _ in range(TRACE_PRIMING if engine == "trace" else 1):
            counts[engine], _, _ = _run_suite(images, engine)
    assert (
        counts["reference"] == counts["fast"] == counts["trace"]
    )  # same retired stream
    for _ in range(REPS):  # interleaved so drift hits every engine alike
        for engine in times:
            instr, tr, seconds = _run_suite(images, engine)
            assert instr == counts[engine]
            times[engine].append(seconds)
            if engine == "trace":
                traced = tr
    ref_s = min(times["reference"])
    fast_s = min(times["fast"])
    trace_s = min(times["trace"])
    return {
        "instructions": counts["reference"],
        "trace_coverage": traced / counts["reference"],
        "reference_s": ref_s,
        "fast_s": fast_s,
        "trace_s": trace_s,
        "speedup_vs_fast": fast_s / trace_s,
        "speedup_vs_reference": ref_s / trace_s,
        "trace_mips": counts["reference"] / trace_s / 1e6,
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="timing floors are meaningless on a starved single-core "
    "runner (CI enforces them on standard runners)",
)
@pytest.mark.benchmark(group="tracecore")
def test_trace_engine_speedup(once):
    """The trace engine runs the whole suite ~2x faster than the fast
    core and ~5x faster than the reference loop (steady state,
    min-of-N after priming passes); the asserted floors sit below the
    measured ratios to absorb shared-runner noise."""
    result = once(_measure)
    print(
        "\ntrace engine: %.2fx over fast, %.2fx over reference "
        "(reference %.2fs, fast %.2fs, trace %.2fs, %.1fM instructions, "
        "%.0f%% retired in-trace, %.2f MIPS trace)"
        % (
            result["speedup_vs_fast"], result["speedup_vs_reference"],
            result["reference_s"], result["fast_s"], result["trace_s"],
            result["instructions"] / 1e6,
            100.0 * result["trace_coverage"], result["trace_mips"],
        )
    )
    assert result["speedup_vs_fast"] >= SPEEDUP_OVER_FAST, (
        "trace engine %.2fx over the fast core, below the %.1fx floor"
        % (result["speedup_vs_fast"], SPEEDUP_OVER_FAST)
    )
    assert result["speedup_vs_reference"] >= SPEEDUP_OVER_REFERENCE, (
        "trace engine %.2fx over the reference loop, below the %.1fx "
        "floor" % (result["speedup_vs_reference"], SPEEDUP_OVER_REFERENCE)
    )
