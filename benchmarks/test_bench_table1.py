"""Benchmark: regenerate Table I (dynamic measurements, full 19-program
suite) and verify the paper's headline shape claims.

Paper values: baseline 100.79M instructions / 36.49M data references;
branch-register machine 93.94M / 37.23M -- i.e. 6.8% fewer instructions
and 2.0% more data references, a 10:1 saved:added ratio, ~14% of baseline
instructions being transfers of control, and a >2:1 ratio of transfers to
executed target-address calculations.  Our absolute numbers are smaller
(scaled inputs); the shape must match.
"""

from repro.harness.table1 import run_table1


def test_table1_full_suite(once):
    result = once(run_table1)
    print()
    print(result["text"])
    # Headline: fewer instructions, slightly more data references.
    assert result["instr_change"] < -0.03, "expect >3% fewer instructions"
    assert result["instr_change"] > -0.20, "saving should be single-digit-ish"
    assert 0.0 <= result["refs_change"] < 0.25
    # Instructions saved dwarf the added data references.
    assert result["saved_to_added_ratio"] > 2.0
    # ~14% of baseline instructions are transfers (paper's figure).
    assert 0.10 < result["transfer_fraction"] < 0.25
    # Hoisting means transfers outnumber executed calculations.
    assert result["transfers_per_calc"] > 1.5
    # Many delay-slot noops disappear on the branch-register machine.
    assert result["noop_reduction"] > 0.10
    assert result["bta_carriers"] > 0
