"""Tests for the Section 9 loop-size study."""

import pytest

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.harness.loopsize import (
    _baseline_spans,
    _branchreg_spans,
    _loop_instruction_count,
    run_loop_size_study,
)
from repro.lang.frontend import compile_to_ir

LOOP_SRC = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++)
        n += i;
    print_int(n); putchar(10);
    return 0;
}
"""

STRAIGHT_SRC = """
int main() { putchar('7'); putchar(10); return 0; }
"""


class TestSpanDetection:
    def test_baseline_loop_detected(self):
        mprog = generate_baseline(compile_to_ir(LOOP_SRC))
        spans = _baseline_spans(mprog.function("main"))
        assert spans
        lo, hi = spans[0]
        assert lo < hi

    def test_branchreg_loop_detected(self):
        mprog = generate_branchreg(compile_to_ir(LOOP_SRC))
        spans = _branchreg_spans(mprog.function("main"))
        assert spans
        lo, hi = spans[0]
        assert lo < hi

    def test_straight_line_has_no_spans(self):
        base = generate_baseline(compile_to_ir(STRAIGHT_SRC))
        br = generate_branchreg(compile_to_ir(STRAIGHT_SRC))
        assert _loop_instruction_count(base) == 0
        assert _loop_instruction_count(br) == 0

    def test_branchreg_loop_smaller(self):
        base = generate_baseline(compile_to_ir(LOOP_SRC))
        br = generate_branchreg(compile_to_ir(LOOP_SRC))
        assert 0 < _loop_instruction_count(br) < _loop_instruction_count(base)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_loop_size_study(subset=("wc", "sieve", "grep"))

    def test_totals_consistent(self, study):
        assert study["baseline_total"] == sum(r["baseline"] for r in study["rows"])
        assert study["branchreg_total"] == sum(r["branchreg"] for r in study["rows"])

    def test_shrinkage(self, study):
        assert study["branchreg_total"] < study["baseline_total"]

    def test_text_has_total_row(self, study):
        assert "TOTAL" in study["text"]
