"""Tests for the paper-notation RTL printer."""

from repro.codegen.common import MInstr, mnoop
from repro.rtl.printer import listing, minstr_text
from repro.rtl.operand import Imm, Label, Reg, Sym


class TestCoreNotation:
    def test_add(self):
        ins = MInstr("add", dst=Reg("r", 3), srcs=[Reg("r", 1), Reg("r", 2)])
        assert minstr_text(ins) == "r[3]=r[1]+r[2];"

    def test_add_immediate(self):
        ins = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 1), Imm(1)])
        assert minstr_text(ins) == "r[1]=r[1]+1;"

    def test_loads_use_cell_letters(self):
        lb = MInstr("lb", dst=Reg("r", 0), srcs=[Reg("r", 1), Imm(0)])
        assert minstr_text(lb) == "r[0]=B[r[1]];"
        lw = MInstr("lw", dst=Reg("r", 2), srcs=[Reg("r", 15), Imm(8)])
        assert minstr_text(lw) == "r[2]=M[r[15]+8];"

    def test_store(self):
        sw = MInstr("sw", srcs=[Reg("r", 1), Reg("r", 15), Imm(-4)])
        assert minstr_text(sw) == "M[r[15]-4]=r[1];"

    def test_noop_is_nl(self):
        assert minstr_text(mnoop()) == "NL=NL;"

    def test_cmp(self):
        ins = MInstr("cmp", srcs=[Reg("r", 1), Imm(0)])
        assert minstr_text(ins) == "cc=r[1]?0;"

    def test_conditional_branch(self):
        ins = MInstr("bcc", cond="eq", target=Label("L14"))
        assert minstr_text(ins) == "PC=cc==0->L14;"

    def test_return(self):
        assert minstr_text(MInstr("retrt")) == "PC=RT;"


class TestBranchRegisterNotation:
    def test_bta(self):
        ins = MInstr("bta", dst=Reg("b", 2), target=Label("L2"))
        assert minstr_text(ins) == "b[2]=b[0]+(L2-.);"

    def test_cmpset_matches_paper(self):
        # Paper: b[7]=r[5]<0->b[2]|b[0];
        ins = MInstr(
            "cmpset", dst=Reg("b", 7), srcs=[Reg("r", 5), Imm(0)],
            cond="lt", btrue=2,
        )
        assert minstr_text(ins) == "b[7]=r[5]<0->b[2]|b[0];"

    def test_carrier_suffix(self):
        ins = mnoop(br=7)
        assert minstr_text(ins) == "NL=NL; b[0]=b[7];"

    def test_carrier_on_useful_instruction(self):
        ins = MInstr("li", dst=Reg("r", 2), srcs=[Imm(0)], br=7)
        assert minstr_text(ins) == "r[2]=0; b[0]=b[7];"

    def test_suffix_suppressed(self):
        ins = mnoop(br=7)
        assert minstr_text(ins, show_br=False) == "NL=NL;"

    def test_sethi_and_btalo(self):
        hi = MInstr("sethi", dst=Reg("r", 2), srcs=[Sym("foo")])
        lo = MInstr("btalo", dst=Reg("b", 3), srcs=[Reg("r", 2)], target=Sym("foo"))
        assert minstr_text(hi) == "r[2]=HI(foo);"
        assert minstr_text(lo) == "b[3]=r[2]+LO(foo);"

    def test_bmov(self):
        ins = MInstr("bmov", dst=Reg("b", 1), srcs=[Reg("b", 7)])
        assert minstr_text(ins) == "b[1]=b[7];"

    def test_note_rendered_as_comment(self):
        ins = MInstr("bmov", dst=Reg("b", 1), srcs=[Reg("b", 7)], note="save")
        assert minstr_text(ins).endswith("/* save */")


class TestListing:
    def test_labels_outdented(self):
        instrs = [
            MInstr("label", label="L1"),
            MInstr("li", dst=Reg("r", 1), srcs=[Imm(3)]),
        ]
        text = listing(instrs)
        assert text.splitlines()[0] == "L1:"
        assert text.splitlines()[1].startswith("    ")
