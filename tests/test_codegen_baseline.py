"""Static invariants of the baseline code generator and delay-slot filler."""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.common import BASELINE_CONTROL
from repro.codegen.dataflow import can_swap, minstr_defs, minstr_uses
from repro.codegen.delayslots import fill_slots
from repro.codegen.lowering import MachineFunction
from repro.codegen.common import MInstr, mnoop
from repro.lang.frontend import compile_to_ir
from repro.rtl.operand import Imm, Reg


def baseline_program(source):
    return generate_baseline(compile_to_ir(source))


LOOP_SRC = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++)
        n += i;
    print_int(n); putchar(10);
    return 0;
}
"""


class TestStructure:
    def test_every_transfer_has_delay_slot(self):
        mprog = baseline_program(LOOP_SRC)
        for fn in mprog.functions:
            instrs = [i for i in fn.instrs if not i.is_label()]
            for idx, ins in enumerate(instrs):
                if ins.op in BASELINE_CONTROL:
                    assert idx + 1 < len(instrs) or fn.name == "__start", (
                        "transfer at end of %s" % fn.name
                    )

    def test_delay_slot_never_contains_transfer(self):
        mprog = baseline_program(LOOP_SRC)
        for fn in mprog.functions:
            instrs = [i for i in fn.instrs if not i.is_label()]
            for idx, ins in enumerate(instrs[:-1]):
                if ins.op in BASELINE_CONTROL:
                    assert instrs[idx + 1].op not in BASELINE_CONTROL

    def test_cmp_precedes_conditional_branch(self):
        mprog = baseline_program(LOOP_SRC)
        for fn in mprog.functions:
            instrs = [i for i in fn.instrs if not i.is_label()]
            for idx, ins in enumerate(instrs):
                if ins.op in ("bcc", "fbcc"):
                    assert instrs[idx - 1].op in ("cmp", "fcmp")

    def test_functions_end_with_return_path(self):
        mprog = baseline_program(LOOP_SRC)
        main = mprog.function("main")
        ops = [i.op for i in main.instrs]
        assert "retrt" in ops

    def test_rt_saved_in_non_leaf(self):
        mprog = baseline_program(LOOP_SRC)  # main calls print_int
        ops = [i.op for i in mprog.function("main").instrs]
        assert "mfrt" in ops and "mtrt" in ops

    def test_leaf_does_not_save_rt(self):
        src = "int add1(int x) { return x + 1; } int main() { return add1(2); }"
        mprog = baseline_program(src)
        ops = [i.op for i in mprog.function("add1").instrs]
        assert "mfrt" not in ops

    def test_immediates_in_range(self):
        mprog = baseline_program("int main() { return 123456; }")
        for ins in mprog.all_instrs():
            if ins.op in ("add", "sub", "cmp", "li"):
                for src in ins.srcs:
                    if isinstance(src, Imm):
                        assert mprog.spec.imm_fits(src.value)


class TestDelaySlotFiller:
    def _mfn(self, instrs):
        return MachineFunction("t", list(instrs))

    def test_fills_independent_instruction(self):
        r1, r2, r3 = Reg("r", 1), Reg("r", 2), Reg("r", 3)
        instrs = [
            MInstr("li", dst=r3, srcs=[Imm(5)]),
            MInstr("cmp", srcs=[r1, Imm(0)]),
            MInstr("bcc", cond="eq"),
            mnoop(),
        ]
        mfn = self._mfn(instrs)
        assert fill_slots(mfn) == 1
        assert mfn.instrs[-1].op == "li"  # moved into the slot

    def test_does_not_fill_with_compare_input(self):
        r1 = Reg("r", 1)
        instrs = [
            MInstr("li", dst=r1, srcs=[Imm(5)]),  # defines the cmp source
            MInstr("cmp", srcs=[r1, Imm(0)]),
            MInstr("bcc", cond="eq"),
            mnoop(),
        ]
        mfn = self._mfn(instrs)
        assert fill_slots(mfn) == 0
        assert mfn.instrs[-1].is_noop()

    def test_does_not_cross_label(self):
        r3 = Reg("r", 3)
        instrs = [
            MInstr("li", dst=r3, srcs=[Imm(5)]),
            MInstr("label", label="L"),
            MInstr("jmp"),
            mnoop(),
        ]
        mfn = self._mfn(instrs)
        assert fill_slots(mfn) == 0

    def test_does_not_steal_from_other_slot(self):
        r3 = Reg("r", 3)
        instrs = [
            MInstr("jmp"),
            MInstr("li", dst=r3, srcs=[Imm(5)]),  # occupies jmp's slot
            MInstr("jmp"),
            mnoop(),
        ]
        mfn = self._mfn(instrs)
        assert fill_slots(mfn) == 0

    def test_memory_op_fills_safely(self):
        r1, r2 = Reg("r", 1), Reg("r", 2)
        instrs = [
            MInstr("lw", dst=r2, srcs=[r1, Imm(0)]),
            MInstr("cmp", srcs=[r1, Imm(0)]),
            MInstr("bcc", cond="eq"),
            mnoop(),
        ]
        mfn = self._mfn(instrs)
        assert fill_slots(mfn) == 1

    def test_dynamic_noop_count_reduced(self):
        # With vs without filling: fewer dynamic noops.
        from repro.ease.environment import compile_for_machine
        from repro.emu.baseline_emu import run_baseline
        from repro.lang.frontend import compile_to_ir

        prog1 = compile_to_ir(LOOP_SRC)
        prog2 = compile_to_ir(LOOP_SRC)
        from repro.emu.loader import Image

        filled = Image(generate_baseline(prog1, fill_delay_slots=True))
        unfilled = Image(generate_baseline(prog2, fill_delay_slots=False))
        s1 = run_baseline(filled)
        s2 = run_baseline(unfilled)
        assert s1.output == s2.output
        assert s1.noops < s2.noops
        assert s1.instructions < s2.instructions


class TestDataflow:
    def test_defs_and_uses(self):
        r1, r2, r3 = Reg("r", 1), Reg("r", 2), Reg("r", 3)
        ins = MInstr("add", dst=r1, srcs=[r2, r3])
        assert minstr_defs(ins) == {r1}
        assert minstr_uses(ins) == {r2, r3}

    def test_cmp_defines_cc(self):
        ins = MInstr("cmp", srcs=[Reg("r", 1), Imm(0)])
        assert "cc" in minstr_defs(ins)

    def test_bcc_uses_cc(self):
        ins = MInstr("bcc", cond="eq")
        assert "cc" in minstr_uses(ins)

    def test_call_defines_rt(self):
        assert "RT" in minstr_defs(MInstr("call"))

    def test_swap_blocked_by_raw(self):
        r1, r2 = Reg("r", 1), Reg("r", 2)
        producer = MInstr("li", dst=r1, srcs=[Imm(1)])
        consumer = MInstr("mov", dst=r2, srcs=[r1])
        assert not can_swap(producer, consumer)

    def test_swap_blocked_by_waw(self):
        r1 = Reg("r", 1)
        a = MInstr("li", dst=r1, srcs=[Imm(1)])
        b = MInstr("li", dst=r1, srcs=[Imm(2)])
        assert not can_swap(a, b)

    def test_independent_ops_swap(self):
        a = MInstr("li", dst=Reg("r", 1), srcs=[Imm(1)])
        b = MInstr("li", dst=Reg("r", 2), srcs=[Imm(2)])
        assert can_swap(a, b)

    def test_loads_may_cross_loads(self):
        a = MInstr("lw", dst=Reg("r", 1), srcs=[Reg("r", 3), Imm(0)])
        b = MInstr("lw", dst=Reg("r", 2), srcs=[Reg("r", 4), Imm(0)])
        assert can_swap(a, b)

    def test_store_never_crosses_load(self):
        a = MInstr("sw", srcs=[Reg("r", 1), Reg("r", 3), Imm(0)])
        b = MInstr("lw", dst=Reg("r", 2), srcs=[Reg("r", 4), Imm(0)])
        assert not can_swap(a, b)

    def test_carrier_clobbers_link(self):
        ins = mnoop(br=4)
        assert Reg("b", 7) in minstr_defs(ins, link=7)
        assert Reg("b", 4) in minstr_uses(ins)
