"""Unit and property tests for 32-bit wrapping arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emu import intmath

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
nonzero_i32 = i32.filter(lambda v: v != 0)


class TestWrap:
    def test_identity_in_range(self):
        assert intmath.wrap(12345) == 12345
        assert intmath.wrap(-12345) == -12345

    def test_overflow_wraps(self):
        assert intmath.wrap(2**31) == -(2**31)
        assert intmath.wrap(2**32) == 0
        assert intmath.wrap(2**32 + 7) == 7

    def test_underflow_wraps(self):
        assert intmath.wrap(-(2**31) - 1) == 2**31 - 1

    @given(i32)
    def test_wrap_fixpoint(self, value):
        assert intmath.wrap(value) == value

    @given(st.integers())
    def test_wrap_range(self, value):
        wrapped = intmath.wrap(value)
        assert -(2**31) <= wrapped < 2**31
        assert (wrapped - value) % (2**32) == 0


class TestSigned:
    def test_to_signed(self):
        assert intmath.to_signed(0xFFFFFFFF) == -1
        assert intmath.to_signed(0x7FFFFFFF) == 2**31 - 1
        assert intmath.to_signed(0x80000000) == -(2**31)

    def test_to_unsigned(self):
        assert intmath.to_unsigned(-1) == 0xFFFFFFFF

    @given(i32)
    def test_roundtrip(self, value):
        assert intmath.to_signed(intmath.to_unsigned(value)) == value


class TestDivision:
    def test_cdiv_truncates_toward_zero(self):
        assert intmath.cdiv(7, 2) == 3
        assert intmath.cdiv(-7, 2) == -3
        assert intmath.cdiv(7, -2) == -3
        assert intmath.cdiv(-7, -2) == 3

    def test_crem_sign_follows_dividend(self):
        assert intmath.crem(7, 2) == 1
        assert intmath.crem(-7, 2) == -1
        assert intmath.crem(7, -2) == 1
        assert intmath.crem(-7, -2) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            intmath.cdiv(1, 0)
        with pytest.raises(ZeroDivisionError):
            intmath.crem(1, 0)

    @given(i32, nonzero_i32)
    def test_euclid_identity(self, a, b):
        q = intmath.cdiv(a, b)
        r = intmath.crem(a, b)
        # Identity holds modulo 2**32 (quotient may wrap at INT_MIN/-1).
        assert intmath.wrap(q * b + r) == intmath.wrap(a)

    @given(i32, nonzero_i32)
    def test_remainder_bound(self, a, b):
        r = intmath.crem(a, b)
        assert abs(r) < abs(b)


class TestShifts:
    def test_shl(self):
        assert intmath.shl(1, 4) == 16

    def test_shl_wraps(self):
        assert intmath.shl(1, 31) == -(2**31)

    def test_shift_amount_masked_to_5_bits(self):
        assert intmath.shl(1, 32) == 1
        assert intmath.shr(4, 33) == 2

    def test_shr_is_arithmetic(self):
        assert intmath.shr(-8, 1) == -4

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shl_matches_mod_arith(self, a, s):
        assert intmath.shl(a, s) == intmath.wrap(a << s)


class TestIntBinop:
    @given(i32, i32)
    def test_add_commutes(self, a, b):
        assert intmath.int_binop("add", a, b) == intmath.int_binop("add", b, a)

    @given(i32, i32)
    def test_sub_antisymmetric(self, a, b):
        assert intmath.int_binop("sub", a, b) == intmath.wrap(
            -intmath.int_binop("sub", b, a)
        )

    @given(i32, i32)
    def test_bitops_match_python_unsigned(self, a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        assert intmath.int_binop("and", a, b) == intmath.to_signed(ua & ub)
        assert intmath.int_binop("or", a, b) == intmath.to_signed(ua | ub)
        assert intmath.int_binop("xor", a, b) == intmath.to_signed(ua ^ ub)

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            intmath.int_binop("pow", 2, 3)


class TestCompare:
    @pytest.mark.parametrize(
        "cond,a,b,expected",
        [
            ("eq", 1, 1, True), ("eq", 1, 2, False),
            ("ne", 1, 2, True), ("ne", 2, 2, False),
            ("lt", -1, 0, True), ("lt", 0, 0, False),
            ("le", 0, 0, True), ("le", 1, 0, False),
            ("gt", 1, 0, True), ("gt", 0, 0, False),
            ("ge", 0, 0, True), ("ge", -1, 0, False),
        ],
    )
    def test_all_conditions(self, cond, a, b, expected):
        assert intmath.compare(cond, a, b) is expected

    def test_unknown_condition_raises(self):
        with pytest.raises(ValueError):
            intmath.compare("approx", 1, 1)

    @given(i32, i32)
    def test_trichotomy(self, a, b):
        results = [
            intmath.compare("lt", a, b),
            intmath.compare("eq", a, b),
            intmath.compare("gt", a, b),
        ]
        assert sum(results) == 1


# ---- C-semantics oracle (property) ------------------------------------------


def _c_wrap(value):
    """Independent formulation of signed 32-bit wrapping (modular
    arithmetic recentred on [-2**31, 2**31)), used as the oracle."""
    return (value + 2**31) % 2**32 - 2**31


def _c_quotient(a, b):
    """C99 6.5.5 truncating quotient, phrased via Python's floor
    division (not via the abs() form the implementation uses)."""
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


class TestCSemanticsOracle:
    """cdiv/crem/shl/shr/wrap against an independently-formulated
    C-semantics oracle.  These are the exact operations the fast core
    burns into its specialised closures, so a semantic slip here would
    corrupt every workload identically on both engines -- the oracle is
    the only thing anchoring them to C."""

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_wrap_matches_modular_oracle(self, value):
        assert intmath.wrap(value) == _c_wrap(value)

    @given(i32, nonzero_i32)
    def test_cdiv_truncates_toward_zero(self, a, b):
        assert intmath.cdiv(a, b) == _c_wrap(_c_quotient(a, b))

    @given(i32, nonzero_i32)
    def test_crem_satisfies_the_c_identity(self, a, b):
        # C99: (a/b)*b + a%b == a, and the remainder's sign follows the
        # dividend.
        r = intmath.crem(a, b)
        assert r == a - b * _c_quotient(a, b)
        assert r == 0 or (r < 0) == (a < 0)
        assert abs(r) < abs(b)

    def test_int_min_corner(self):
        # INT_MIN / -1 overflows in C (UB); the machines define it as
        # wrapping, INT_MIN % -1 as 0.
        assert intmath.cdiv(-(2**31), -1) == -(2**31)
        assert intmath.crem(-(2**31), -1) == 0

    @given(i32, st.integers(min_value=0, max_value=255))
    def test_shl_is_wrapped_multiplication(self, a, n):
        # Shift counts are masked to 5 bits, as 32-bit hardware does.
        assert intmath.shl(a, n) == _c_wrap(a * 2 ** (n & 31))

    @given(i32, st.integers(min_value=0, max_value=255))
    def test_shr_is_arithmetic(self, a, n):
        # Arithmetic right shift == floor division by the power of two
        # (sign-extending, not zero-filling).
        assert intmath.shr(a, n) == a // 2 ** (n & 31)

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shift_roundtrip_sign_extends_low_bits(self, a, n):
        # (a << n) >> n recovers a sign-extended to its low 32-n bits.
        keep = 32 - n
        expected = (a % 2**keep + 2 ** (keep - 1)) % 2**keep - 2 ** (keep - 1)
        assert intmath.shr(intmath.shl(a, n), n) == expected
