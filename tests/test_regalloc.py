"""Tests for the global register allocator."""

from repro.cfg.build import build_cfg
from repro.cfg.liveness import compute_liveness, per_instruction_liveness
from repro.lang.frontend import compile_to_ir
from repro.machine.spec import baseline_spec, branchreg_spec
from repro.opt.pipeline import optimize_function
from repro.opt.regalloc import allocate, reserved_temps
from repro.rtl.operand import Reg, VReg


def allocated_fn(source, spec, name="main"):
    prog = compile_to_ir(source)
    fn = prog.functions[name]
    optimize_function(fn)
    info = allocate(fn, spec)
    return fn, info


MANY_VARS = """
int main() {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
    int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
    int k = 11; int l = 12; int m = 13; int n = 14; int o = 15;
    int p = 16; int q = 17; int r = 18; int s = 19; int t = 20;
    return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t;
}
"""

CROSS_CALL = """
int id(int x) { return x; }
int main() {
    int a = getchar();
    int b = id(a);
    return a + b;   /* a lives across the call */
}
"""


class TestBasicAllocation:
    def test_no_vregs_remain(self):
        fn, _info = allocated_fn(MANY_VARS, baseline_spec())
        for ins in fn.instrs:
            for reg in list(ins.defs()) + list(ins.uses()):
                assert isinstance(reg, Reg), "unallocated %r in %r" % (reg, ins)

    def test_register_indices_in_range(self):
        spec = branchreg_spec()
        fn, _info = allocated_fn(MANY_VARS, spec)
        for ins in fn.instrs:
            for reg in list(ins.defs()) + list(ins.uses()):
                limit = spec.ints.count if reg.kind == "r" else spec.flts.count
                assert reg.index < limit

    def test_reserved_temps_not_allocated(self):
        spec = branchreg_spec()
        reserved = set(reserved_temps(spec, "int"))
        _fn, info = allocated_fn(MANY_VARS, spec)
        for reg in info.mapping.values():
            assert reg not in reserved

    def test_interference_respected(self):
        """No two simultaneously-live values share a register."""
        spec = branchreg_spec()
        fn, _info = allocated_fn(MANY_VARS, spec)
        cfg = build_cfg(fn)
        _in, out = compute_liveness(cfg)
        for block in cfg.blocks:
            after = per_instruction_liveness(block, out[block])
            for ins, live in zip(block.instrs, after):
                for d in ins.defs():
                    for other in live:
                        if other == d:
                            continue
                        # Same physical register while both live => the
                        # def must be a move from that very register
                        # (coalesced copy), otherwise it's a bug.
                        if other == d and other is not d:
                            raise AssertionError

    def test_callee_saved_tracked(self):
        spec = branchreg_spec()
        _fn, info = allocated_fn(CROSS_CALL, spec)
        assert info.used_callee_saved  # 'a' crosses a call

    def test_cross_call_value_in_callee_saved(self):
        spec = branchreg_spec()
        fn, info = allocated_fn(CROSS_CALL, spec)
        callee = set(spec.ints.callee_saved)
        crossing = [
            reg for reg in info.mapping.values()
            if reg.kind == "r" and reg.index in callee
        ]
        assert crossing


class TestSpilling:
    SPILLY = """
    int use4(int a, int b, int c, int d) { return a + b + c + d; }
    int main() {
        int v0 = getchar(); int v1 = getchar(); int v2 = getchar();
        int v3 = getchar(); int v4 = getchar(); int v5 = getchar();
        int v6 = getchar(); int v7 = getchar(); int v8 = getchar();
        int v9 = getchar(); int va = getchar(); int vb = getchar();
        int vc = getchar(); int vd = getchar(); int ve = getchar();
        use4(v0, v1, v2, v3);
        use4(v4, v5, v6, v7);
        use4(v8, v9, va, vb);
        return v0+v1+v2+v3+v4+v5+v6+v7+v8+v9+va+vb+vc+vd+ve;
    }
    """

    def test_spills_on_small_machine(self):
        spec = branchreg_spec()  # only 7 callee-saved ints
        fn, info = allocated_fn(self.SPILLY, spec)
        assert info.spill_slots or info.spill_loads or True
        # All spill temps must be reserved registers.
        reserved = set(reserved_temps(spec, "int")[:2])
        for ins in fn.instrs:
            if ins.op == "ldspill":
                assert ins.dst in reserved

    def test_spill_slots_are_frame_locals(self):
        spec = branchreg_spec()
        fn, info = allocated_fn(self.SPILLY, spec)
        local_names = {loc.name for loc in fn.locals}
        for local in info.spill_slots.values():
            assert local.name in local_names

    def test_program_still_correct_with_spills(self):
        from tests.conftest import run_both

        src = self.SPILLY.replace(
            "return v0+v1+v2+v3+v4+v5+v6+v7+v8+v9+va+vb+vc+vd+ve;",
            "print_int(v0+v1+v2+v3+v4+v5+v6+v7+v8+v9+va+vb+vc+vd+ve);"
            " putchar(10); return 0;",
        )
        pair = run_both(src, stdin=bytes(range(65, 80)))
        assert pair.output == b"%d\n" % sum(range(65, 80))


class TestRematerialization:
    def test_remat_constants_have_no_slot(self):
        # Force pressure with many loop-hoisted constants.
        src = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 9; i++) {
                n += i * 5001; n += i * 5002; n += i * 5003; n += i * 5004;
                n += i * 5005; n += i * 5006; n += i * 5007; n += i * 5008;
                n += i * 5009; n += i * 5010; n += i * 5011; n += i * 5012;
                n += i * 5013; n += i * 5014; n += i * 5015; n += i * 5016;
            }
            print_int(n); putchar(10);
            return 0;
        }
        """
        from tests.conftest import run_both

        pair = run_both(src)
        expected = sum(i * v for i in range(9) for v in range(5001, 5017))
        assert pair.output == b"%d\n" % expected
