"""Determinism and caching guarantees.

A reproduction must reproduce *itself*: compiling the same source twice
must yield byte-identical code and identical measurements.
"""

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.harness.runner import run_suite
from repro.lang.frontend import compile_to_ir
from repro.rtl.printer import listing
from repro.workloads import workload
from repro.ease.environment import run_pair


def _full_listing(mprog):
    return "\n\n".join(listing(fn.instrs) for fn in mprog.functions)


class TestCompilationDeterminism:
    def test_baseline_codegen_deterministic(self):
        w = workload("grep")
        a = _full_listing(generate_baseline(compile_to_ir(w.source)))
        b = _full_listing(generate_baseline(compile_to_ir(w.source)))
        assert a == b

    def test_branchreg_codegen_deterministic(self):
        w = workload("grep")
        a = _full_listing(generate_branchreg(compile_to_ir(w.source)))
        b = _full_listing(generate_branchreg(compile_to_ir(w.source)))
        assert a == b

    def test_measurements_deterministic(self):
        w = workload("wc")
        p1 = run_pair(w.source, stdin=w.stdin_bytes(), name="wc")
        p2 = run_pair(w.source, stdin=w.stdin_bytes(), name="wc")
        assert p1.baseline.instructions == p2.baseline.instructions
        assert p1.branchreg.instructions == p2.branchreg.instructions
        assert p1.baseline.data_refs == p2.baseline.data_refs
        assert dict(p1.branchreg.prefetch_gap) == dict(p2.branchreg.prefetch_gap)


class TestRunnerCache:
    def test_same_key_returns_equal_results_without_sharing(self):
        a = run_suite(subset=("wc",))
        b = run_suite(subset=("wc",))
        assert a is not b  # hits are copies, so mutation cannot leak
        assert list(a) == list(b)

    def test_different_options_fork_the_cache(self):
        a = run_suite(subset=("wc",))
        b = run_suite(subset=("wc",), branchreg_options={"hoisting": False})
        assert a is not b
        assert (
            b[0].branchreg.instructions >= a[0].branchreg.instructions
        )
