"""Tests for emulated memory, runtime traps, and the loader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emu.loader import Image
from repro.emu.memory import DATA_BASE, Memory, STACK_TOP, TEXT_BASE
from repro.emu.runtime import Runtime
from repro.errors import ControlFlowViolation, ImageCorruption, MemoryFault
from repro.lang.frontend import compile_to_ir
from repro.codegen.baseline_gen import generate_baseline


class TestMemory:
    def setup_method(self):
        self.mem = Memory(size=0x1000)

    def test_word_roundtrip(self):
        self.mem.store_word(0x100, -123456)
        assert self.mem.load_word(0x100) == -123456

    def test_word_little_endian(self):
        self.mem.store_word(0, 0x01020304)
        assert self.mem.load_byte(0) == 4
        assert self.mem.load_byte(3) == 1

    def test_byte_roundtrip(self):
        self.mem.store_byte(5, 200)
        assert self.mem.load_byte(5) == 200

    def test_byte_masks_to_8_bits(self):
        self.mem.store_byte(5, 0x1FF)
        assert self.mem.load_byte(5) == 0xFF

    def test_float_roundtrip(self):
        self.mem.store_float(8, 1.5)
        assert self.mem.load_float(8) == 1.5

    def test_float_is_single_precision(self):
        self.mem.store_float(8, 0.1)
        loaded = self.mem.load_float(8)
        assert loaded != 0.1  # f32 rounding
        assert abs(loaded - 0.1) < 1e-7

    def test_out_of_range_raises(self):
        with pytest.raises(MemoryFault):
            self.mem.load_word(0x1000)
        with pytest.raises(MemoryFault):
            self.mem.store_word(-4, 0)

    def test_cstring(self):
        self.mem.write_bytes(0x10, b"hello\x00world")
        assert self.mem.read_cstring(0x10) == "hello"

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_word_roundtrip_property(self, value):
        self.mem.store_word(0x20, value)
        assert self.mem.load_word(0x20) == value

    @pytest.mark.parametrize("offset", [1, 2, 3])
    def test_misaligned_word_load_faults(self, offset):
        with pytest.raises(MemoryFault, match="misaligned word access"):
            self.mem.load_word(0x100 + offset)

    @pytest.mark.parametrize("offset", [1, 2, 3])
    def test_misaligned_word_store_faults(self, offset):
        with pytest.raises(MemoryFault, match="misaligned word access"):
            self.mem.store_word(0x100 + offset, 1)

    def test_misaligned_float_access_faults(self):
        with pytest.raises(MemoryFault, match="misaligned float access"):
            self.mem.load_float(0x102)
        with pytest.raises(MemoryFault, match="misaligned float access"):
            self.mem.store_float(0x102, 1.0)

    def test_misaligned_fault_reports_address(self):
        with pytest.raises(MemoryFault, match="0x102"):
            self.mem.load_word(0x102)

    def test_byte_access_never_alignment_checked(self):
        self.mem.store_byte(0x101, 7)
        assert self.mem.load_byte(0x101) == 7


class TestRuntime:
    def test_getchar_sequence_and_eof(self):
        rt = Runtime(b"ab")
        assert rt.trap("getchar", 0) == ord("a")
        assert rt.trap("getchar", 0) == ord("b")
        assert rt.trap("getchar", 0) == -1
        assert rt.trap("getchar", 0) == -1

    def test_putchar_accumulates(self):
        rt = Runtime()
        rt.trap("putchar", ord("h"))
        rt.trap("putchar", ord("i"))
        assert rt.output_text == "hi"

    def test_putchar_masks(self):
        rt = Runtime()
        rt.trap("putchar", 0x141)  # 'A' + 256
        assert rt.output_text == "A"

    def test_exit_records_code(self):
        rt = Runtime()
        rt.trap("exit", 42)
        assert rt.exit_code == 42

    def test_string_stdin_accepted(self):
        rt = Runtime("xy")
        assert rt.trap("getchar", 0) == ord("x")

    def test_unknown_trap_raises(self):
        with pytest.raises(ValueError):
            Runtime().trap("fork", 0)


class TestLoader:
    def _image(self, source="int g = 7; int main() { return g; }"):
        return Image(generate_baseline(compile_to_ir(source)))

    def test_entry_is_start(self):
        image = self._image()
        assert image.entry == image.labels["__start"]
        assert image.entry >= TEXT_BASE

    def test_instructions_word_addressed(self):
        image = self._image()
        for i, ins in enumerate(image.instrs):
            assert ins.addr == TEXT_BASE + 4 * i
            assert image.instruction_at(ins.addr) is ins

    def test_globals_in_data_segment(self):
        image = self._image()
        addr = image.symbols["g"]
        assert addr >= DATA_BASE
        assert image.memory.load_word(addr) == 7

    def test_string_literals_loaded(self):
        image = self._image('int main() { print_str("xyz"); return 0; }')
        for name, addr in image.symbols.items():
            if name.startswith("__str"):
                assert image.memory.read_cstring(addr) == "xyz"
                break
        else:
            raise AssertionError("no string literal placed")

    def test_jump_table_resolved_to_code_addresses(self):
        src = """
        int f(int x) {
            switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4; default: return 0;
            }
        }
        int main() { return f(2); }
        """
        image = self._image(src)
        table = [n for n in image.symbols if n.startswith("__jtab")]
        assert table
        addr = image.symbols[table[0]]
        first_entry = image.memory.load_word(addr)
        assert TEXT_BASE <= first_entry < DATA_BASE

    def test_symbol_initialised_with_other_symbol_address(self):
        image = self._image('char *p = "abc"; int main() { return p != 0; }')
        p_addr = image.symbols["p"]
        target = image.memory.load_word(p_addr)
        assert image.memory.read_cstring(target) == "abc"

    def test_reset_restores_memory(self):
        image = self._image()
        addr = image.symbols["g"]
        image.memory.store_word(addr, 99)
        image.reset()
        assert image.memory.load_word(addr) == 7

    def test_stack_top(self):
        assert self._image().stack_top == STACK_TOP

    def test_float_global_initialised(self):
        image = self._image("float f = 2.5; int main() { return (int) f; }")
        assert image.memory.load_float(image.symbols["f"]) == 2.5

    def test_misaligned_fetch_is_control_flow_violation(self):
        image = self._image()
        with pytest.raises(ControlFlowViolation, match="misaligned"):
            image.instruction_at(TEXT_BASE + 2)

    def test_fetch_outside_text_is_control_flow_violation(self):
        image = self._image()
        with pytest.raises(ControlFlowViolation, match="outside text"):
            image.instruction_at(image.text_end())
        with pytest.raises(ControlFlowViolation, match="outside text"):
            image.instruction_at(TEXT_BASE - 4)

    def test_text_end(self):
        image = self._image()
        assert image.text_end() == TEXT_BASE + 4 * len(image.instrs)
        # the last instruction is fetchable, one past it is not
        image.instruction_at(image.text_end() - 4)

    def test_verify_accepts_clean_image(self):
        image = self._image()
        assert image.verify() is image

    def test_verify_rejects_undecodable_opcode(self):
        import copy

        image = self._image()
        mutant = copy.copy(image.instrs[0])
        mutant.op = "undecodable(op=63)"
        image.instrs[0] = mutant
        with pytest.raises(ImageCorruption, match="undecodable"):
            image.verify()

    def test_verify_rejects_misaligned_relocation(self):
        import copy

        image = self._image("int main() { return 0; }")
        sites = [i for i, ins in enumerate(image.instrs)
                 if ins.t_addr is not None]
        mutant = copy.copy(image.instrs[sites[0]])
        mutant.t_addr += 2
        image.instrs[sites[0]] = mutant
        with pytest.raises(ImageCorruption, match="relocation"):
            image.verify()

    def test_verify_rejects_out_of_text_entry(self):
        image = self._image()
        image.entry = DATA_BASE
        with pytest.raises(ImageCorruption, match="entry point"):
            image.verify()
