"""Tests for emulated memory, runtime traps, and the loader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emu.loader import Image
from repro.emu.memory import DATA_BASE, Memory, STACK_TOP, TEXT_BASE
from repro.emu.runtime import Runtime
from repro.errors import MemoryFault
from repro.lang.frontend import compile_to_ir
from repro.codegen.baseline_gen import generate_baseline


class TestMemory:
    def setup_method(self):
        self.mem = Memory(size=0x1000)

    def test_word_roundtrip(self):
        self.mem.store_word(0x100, -123456)
        assert self.mem.load_word(0x100) == -123456

    def test_word_little_endian(self):
        self.mem.store_word(0, 0x01020304)
        assert self.mem.load_byte(0) == 4
        assert self.mem.load_byte(3) == 1

    def test_byte_roundtrip(self):
        self.mem.store_byte(5, 200)
        assert self.mem.load_byte(5) == 200

    def test_byte_masks_to_8_bits(self):
        self.mem.store_byte(5, 0x1FF)
        assert self.mem.load_byte(5) == 0xFF

    def test_float_roundtrip(self):
        self.mem.store_float(8, 1.5)
        assert self.mem.load_float(8) == 1.5

    def test_float_is_single_precision(self):
        self.mem.store_float(8, 0.1)
        loaded = self.mem.load_float(8)
        assert loaded != 0.1  # f32 rounding
        assert abs(loaded - 0.1) < 1e-7

    def test_out_of_range_raises(self):
        with pytest.raises(MemoryFault):
            self.mem.load_word(0x1000)
        with pytest.raises(MemoryFault):
            self.mem.store_word(-4, 0)

    def test_cstring(self):
        self.mem.write_bytes(0x10, b"hello\x00world")
        assert self.mem.read_cstring(0x10) == "hello"

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_word_roundtrip_property(self, value):
        self.mem.store_word(0x20, value)
        assert self.mem.load_word(0x20) == value


class TestRuntime:
    def test_getchar_sequence_and_eof(self):
        rt = Runtime(b"ab")
        assert rt.trap("getchar", 0) == ord("a")
        assert rt.trap("getchar", 0) == ord("b")
        assert rt.trap("getchar", 0) == -1
        assert rt.trap("getchar", 0) == -1

    def test_putchar_accumulates(self):
        rt = Runtime()
        rt.trap("putchar", ord("h"))
        rt.trap("putchar", ord("i"))
        assert rt.output_text == "hi"

    def test_putchar_masks(self):
        rt = Runtime()
        rt.trap("putchar", 0x141)  # 'A' + 256
        assert rt.output_text == "A"

    def test_exit_records_code(self):
        rt = Runtime()
        rt.trap("exit", 42)
        assert rt.exit_code == 42

    def test_string_stdin_accepted(self):
        rt = Runtime("xy")
        assert rt.trap("getchar", 0) == ord("x")

    def test_unknown_trap_raises(self):
        with pytest.raises(ValueError):
            Runtime().trap("fork", 0)


class TestLoader:
    def _image(self, source="int g = 7; int main() { return g; }"):
        return Image(generate_baseline(compile_to_ir(source)))

    def test_entry_is_start(self):
        image = self._image()
        assert image.entry == image.labels["__start"]
        assert image.entry >= TEXT_BASE

    def test_instructions_word_addressed(self):
        image = self._image()
        for i, ins in enumerate(image.instrs):
            assert ins.addr == TEXT_BASE + 4 * i
            assert image.instruction_at(ins.addr) is ins

    def test_globals_in_data_segment(self):
        image = self._image()
        addr = image.symbols["g"]
        assert addr >= DATA_BASE
        assert image.memory.load_word(addr) == 7

    def test_string_literals_loaded(self):
        image = self._image('int main() { print_str("xyz"); return 0; }')
        for name, addr in image.symbols.items():
            if name.startswith("__str"):
                assert image.memory.read_cstring(addr) == "xyz"
                break
        else:
            raise AssertionError("no string literal placed")

    def test_jump_table_resolved_to_code_addresses(self):
        src = """
        int f(int x) {
            switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4; default: return 0;
            }
        }
        int main() { return f(2); }
        """
        image = self._image(src)
        table = [n for n in image.symbols if n.startswith("__jtab")]
        assert table
        addr = image.symbols[table[0]]
        first_entry = image.memory.load_word(addr)
        assert TEXT_BASE <= first_entry < DATA_BASE

    def test_symbol_initialised_with_other_symbol_address(self):
        image = self._image('char *p = "abc"; int main() { return p != 0; }')
        p_addr = image.symbols["p"]
        target = image.memory.load_word(p_addr)
        assert image.memory.read_cstring(target) == "abc"

    def test_reset_restores_memory(self):
        image = self._image()
        addr = image.symbols["g"]
        image.memory.store_word(addr, 99)
        image.reset()
        assert image.memory.load_word(addr) == 7

    def test_stack_top(self):
        assert self._image().stack_top == STACK_TOP

    def test_float_global_initialised(self):
        image = self._image("float f = 2.5; int main() { return (int) f; }")
        assert image.memory.load_float(image.symbols["f"]) == 2.5
